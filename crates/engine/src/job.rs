//! Prediction jobs: what the engine executes.
//!
//! A [`JobSpec`] names one prediction — a program source (a pre-built
//! trace or a generator recipe) plus the [`SimOptions`] to predict it
//! under. Specs are plain data (`Clone + Send`), so a batch can be built
//! up front, dealt to workers, and reported in input order. [`Grid`]
//! builds the common cartesian case: every source on every machine.

use blockops::AnalyticCost;
use loggp::{LogGpParams, MachineSpec, Time};
use predsim_core::layout::{BlockCyclic2D, ColCyclic, Diagonal, Layout, RowCyclic};
use predsim_core::{collectives, Prediction, Program, SimOptions};
use predsim_dag::{SchedulerKind, TaskDag};
use predsim_faults::FaultPlan;
use std::sync::Arc;

/// A data-parallel block layout, by name — [`JobSpec`]s must be `Send`,
/// so they carry this constructor recipe instead of a `Box<dyn Layout>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutSpec {
    /// Row `i` of blocks lives on processor `i mod P`.
    RowCyclic(usize),
    /// Column `j` of blocks lives on processor `j mod P`.
    ColCyclic(usize),
    /// Anti-diagonal wrapping of blocks onto processors.
    Diagonal(usize),
    /// 2-D block-cyclic over a `pr × pc` processor grid.
    Grid2D(usize, usize),
}

impl LayoutSpec {
    /// Instantiate the layout.
    pub fn build(&self) -> Box<dyn Layout> {
        match *self {
            LayoutSpec::RowCyclic(p) => Box::new(RowCyclic::new(p)),
            LayoutSpec::ColCyclic(p) => Box::new(ColCyclic::new(p)),
            LayoutSpec::Diagonal(p) => Box::new(Diagonal::new(p)),
            LayoutSpec::Grid2D(pr, pc) => Box::new(BlockCyclic2D::new(pr, pc)),
        }
    }

    /// Number of processors the layout maps onto.
    pub fn procs(&self) -> usize {
        match *self {
            LayoutSpec::RowCyclic(p) | LayoutSpec::ColCyclic(p) | LayoutSpec::Diagonal(p) => p,
            LayoutSpec::Grid2D(pr, pc) => pr * pc,
        }
    }
}

/// Where a job's program comes from.
///
/// Generator variants re-derive the trace inside the worker, keeping the
/// spec tiny; `Program` shares an already-built trace across jobs (the
/// grid case: one trace, many machines).
#[derive(Clone, Debug)]
pub enum JobSource {
    /// A pre-built program trace.
    Program(Arc<Program>),
    /// Blocked Gaussian elimination (`gauss::generate`, paper-default
    /// operation costs).
    Gauss {
        /// Matrix dimension.
        n: usize,
        /// Block size (must divide `n`).
        block: usize,
        /// Data layout.
        layout: LayoutSpec,
    },
    /// Cannon's matrix-multiply on a `q × q` grid (`cannon::generate`,
    /// paper-default operation costs).
    Cannon {
        /// Matrix dimension.
        n: usize,
        /// Grid side (must divide `n`).
        q: usize,
    },
    /// Jacobi stencil on banded rows (`stencil::generate`).
    Stencil {
        /// Grid dimension.
        n: usize,
        /// Number of bands.
        procs: usize,
        /// Iterations.
        iters: usize,
        /// Computation charge per flop, picoseconds.
        ps_per_flop: u64,
    },
    /// Blocked Floyd–Warshall all-pairs shortest paths (`apsp::generate`,
    /// paper-default operation costs).
    Apsp {
        /// Vertex count.
        n: usize,
        /// Block size (must divide `n`).
        block: usize,
        /// Data layout.
        layout: LayoutSpec,
    },
    /// Binomial-tree broadcast from processor 0
    /// ([`collectives::binomial_broadcast`]).
    Bcast {
        /// Processor count.
        procs: usize,
        /// Message payload per round.
        bytes: usize,
    },
    /// Binomial-tree reduction to processor 0
    /// ([`collectives::binomial_reduce`]).
    Reduce {
        /// Processor count.
        procs: usize,
        /// Message payload per round.
        bytes: usize,
        /// Combine time charged at each receiver per round.
        combine: Time,
    },
    /// All-reduce ([`collectives::all_reduce`], or the hypercube
    /// exchange [`collectives::all_reduce_hypercube`]).
    AllReduce {
        /// Processor count (a power of two when `hypercube`).
        procs: usize,
        /// Message payload per round.
        bytes: usize,
        /// Combine time charged at each receiver per round.
        combine: Time,
        /// Use the hypercube exchange instead of reduce-then-broadcast.
        hypercube: bool,
    },
    /// A task DAG scheduled onto a machine and lowered to a step
    /// program ([`predsim_dag::lower`]). The machine spec is carried in
    /// the variant because scheduling and computation scaling need it
    /// at build time, independent of the simulation options.
    Dag {
        /// The task graph (shared — DAGs can be large).
        dag: Arc<TaskDag>,
        /// The scheduling policy that places the tasks.
        scheduler: SchedulerKind,
        /// The machine the tasks are placed on.
        machine: MachineSpec,
    },
}

/// Parse a `N,BLOCK,LAYOUT,PROCS` blocked-matrix spec body (shared by
/// `ge:` and `apsp:`), returning `(n, block, layout)`.
fn parse_blocked_spec(
    kind: &str,
    raw: &str,
    spec: &str,
) -> Result<(usize, usize, LayoutSpec), String> {
    let parts: Vec<&str> = spec.split(',').collect();
    let [n, block, layout, procs] = parts.as_slice() else {
        return Err(format!(
            "{kind} spec '{raw}': expected {kind}:N,BLOCK,LAYOUT,PROCS"
        ));
    };
    let n: usize = n
        .parse()
        .map_err(|e| format!("{kind} spec '{raw}': bad N: {e}"))?;
    let block: usize = block
        .parse()
        .map_err(|e| format!("{kind} spec '{raw}': bad BLOCK: {e}"))?;
    let procs: usize = procs
        .parse()
        .map_err(|e| format!("{kind} spec '{raw}': bad PROCS: {e}"))?;
    if block == 0 || !n.is_multiple_of(block) {
        return Err(format!("{kind} spec '{raw}': BLOCK must divide N"));
    }
    let layout = match *layout {
        "diagonal" => LayoutSpec::Diagonal(procs),
        "row" => LayoutSpec::RowCyclic(procs),
        "col" => LayoutSpec::ColCyclic(procs),
        other => return Err(format!("{kind} spec '{raw}': unknown layout '{other}'")),
    };
    Ok((n, block, layout))
}

impl JobSource {
    /// Parse a generator spec string — the grammar every front end (the
    /// CLI's SOURCE arguments and the serve API's `source` field) shares:
    ///
    /// ```text
    /// ge:N,BLOCK,LAYOUT,PROCS      blocked Gaussian elimination
    /// cannon:N,Q                   Cannon's algorithm on a QxQ grid
    /// stencil:N,PROCS,ITERS        Jacobi stencil (500 ps/flop)
    /// apsp:N,BLOCK,LAYOUT,PROCS    blocked Floyd-Warshall shortest paths
    /// bcast:P:BYTES                binomial-tree broadcast
    /// reduce:P:BYTES:COMBINE_PS    binomial-tree reduction
    /// allreduce:P:BYTES:COMBINE_PS[:hypercube]
    ///                              all-reduce (hypercube needs P = 2^k)
    /// dag:GENSPEC:PROCS            generated task DAG, HEFT-scheduled
    ///                              onto PROCS Meiko processors (GENSPEC
    ///                              as in predsim_dag::generate::from_spec,
    ///                              e.g. dag:forkjoin:32,1,100000,8192:8)
    /// ```
    ///
    /// Returns `Ok(None)` when `raw` carries none of the known prefixes
    /// (the CLI then treats it as a trace-file path; the server rejects
    /// it), and `Err` for a recognized prefix with a malformed body.
    pub fn parse_spec(raw: &str) -> Result<Option<JobSource>, String> {
        if let Some(spec) = raw.strip_prefix("ge:") {
            let (n, block, layout) = parse_blocked_spec("ge", raw, spec)?;
            Ok(Some(JobSource::Gauss { n, block, layout }))
        } else if let Some(spec) = raw.strip_prefix("apsp:") {
            let (n, block, layout) = parse_blocked_spec("apsp", raw, spec)?;
            Ok(Some(JobSource::Apsp { n, block, layout }))
        } else if let Some(spec) = raw.strip_prefix("cannon:") {
            let parts: Vec<&str> = spec.split(',').collect();
            let [n, q] = parts.as_slice() else {
                return Err(format!("cannon spec '{raw}': expected cannon:N,Q"));
            };
            let n: usize = n
                .parse()
                .map_err(|e| format!("cannon spec '{raw}': bad N: {e}"))?;
            let q: usize = q
                .parse()
                .map_err(|e| format!("cannon spec '{raw}': bad Q: {e}"))?;
            if q == 0 || !n.is_multiple_of(q) {
                return Err(format!("cannon spec '{raw}': Q must divide N"));
            }
            Ok(Some(JobSource::Cannon { n, q }))
        } else if let Some(spec) = raw.strip_prefix("stencil:") {
            let parts: Vec<&str> = spec.split(',').collect();
            let [n, procs, iters] = parts.as_slice() else {
                return Err(format!(
                    "stencil spec '{raw}': expected stencil:N,PROCS,ITERS"
                ));
            };
            let n: usize = n
                .parse()
                .map_err(|e| format!("stencil spec '{raw}': bad N: {e}"))?;
            let procs: usize = procs
                .parse()
                .map_err(|e| format!("stencil spec '{raw}': bad PROCS: {e}"))?;
            let iters: usize = iters
                .parse()
                .map_err(|e| format!("stencil spec '{raw}': bad ITERS: {e}"))?;
            if procs == 0 || procs > n {
                return Err(format!("stencil spec '{raw}': need 1..=N bands"));
            }
            Ok(Some(JobSource::Stencil {
                n,
                procs,
                iters,
                ps_per_flop: 500,
            }))
        } else if let Some(spec) = raw.strip_prefix("bcast:") {
            let parts: Vec<&str> = spec.split(':').collect();
            let [procs, bytes] = parts.as_slice() else {
                return Err(format!("bcast spec '{raw}': expected bcast:P:BYTES"));
            };
            let procs: usize = procs
                .parse()
                .map_err(|e| format!("bcast spec '{raw}': bad P: {e}"))?;
            let bytes: usize = bytes
                .parse()
                .map_err(|e| format!("bcast spec '{raw}': bad BYTES: {e}"))?;
            if procs == 0 {
                return Err(format!("bcast spec '{raw}': need at least one processor"));
            }
            Ok(Some(JobSource::Bcast { procs, bytes }))
        } else if let Some(spec) = raw.strip_prefix("reduce:") {
            let parts: Vec<&str> = spec.split(':').collect();
            let [procs, bytes, combine] = parts.as_slice() else {
                return Err(format!(
                    "reduce spec '{raw}': expected reduce:P:BYTES:COMBINE_PS"
                ));
            };
            let procs: usize = procs
                .parse()
                .map_err(|e| format!("reduce spec '{raw}': bad P: {e}"))?;
            let bytes: usize = bytes
                .parse()
                .map_err(|e| format!("reduce spec '{raw}': bad BYTES: {e}"))?;
            let combine: u64 = combine
                .parse()
                .map_err(|e| format!("reduce spec '{raw}': bad COMBINE_PS: {e}"))?;
            if procs == 0 {
                return Err(format!("reduce spec '{raw}': need at least one processor"));
            }
            Ok(Some(JobSource::Reduce {
                procs,
                bytes,
                combine: Time::from_ps(combine),
            }))
        } else if let Some(spec) = raw.strip_prefix("allreduce:") {
            let parts: Vec<&str> = spec.split(':').collect();
            let (core, hypercube) = match parts.as_slice() {
                [p, b, c] => ([*p, *b, *c], false),
                [p, b, c, "hypercube"] => ([*p, *b, *c], true),
                _ => {
                    return Err(format!(
                        "allreduce spec '{raw}': expected allreduce:P:BYTES:COMBINE_PS[:hypercube]"
                    ));
                }
            };
            let procs: usize = core[0]
                .parse()
                .map_err(|e| format!("allreduce spec '{raw}': bad P: {e}"))?;
            let bytes: usize = core[1]
                .parse()
                .map_err(|e| format!("allreduce spec '{raw}': bad BYTES: {e}"))?;
            let combine: u64 = core[2]
                .parse()
                .map_err(|e| format!("allreduce spec '{raw}': bad COMBINE_PS: {e}"))?;
            if procs == 0 {
                return Err(format!(
                    "allreduce spec '{raw}': need at least one processor"
                ));
            }
            if hypercube && !procs.is_power_of_two() {
                return Err(format!(
                    "allreduce spec '{raw}': the hypercube exchange needs a power-of-two P"
                ));
            }
            Ok(Some(JobSource::AllReduce {
                procs,
                bytes,
                combine: Time::from_ps(combine),
                hypercube,
            }))
        } else if let Some(spec) = raw.strip_prefix("dag:") {
            let Some((genspec, procs)) = spec.rsplit_once(':') else {
                return Err(format!("dag spec '{raw}': expected dag:GENSPEC:PROCS"));
            };
            let procs: usize = procs
                .parse()
                .map_err(|e| format!("dag spec '{raw}': bad PROCS: {e}"))?;
            if procs == 0 {
                return Err(format!("dag spec '{raw}': need at least one processor"));
            }
            let dag = predsim_dag::generate::from_spec(genspec)
                .map_err(|e| format!("dag spec '{raw}': {e}"))?;
            // Spec-built DAGs default to the strongest shipped policy on
            // the paper's uniform machine; the CLI/serve fronts build the
            // variant directly when a scheduler or machine is chosen.
            Ok(Some(JobSource::Dag {
                dag: Arc::new(dag),
                scheduler: SchedulerKind::Heft,
                machine: MachineSpec::uniform(loggp::presets::meiko_cs2(procs)),
            }))
        } else {
            Ok(None)
        }
    }

    /// Build (or borrow) the program trace.
    pub fn build(&self) -> Arc<Program> {
        match self {
            JobSource::Program(p) => Arc::clone(p),
            JobSource::Gauss { n, block, layout } => {
                let cost = AnalyticCost::paper_default();
                Arc::new(gauss::generate(*n, *block, layout.build().as_ref(), &cost).program)
            }
            JobSource::Cannon { n, q } => {
                let cost = AnalyticCost::paper_default();
                Arc::new(cannon::generate(*n, *q, &cost).program)
            }
            JobSource::Stencil {
                n,
                procs,
                iters,
                ps_per_flop,
            } => Arc::new(stencil::generate(*n, *procs, *iters, *ps_per_flop).program),
            JobSource::Apsp { n, block, layout } => {
                let cost = AnalyticCost::paper_default();
                Arc::new(apsp::generate(*n, *block, layout.build().as_ref(), &cost).program)
            }
            JobSource::Bcast { procs, bytes } => {
                Arc::new(collectives::binomial_broadcast(*procs, *bytes))
            }
            JobSource::Reduce {
                procs,
                bytes,
                combine,
            } => Arc::new(collectives::binomial_reduce(*procs, *bytes, *combine)),
            JobSource::AllReduce {
                procs,
                bytes,
                combine,
                hypercube,
            } => Arc::new(if *hypercube {
                collectives::all_reduce_hypercube(*procs, *bytes, *combine)
            } else {
                collectives::all_reduce(*procs, *bytes, *combine)
            }),
            JobSource::Dag {
                dag,
                scheduler,
                machine,
            } => {
                let placement = scheduler.place(dag, machine);
                Arc::new(predsim_dag::lower(dag, &placement, machine).program)
            }
        }
    }

    /// Build the program trace *and* its per-step work profiles (block
    /// visits and memory touches). Generator sources return the loads
    /// their generator derives; a pre-built [`JobSource::Program`] has
    /// none (empty — the emulator then skips iteration and cache
    /// charges). Used by the emulation/calibration paths, which feed a
    /// machine emulator rather than the pure predictor.
    pub fn build_loaded(&self) -> (Arc<Program>, Vec<predsim_core::StepLoad>) {
        match self {
            JobSource::Program(p) => (Arc::clone(p), Vec::new()),
            JobSource::Gauss { n, block, layout } => {
                let cost = AnalyticCost::paper_default();
                let t = gauss::generate(*n, *block, layout.build().as_ref(), &cost);
                (Arc::new(t.program), t.loads)
            }
            JobSource::Cannon { n, q } => {
                let cost = AnalyticCost::paper_default();
                let t = cannon::generate(*n, *q, &cost);
                (Arc::new(t.program), t.loads)
            }
            JobSource::Stencil {
                n,
                procs,
                iters,
                ps_per_flop,
            } => {
                let t = stencil::generate(*n, *procs, *iters, *ps_per_flop);
                (Arc::new(t.program), t.loads)
            }
            JobSource::Apsp { n, block, layout } => {
                let cost = AnalyticCost::paper_default();
                let t = apsp::generate(*n, *block, layout.build().as_ref(), &cost);
                (Arc::new(t.program), t.loads)
            }
            // Collective and DAG sources carry no block-visit profile:
            // their work is fully described by the program itself.
            JobSource::Bcast { .. } | JobSource::Reduce { .. } | JobSource::AllReduce { .. } => {
                (self.build(), Vec::new())
            }
            JobSource::Dag { .. } => (self.build(), Vec::new()),
        }
    }

    /// Number of processors the program runs on.
    pub fn procs(&self) -> usize {
        match self {
            JobSource::Program(p) => p.procs(),
            JobSource::Gauss { layout, .. } | JobSource::Apsp { layout, .. } => layout.procs(),
            JobSource::Cannon { q, .. } => q * q,
            JobSource::Stencil { procs, .. } => *procs,
            JobSource::Bcast { procs, .. }
            | JobSource::Reduce { procs, .. }
            | JobSource::AllReduce { procs, .. } => *procs,
            JobSource::Dag { machine, .. } => machine.procs(),
        }
    }

    /// Check the spec's preconditions — everything the generator behind
    /// [`JobSource::build`] would otherwise `assert!` about — and describe
    /// the first violation. `Ok(())` guarantees that `build()` cannot
    /// panic on its inputs.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            JobSource::Program(_) => Ok(()), // Program construction already validated it
            JobSource::Gauss { n, block, layout } | JobSource::Apsp { n, block, layout } => {
                if *block == 0 || n % block != 0 {
                    return Err(format!(
                        "block size {block} must divide the matrix size {n}"
                    ));
                }
                if layout.procs() == 0 {
                    return Err("layout maps onto zero processors".into());
                }
                Ok(())
            }
            JobSource::Cannon { n, q } => {
                if *q == 0 || n % q != 0 {
                    return Err(format!("grid side {q} must divide the matrix size {n}"));
                }
                Ok(())
            }
            JobSource::Stencil { n, procs, .. } => {
                if *procs == 0 || procs > n {
                    return Err(format!("need 1..={n} bands, got {procs} for n={n}"));
                }
                Ok(())
            }
            JobSource::Bcast { procs, .. } | JobSource::Reduce { procs, .. } => {
                if *procs == 0 {
                    return Err("need at least one processor".into());
                }
                Ok(())
            }
            JobSource::AllReduce {
                procs, hypercube, ..
            } => {
                if *procs == 0 {
                    return Err("need at least one processor".into());
                }
                if *hypercube && !procs.is_power_of_two() {
                    return Err(format!(
                        "the hypercube exchange needs a power-of-two processor count, got {procs}"
                    ));
                }
                Ok(())
            }
            JobSource::Dag {
                dag,
                scheduler: _,
                machine,
            } => {
                dag.validate()?;
                machine.validate()
            }
        }
    }
}

/// One prediction job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Caller-chosen label, echoed in the result.
    pub label: String,
    /// The program to predict.
    pub source: JobSource,
    /// Simulation options (machine model, algorithm, policies).
    pub opts: SimOptions,
    /// Faults to inject into the simulation, if any. Faulted jobs bypass
    /// the memo cache: fault decisions are keyed by absolute step index,
    /// which the cache's relative step fingerprints cannot see.
    pub faults: Option<FaultPlan>,
}

impl JobSpec {
    /// A job with the paper-default options for `params`.
    pub fn new(label: impl Into<String>, source: JobSource, opts: SimOptions) -> Self {
        JobSpec {
            label: label.into(),
            source,
            opts,
            faults: None,
        }
    }

    /// Same job, predicted under `plan`'s faults.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// How one job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// The prediction ran to completion.
    Done {
        /// The full prediction.
        prediction: Prediction,
        /// Execution attempts it took (1 = first try).
        attempts: u32,
    },
    /// The job was not re-executed: its headline numbers were restored from
    /// a checkpoint journal by [`crate::Engine::run_resumable`].
    Restored {
        /// Predicted total running time.
        total: Time,
        /// Predicted computation time.
        comp_time: Time,
        /// Predicted communication time.
        comm_time: Time,
        /// Forced transmissions of the worst-case algorithm.
        forced_sends: usize,
    },
    /// The per-job simulation budget ran out; `partial` covers the
    /// simulated prefix.
    TimedOut {
        /// Prediction over the steps that were simulated.
        partial: Prediction,
        /// Execution attempts, all of which hit the budget.
        attempts: u32,
    },
    /// Every attempt panicked; the rest of the batch kept running.
    Crashed {
        /// The panic message of the last attempt.
        message: String,
        /// Execution attempts, all of which panicked.
        attempts: u32,
    },
}

impl JobOutcome {
    /// `(total, comp_time, comm_time, forced_sends)` for outcomes that
    /// carry trustworthy headline numbers (`Done` and `Restored`).
    pub fn totals(&self) -> Option<(Time, Time, Time, usize)> {
        match self {
            JobOutcome::Done { prediction, .. } => Some((
                prediction.total,
                prediction.comp_time,
                prediction.comm_time,
                prediction.forced_sends,
            )),
            JobOutcome::Restored {
                total,
                comp_time,
                comm_time,
                forced_sends,
            } => Some((*total, *comp_time, *comm_time, *forced_sends)),
            JobOutcome::TimedOut { .. } | JobOutcome::Crashed { .. } => None,
        }
    }

    /// The full prediction, when one exists (`Done` only — a `Restored`
    /// job has headline numbers but no per-step records).
    pub fn prediction(&self) -> Option<&Prediction> {
        match self {
            JobOutcome::Done { prediction, .. } => Some(prediction),
            _ => None,
        }
    }

    /// True iff the job's numbers are complete and trustworthy.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Done { .. } | JobOutcome::Restored { .. })
    }

    /// Stable lowercase tag: `done`, `restored`, `timed_out`, `crashed`.
    pub fn kind(&self) -> &'static str {
        match self {
            JobOutcome::Done { .. } => "done",
            JobOutcome::Restored { .. } => "restored",
            JobOutcome::TimedOut { .. } => "timed_out",
            JobOutcome::Crashed { .. } => "crashed",
        }
    }

    /// Execution attempts recorded on the outcome (0 for `Restored`).
    pub fn attempts(&self) -> u32 {
        match self {
            JobOutcome::Done { attempts, .. }
            | JobOutcome::TimedOut { attempts, .. }
            | JobOutcome::Crashed { attempts, .. } => *attempts,
            JobOutcome::Restored { .. } => 0,
        }
    }
}

/// The engine's answer for one job; `index` matches the spec's position in
/// the submitted batch.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Position of the spec in the submitted slice.
    pub index: usize,
    /// The spec's label.
    pub label: String,
    /// How the job ended (and the prediction, when it has one).
    pub outcome: JobOutcome,
}

impl JobResult {
    /// The full prediction; panics for restored, timed-out or crashed
    /// jobs. The ergonomic accessor for batches known to be clean — use
    /// [`JobOutcome::prediction`] when an outcome may be degraded.
    pub fn prediction(&self) -> &Prediction {
        self.outcome.prediction().unwrap_or_else(|| {
            panic!(
                "job {} ('{}') has no full prediction: outcome {}",
                self.index,
                self.label,
                self.outcome.kind()
            )
        })
    }
}

/// Builder for the cartesian sweep: every source × every machine.
///
/// Jobs are emitted machine-major (all sources on the first machine, then
/// all on the second, …), labelled `"<source> @ <machine>"`.
#[derive(Clone, Debug, Default)]
pub struct Grid {
    sources: Vec<(String, JobSource)>,
    machines: Vec<(String, LogGpParams)>,
    worst_case: bool,
    faults: Option<FaultPlan>,
}

impl Grid {
    /// An empty grid.
    pub fn new() -> Self {
        Grid::default()
    }

    /// Add a labelled program source.
    pub fn source(mut self, label: impl Into<String>, source: JobSource) -> Self {
        self.sources.push((label.into(), source));
        self
    }

    /// Add a labelled machine model.
    pub fn machine(mut self, name: impl Into<String>, params: LogGpParams) -> Self {
        self.machines.push((name.into(), params));
        self
    }

    /// Predict with the worst-case (§4.2) step algorithm instead of the
    /// standard one.
    pub fn worst_case(mut self) -> Self {
        self.worst_case = true;
        self
    }

    /// Inject `plan`'s faults into every job of the grid.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Expand into the job list.
    pub fn build(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.sources.len() * self.machines.len());
        for (mname, params) in &self.machines {
            for (sname, source) in &self.sources {
                let mut opts = SimOptions::new(commsim::SimConfig::new(*params));
                if self.worst_case {
                    opts = opts.worst_case();
                }
                let mut job = JobSpec::new(format!("{sname} @ {mname}"), source.clone(), opts);
                if let Some(plan) = &self.faults {
                    job = job.with_faults(plan.clone());
                }
                jobs.push(job);
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loggp::presets;

    #[test]
    fn generator_sources_build_consistent_programs() {
        let ge = JobSource::Gauss {
            n: 64,
            block: 16,
            layout: LayoutSpec::RowCyclic(4),
        };
        assert_eq!(ge.build().procs(), ge.procs());
        let ca = JobSource::Cannon { n: 32, q: 2 };
        assert_eq!(ca.build().procs(), 4);
        let st = JobSource::Stencil {
            n: 32,
            procs: 4,
            iters: 3,
            ps_per_flop: 500,
        };
        assert_eq!(st.build().procs(), 4);
        assert_eq!(st.build().len(), 3);
    }

    #[test]
    fn parse_spec_round_trips_the_cli_grammar() {
        let ge = JobSource::parse_spec("ge:240,24,diagonal,8")
            .unwrap()
            .unwrap();
        assert!(matches!(
            ge,
            JobSource::Gauss {
                n: 240,
                block: 24,
                layout: LayoutSpec::Diagonal(8),
            }
        ));
        assert!(matches!(
            JobSource::parse_spec("cannon:64,4").unwrap().unwrap(),
            JobSource::Cannon { n: 64, q: 4 }
        ));
        assert!(matches!(
            JobSource::parse_spec("stencil:64,8,4").unwrap().unwrap(),
            JobSource::Stencil {
                n: 64,
                procs: 8,
                iters: 4,
                ps_per_flop: 500,
            }
        ));
        assert!(matches!(
            JobSource::parse_spec("apsp:120,24,row,6").unwrap().unwrap(),
            JobSource::Apsp {
                n: 120,
                block: 24,
                layout: LayoutSpec::RowCyclic(6),
            }
        ));
        // No known prefix: not a spec (a file path, to the CLI).
        assert!(JobSource::parse_spec("traces/ring.trace")
            .unwrap()
            .is_none());
        // Known prefix, malformed body: an error naming the problem.
        for bad in [
            "ge:240,24,diagonal",
            "ge:240,7,diagonal,8",
            "ge:240,24,spiral,8",
            "cannon:64,5",
            "cannon:64",
            "stencil:4,8,1",
            "apsp:10,3,row,4",
        ] {
            assert!(JobSource::parse_spec(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn parse_spec_covers_the_collective_grammar() {
        assert!(matches!(
            JobSource::parse_spec("bcast:8:1024").unwrap().unwrap(),
            JobSource::Bcast {
                procs: 8,
                bytes: 1024,
            }
        ));
        let r = JobSource::parse_spec("reduce:8:1024:2000")
            .unwrap()
            .unwrap();
        assert!(matches!(
            r,
            JobSource::Reduce {
                procs: 8,
                bytes: 1024,
                combine,
            } if combine == Time::from_ps(2000)
        ));
        assert!(matches!(
            JobSource::parse_spec("allreduce:8:1024:2000")
                .unwrap()
                .unwrap(),
            JobSource::AllReduce {
                procs: 8,
                hypercube: false,
                ..
            }
        ));
        assert!(matches!(
            JobSource::parse_spec("allreduce:8:1024:2000:hypercube")
                .unwrap()
                .unwrap(),
            JobSource::AllReduce {
                procs: 8,
                hypercube: true,
                ..
            }
        ));
        for bad in [
            "bcast:8",
            "bcast:0:64",
            "bcast:8:64:9",
            "reduce:8:64",
            "allreduce:8:64",
            "allreduce:6:64:0:hypercube",
            "allreduce:8:64:0:ring",
        ] {
            assert!(JobSource::parse_spec(bad).is_err(), "{bad} should fail");
        }
        // The built collectives are runnable programs of the right size.
        for spec in [
            "bcast:8:1024",
            "reduce:8:1024:2000",
            "allreduce:8:1024:2000",
            "allreduce:8:1024:2000:hypercube",
        ] {
            let src = JobSource::parse_spec(spec).unwrap().unwrap();
            src.validate().unwrap();
            assert_eq!(src.build().procs(), 8, "{spec}");
            assert_eq!(src.procs(), 8, "{spec}");
        }
    }

    #[test]
    fn parse_spec_builds_heft_scheduled_dags() {
        let src = JobSource::parse_spec("dag:forkjoin:8,1,100000,4096:4")
            .unwrap()
            .unwrap();
        src.validate().unwrap();
        assert_eq!(src.procs(), 4);
        let prog = src.build();
        assert_eq!(prog.procs(), 4);
        assert!(prog.len() >= 3, "src level + worker level + join level");
        let JobSource::Dag {
            scheduler, machine, ..
        } = &src
        else {
            panic!("dag spec parses to JobSource::Dag");
        };
        assert_eq!(*scheduler, SchedulerKind::Heft);
        assert!(machine.is_uniform());
        for bad in [
            "dag:forkjoin:8,1,100000,4096",
            "dag:forkjoin:8,1,100000,4096:0",
            "dag:ring:8:4",
            "dag:forkjoin:8,1:4",
        ] {
            assert!(JobSource::parse_spec(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn shared_program_source_is_not_rebuilt() {
        let prog = Arc::new(stencil::generate(16, 2, 1, 100).program);
        let src = JobSource::Program(Arc::clone(&prog));
        assert!(Arc::ptr_eq(&src.build(), &prog));
    }

    #[test]
    fn grid_is_machine_major_and_labelled() {
        let jobs = Grid::new()
            .source(
                "st",
                JobSource::Stencil {
                    n: 16,
                    procs: 2,
                    iters: 1,
                    ps_per_flop: 100,
                },
            )
            .source("ca", JobSource::Cannon { n: 16, q: 2 })
            .machine("meiko", presets::meiko_cs2(4))
            .machine("paragon", presets::intel_paragon(4))
            .build();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].label, "st @ meiko");
        assert_eq!(jobs[1].label, "ca @ meiko");
        assert_eq!(jobs[3].label, "ca @ paragon");
        assert_eq!(
            jobs[2].opts.cfg.params.latency,
            presets::intel_paragon(4).latency
        );
    }
}
