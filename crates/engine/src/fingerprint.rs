//! Canonical fingerprints of communication steps.
//!
//! A step simulation is fully determined by `(CommPattern, SimConfig,
//! algorithm, relative ready offsets)` — and by nothing else, because both
//! LogGP simulators are *translation-invariant in time*: every quantity
//! they compute is a chain of `max`/`+` over the ready vector and the
//! (relative) model parameters, with no absolute anchor. Shifting every
//! ready time by Δ shifts every committed event by exactly Δ.
//!
//! [`StepKey`] encodes that determining tuple as a canonical word sequence
//! and hashes it with FNV-1a. Lookups compare the **full word sequence**,
//! not just the 64-bit hash, so a hash collision can never substitute a
//! wrong cached schedule — bit-identical results are a correctness
//! guarantee of the engine, not a probabilistic one.

use commsim::CommPattern;
use loggp::{GapRule, Time};
use predsim_core::{CommAlgo, SimOptions};
use std::hash::{Hash, Hasher};

/// FNV-1a over a `u64` word stream (64-bit offset basis / prime).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb one 64-bit word, byte by byte.
    pub fn write_u64(&mut self, word: u64) {
        let mut h = self.0;
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// The canonical identity of one communication-step simulation.
///
/// Equality compares the full canonical encoding; the precomputed FNV
/// digest only routes the key to a shard / hash bucket.
#[derive(Clone, Debug)]
pub struct StepKey {
    hash: u64,
    words: Box<[u64]>,
}

impl StepKey {
    /// Build the key for simulating `comm` under `opts` with processor `p`
    /// ready at `base + rel_ready[p]` (only the offsets enter the key; the
    /// base is re-added by the cache on a hit).
    pub fn new(comm: &CommPattern, opts: &SimOptions, rel_ready: &[Time]) -> Self {
        let p = &opts.cfg.params;
        let mut words = Vec::with_capacity(10 + rel_ready.len() + 3 * comm.len());

        // Machine + algorithm + policies. The seed feeds random
        // tie-breaking and worst-case deadlock forcing, so it is part of
        // the identity even when those paths end up unused.
        words.push(p.latency.as_ps());
        words.push(p.overhead.as_ps());
        words.push(p.gap.as_ps());
        words.push(p.gap_per_byte.as_ps());
        words.push(p.procs as u64);
        words.push(match opts.algo {
            CommAlgo::Standard => 0,
            CommAlgo::WorstCase => 1,
        });
        words.push(match opts.cfg.tie_break {
            commsim::TieBreak::LowestId => 0,
            commsim::TieBreak::Random => 1,
        });
        words.push(match opts.cfg.gap_rule {
            GapRule::Extended => 0,
            GapRule::SameKindOnly => 1,
        });
        words.push(opts.cfg.seed);

        // Relative readiness offsets, one per processor.
        words.push(rel_ready.len() as u64);
        words.extend(rel_ready.iter().map(|t| t.as_ps()));

        // The pattern, in program order. Order is semantic (it fixes each
        // processor's send queue and the message ids used for
        // tie-breaking), so the in-order list *is* the canonical edge
        // list. Self-messages are kept: the simulators skip them, but they
        // shift the ids of later messages.
        words.push(comm.procs() as u64);
        for m in comm.messages() {
            words.push(m.src as u64);
            words.push(m.dst as u64);
            words.push(m.bytes as u64);
        }

        let mut h = Fnv1a::new();
        for w in &words {
            h.write_u64(*w);
        }
        StepKey {
            hash: h.finish(),
            words: words.into_boxed_slice(),
        }
    }

    /// The precomputed FNV-1a digest (used for shard routing).
    pub fn digest(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for StepKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.words == other.words
    }
}

impl Eq for StepKey {}

impl Hash for StepKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::SimConfig;
    use loggp::presets;

    fn opts(procs: usize) -> SimOptions {
        SimOptions::new(SimConfig::new(presets::meiko_cs2(procs)))
    }

    fn ring(procs: usize, bytes: usize) -> CommPattern {
        let mut c = CommPattern::new(procs);
        for p in 0..procs {
            c.add(p, (p + 1) % procs, bytes);
        }
        c
    }

    #[test]
    fn identical_inputs_identical_keys() {
        let rel = vec![Time::ZERO, Time::from_us(3.0), Time::ZERO];
        let a = StepKey::new(&ring(3, 64), &opts(3), &rel);
        let b = StepKey::new(&ring(3, 64), &opts(3), &rel);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn every_component_distinguishes() {
        let rel = vec![Time::ZERO; 3];
        let base = StepKey::new(&ring(3, 64), &opts(3), &rel);
        // Different bytes.
        assert_ne!(base, StepKey::new(&ring(3, 65), &opts(3), &rel));
        // Different offsets.
        let rel2 = vec![Time::ZERO, Time::from_ps(1), Time::ZERO];
        assert_ne!(base, StepKey::new(&ring(3, 64), &opts(3), &rel2));
        // Different algorithm.
        assert_ne!(
            base,
            StepKey::new(&ring(3, 64), &opts(3).worst_case(), &rel)
        );
        // Different seed.
        let mut seeded = opts(3);
        seeded.cfg = seeded.cfg.with_seed(9);
        assert_ne!(base, StepKey::new(&ring(3, 64), &seeded, &rel));
        // Different machine.
        let other = SimOptions::new(SimConfig::new(presets::intel_paragon(3)));
        assert_ne!(base, StepKey::new(&ring(3, 64), &other, &rel));
    }

    #[test]
    fn message_order_is_semantic() {
        let mut ab = CommPattern::new(3);
        ab.add(0, 1, 10);
        ab.add(0, 2, 10);
        let mut ba = CommPattern::new(3);
        ba.add(0, 2, 10);
        ba.add(0, 1, 10);
        let rel = vec![Time::ZERO; 3];
        assert_ne!(
            StepKey::new(&ab, &opts(3), &rel),
            StepKey::new(&ba, &opts(3), &rel)
        );
    }

    #[test]
    fn self_messages_shift_ids_and_the_key() {
        let mut with_self = ring(3, 64);
        let plain = with_self.clone();
        with_self.add(1, 1, 8);
        let rel = vec![Time::ZERO; 3];
        assert_ne!(
            StepKey::new(&with_self, &opts(3), &rel),
            StepKey::new(&plain, &opts(3), &rel)
        );
    }
}
