//! `predsim-engine` — the parallel batch-prediction engine.
//!
//! The paper's workflow evaluates many predictions: block-size sweeps
//! (Figure 7), machine comparisons, scaling studies. Each prediction is an
//! independent pure function of `(program, machine, options)`, so a batch
//! parallelizes perfectly — and consecutive predictions re-simulate the
//! *same communication steps* over and over (every stencil iteration,
//! every Cannon rotate round, every repeated wavefront shape).
//!
//! The engine exploits both:
//!
//! * **a worker pool** ([`Engine::run`]) deals [`JobSpec`]s to
//!   `--jobs` threads over crossbeam channels and reassembles the
//!   [`JobResult`]s in submission order — results are bit-identical to
//!   running the jobs sequentially, whatever the worker count;
//! * **a step-pattern memo cache** ([`MemoCache`]) fingerprints each
//!   communication step (pattern × machine × algorithm × relative
//!   readiness, see [`fingerprint::StepKey`]) and replays the cached
//!   schedule, shifted to the step's base time, on a hit. Keys compare
//!   their full canonical encoding, so collisions cannot corrupt results.
//!
//! Both are observable: attach an [`EngineObs`] (trace sink + metrics
//! registry from `predsim-obs`) via [`Engine::with_obs`] and every job
//! emits `job_start`/`worker_assign`/`job_finish` events, every memo
//! lookup a `memo_hit`/`memo_miss`, while [`Engine::run_report`] returns
//! the batch results together with a metrics snapshot. Observation never
//! changes results — predictions stay bit-identical with tracing on.
//!
//! The engine is also **resilient**: a batch never dies with a job.
//!
//! * every job executes under `catch_unwind`, so a panicking job comes
//!   back as [`JobOutcome::Crashed`] while the rest of the batch runs on;
//! * a per-job [`predsim_core::SimBudget`] (steps and/or virtual time,
//!   [`EngineConfig::with_budget`]) turns runaway simulations into
//!   [`JobOutcome::TimedOut`] results carrying the partial prediction;
//! * crashed and timed-out jobs can be retried
//!   ([`EngineConfig::with_retries`]) with capped exponential backoff;
//! * [`Engine::run_resumable`] journals every finished job to a JSONL
//!   checkpoint ([`Journal`]) and, given the entries read back from one,
//!   restores completed jobs instead of re-running them — bit-identical
//!   to an uninterrupted run, because predictions are pure functions of
//!   their specs;
//! * [`JobSpec::with_faults`] attaches a `predsim-faults` plan, predicting
//!   the job on a degraded machine (such jobs bypass the memo cache, whose
//!   step fingerprints cannot see absolute step indices).
//!
//! ```
//! use predsim_engine::{Engine, EngineConfig, Grid, JobSource};
//! use loggp::presets;
//!
//! let jobs = Grid::new()
//!     .source("stencil 64", JobSource::Stencil { n: 64, procs: 4, iters: 8, ps_per_flop: 500 })
//!     .machine("meiko", presets::meiko_cs2(4))
//!     .machine("paragon", presets::intel_paragon(4))
//!     .build();
//! let engine = Engine::new(EngineConfig::default());
//! let results = engine.run(&jobs);
//! assert_eq!(results.len(), 2);
//! assert!(engine.stats().hits > 0); // iterations 2..8 replay iteration 1
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod job;
pub mod journal;

pub use cache::{CacheStats, MemoCache, MemoStepSimulator};
pub use fingerprint::StepKey;
pub use job::{Grid, JobOutcome, JobResult, JobSource, JobSpec, LayoutSpec};
pub use journal::{Journal, JournalEntry};

use crossbeam::channel;
use predsim_core::{
    simulate_program_driven, CommAlgo, DirectStepSimulator, IdentityShaper, NullObserver,
    Prediction, SimBudget, SimRun,
};
use predsim_lint::{check_program, Code, Diagnostic, LintOptions, Report, Severity, Span};
use predsim_obs::{
    default_ns_buckets, Counter, Histogram, MetricsSnapshot, Registry, ScopedTimer, TraceEvent,
    TraceSink,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lint one job without running it: first the spec itself (would the
/// generator behind it even accept these inputs?), then — when the spec is
/// feasible — the built program, under the spec's machine parameters.
///
/// Infeasible specs yield a single `PS0501` error. Program-level deadlock
/// findings are always reported at warning severity here (the worst-case
/// simulator handles cycles by forcing transmissions — that is its defined
/// behaviour, not a batch-stopping defect), so [`Engine::run_checked`]
/// rejects exactly the jobs that could not execute: bad specs and
/// structurally broken programs.
pub fn lint_job(spec: &JobSpec) -> Report {
    if let Err(why) = spec.source.validate() {
        let mut report = Report::new();
        report.push(
            Diagnostic::new(
                Code::BadJobSpec,
                Severity::Error,
                Span::program(),
                format!("job spec cannot produce a program: {why}"),
            )
            .with_note("the generator would panic on these inputs; fix the spec"),
        );
        return report;
    }
    let mut opts = LintOptions::default()
        .with_algo(CommAlgo::Standard)
        .with_params(spec.opts.cfg.params);
    if let Some(plan) = &spec.faults {
        opts = opts.with_fault_windows(
            plan.spec()
                .fails
                .iter()
                .map(|f| predsim_lint::FaultWindow {
                    proc: f.proc,
                    step: f.step,
                })
                .collect(),
        );
    }
    check_program(&spec.source.build(), &opts)
}

/// Static `[lo, hi]` cost interval for one job, without simulating it:
/// the `predsim-lint` interval interpreter run under the spec's machine,
/// synchronization and overlap settings.
///
/// Returns `None` when the interval is not defined for the job: infeasible
/// specs (the generator would reject the inputs) and fault-injected jobs
/// (a fail-stop outage voids both the floor and the ceiling — the analysis
/// models the fault-free machine only).
pub fn static_bounds(spec: &JobSpec) -> Option<predsim_lint::ProgramBounds> {
    if spec.faults.is_some() || spec.source.validate().is_err() {
        return None;
    }
    let program = spec.source.build();
    let cfg = predsim_lint::BoundsConfig::new(spec.opts.cfg.params)
        .with_sync(spec.opts.sync)
        .with_overlap(spec.opts.overlap);
    predsim_lint::analyze(&predsim_lint::ProgramView::of(&program), &cfg)
}

/// Simulate one job once while recording every step, returning the
/// prediction, the recording, and the built program.
///
/// The recording replays bit-identically under *any* [`SimOptions`]
/// (`ProgramRecording::predict` verifies each step and transparently
/// resimulates on any mismatch), so the caller may cache it keyed by the
/// program alone and serve later requests with different machines or
/// algorithms from it. Returns `None` for the same jobs
/// [`static_bounds`] declines: fault-injected or infeasible specs.
pub fn record_job(
    spec: &JobSpec,
) -> Option<(
    Prediction,
    predsim_core::ProgramRecording,
    Arc<predsim_core::Program>,
)> {
    if spec.faults.is_some() || spec.source.validate().is_err() {
        return None;
    }
    let program = spec.source.build();
    let (prediction, recording) = predsim_core::record_program(&program, &spec.opts);
    Some((prediction, recording, program))
}

/// Ranking key for batch dispatch: static ceiling (descending — the job
/// that can run longest starts first, so it cannot become the lone
/// straggler at the end of the batch), then a memo-affinity hash grouping
/// specs with the same machine and algorithm (their step fingerprints can
/// hit each other's cache entries), then the submission index. Jobs with
/// no static interval (faulted, infeasible) rank as longest.
fn rank_key(index: usize, spec: &JobSpec) -> (std::cmp::Reverse<u64>, u64, usize) {
    use std::hash::{Hash, Hasher};
    let hi = static_bounds(spec).map_or(u64::MAX, |b| b.hi.as_ps());
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    let p = spec.opts.cfg.params;
    (
        p.latency.as_ps(),
        p.overhead.as_ps(),
        p.gap.as_ps(),
        p.gap_per_byte.as_ps(),
        p.procs,
    )
        .hash(&mut hasher);
    matches!(spec.opts.algo, CommAlgo::WorstCase).hash(&mut hasher);
    (std::cmp::Reverse(hi), hasher.finish(), index)
}

/// One job [`Engine::run_checked`] refused to execute.
#[derive(Clone, Debug)]
pub struct RejectedJob {
    /// Position of the spec in the submitted slice.
    pub index: usize,
    /// The spec's label.
    pub label: String,
    /// The diagnostics that caused the rejection (plus any riding along).
    pub report: Report,
}

/// The error of [`Engine::run_checked`]: every job whose lint report
/// contains error-severity diagnostics. No job of the batch was executed.
#[derive(Clone, Debug)]
pub struct BatchRejection {
    /// The refused jobs, in submission order.
    pub rejected: Vec<RejectedJob>,
}

impl std::fmt::Display for BatchRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} job(s) rejected by pre-run checks:",
            self.rejected.len()
        )?;
        for job in &self.rejected {
            writeln!(f, "job {} ('{}'):", job.index, job.label)?;
            write!(f, "{}", job.report.render())?;
        }
        Ok(())
    }
}

impl std::error::Error for BatchRejection {}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Whether to memoize communication steps.
    pub memo: bool,
    /// Lock shards of the memo cache.
    pub shards: usize,
    /// Entries per shard before epoch eviction.
    pub shard_capacity: usize,
    /// Per-job simulation budget; exceeding it yields
    /// [`JobOutcome::TimedOut`] instead of running forever.
    pub budget: SimBudget,
    /// Re-execution attempts after a crashed or timed-out job (0 = fail on
    /// the first bad attempt). Predictions are deterministic, so retries
    /// guard against *host*-side transience (memory pressure, a poisoned
    /// cache shard), not simulation randomness.
    pub retries: u32,
    /// Base backoff between retry attempts, milliseconds; doubled per
    /// attempt, capped at one second. `0` retries immediately.
    pub retry_backoff_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            memo: true,
            shards: 16,
            shard_capacity: 4096,
            budget: SimBudget::unlimited(),
            retries: 0,
            retry_backoff_ms: 0,
        }
    }
}

impl EngineConfig {
    /// Worker threads after resolving `jobs == 0` to the CPU count.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }

    /// Same config with an explicit worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Same config with memoization switched on or off.
    pub fn with_memo(mut self, memo: bool) -> Self {
        self.memo = memo;
        self
    }

    /// Same config with a per-job simulation budget.
    pub fn with_budget(mut self, budget: SimBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Same config with a per-job budget of at most `steps` program steps.
    pub fn with_step_budget(mut self, steps: usize) -> Self {
        self.budget = SimBudget::steps(steps);
        self
    }

    /// Same config with `retries` re-execution attempts for crashed or
    /// timed-out jobs.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Same config with a base retry backoff in milliseconds.
    pub fn with_retry_backoff_ms(mut self, ms: u64) -> Self {
        self.retry_backoff_ms = ms;
        self
    }
}

/// Metric handles the engine updates on its hot paths, resolved once at
/// construction so per-job updates are plain atomic operations.
#[derive(Clone)]
struct EngineMetrics {
    jobs_total: Arc<Counter>,
    jobs_crashed_total: Arc<Counter>,
    jobs_timed_out_total: Arc<Counter>,
    jobs_restored_total: Arc<Counter>,
    job_retries_total: Arc<Counter>,
    job_wall_ns: Arc<Histogram>,
    phase_build_ns: Arc<Counter>,
    phase_simulate_ns: Arc<Counter>,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> Self {
        EngineMetrics {
            jobs_total: registry.counter("engine_jobs_total", "batch jobs executed"),
            jobs_crashed_total: registry.counter(
                "engine_jobs_crashed_total",
                "jobs whose every attempt panicked",
            ),
            jobs_timed_out_total: registry.counter(
                "engine_jobs_timed_out_total",
                "jobs whose every attempt exceeded the simulation budget",
            ),
            jobs_restored_total: registry.counter(
                "engine_jobs_restored_total",
                "jobs restored from a checkpoint journal instead of re-run",
            ),
            job_retries_total: registry.counter(
                "engine_job_retries_total",
                "re-execution attempts after crashed or timed-out attempts",
            ),
            job_wall_ns: registry.histogram(
                "engine_job_wall_ns",
                "host wall-clock per job prediction, ns",
                &default_ns_buckets(),
            ),
            phase_build_ns: registry
                .counter("engine_phase_build_ns", "wall-clock building programs, ns"),
            phase_simulate_ns: registry.counter(
                "engine_phase_simulate_ns",
                "wall-clock simulating programs, ns",
            ),
        }
    }
}

/// Observability attachments of an [`Engine`]: an optional trace sink and
/// a metrics registry.
///
/// The default has no sink (events cost nothing) and a private registry.
/// Attaching a sink makes every batch job emit `job_start` /
/// `worker_assign` / `job_finish` events and every memo-cache lookup a
/// `memo_hit` / `memo_miss` event; results stay bit-identical either way.
#[derive(Clone)]
pub struct EngineObs {
    sink: Option<Arc<dyn TraceSink>>,
    registry: Arc<Registry>,
    metrics: EngineMetrics,
}

impl Default for EngineObs {
    fn default() -> Self {
        EngineObs::new()
    }
}

impl EngineObs {
    /// No sink, fresh registry.
    pub fn new() -> Self {
        EngineObs::with_registry(Arc::new(Registry::new()))
    }

    /// No sink, recording metrics into a caller-owned registry.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let metrics = EngineMetrics::new(&registry);
        EngineObs {
            sink: None,
            registry,
            metrics,
        }
    }

    /// Same attachments, but with trace events flowing into `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The attached trace sink, if any.
    pub fn sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.sink.as_ref()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// A batch's results plus the observability snapshot taken right after it
/// finished (from [`Engine::run_report`]).
#[derive(Clone)]
pub struct RunReport {
    /// The job results, in submission order — exactly [`Engine::run`]'s
    /// return value.
    pub results: Vec<JobResult>,
    /// Snapshot of the engine registry, including the memo-cache gauges
    /// published at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Memo-cache counters as of the end of the run.
    pub cache: CacheStats,
    /// Host wall-clock of the whole batch, in nanoseconds.
    pub wall_ns: u64,
}

/// The batch-prediction engine: a worker pool plus a shared memo cache.
///
/// The cache persists across [`Engine::run`] calls, so a sweep following a
/// sweep over the same programs starts warm.
pub struct Engine {
    config: EngineConfig,
    cache: Arc<MemoCache>,
    obs: EngineObs,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine with the given configuration and no trace sink.
    pub fn new(config: EngineConfig) -> Self {
        Engine::with_obs(config, EngineObs::default())
    }

    /// An engine with the given configuration and observability
    /// attachments.
    pub fn with_obs(config: EngineConfig, obs: EngineObs) -> Self {
        let cache = Arc::new(MemoCache::new(
            config.shards.max(1),
            config.shard_capacity.max(1),
        ));
        Engine { config, cache, obs }
    }

    /// A single-threaded engine (useful as the comparison baseline; still
    /// memoizes unless `memo` is disabled).
    pub fn sequential() -> Self {
        Engine::new(EngineConfig::default().with_jobs(1))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the memo-cache counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The engine's observability attachments.
    pub fn obs(&self) -> &EngineObs {
        &self.obs
    }

    /// Predict one job with this engine's cache. The job runs under the
    /// engine's budget; a truncated run returns the prediction over the
    /// simulated prefix (use [`Engine::run`] for outcome-aware results).
    pub fn run_one(&self, spec: &JobSpec) -> Prediction {
        self.run_one_bounded(u64::MAX, spec).prediction
    }

    /// The one true per-job simulation path, stamped with a batch job
    /// index for the trace. Faulted jobs bypass the memo cache — fault
    /// decisions are keyed by absolute step index, which the cache's
    /// relative fingerprints cannot represent.
    fn run_one_bounded(&self, job: u64, spec: &JobSpec) -> SimRun {
        let program = {
            let _t = ScopedTimer::counter(&self.obs.metrics.phase_build_ns);
            spec.source.build()
        };
        let _t = ScopedTimer::counter(&self.obs.metrics.phase_simulate_ns);
        let budget = self.config.budget;
        if let Some(plan) = &spec.faults {
            let sink = self.obs.sink.as_deref();
            return predsim_faults::simulate_faulted_bounded(
                &program, &spec.opts, plan, sink, budget,
            );
        }
        if self.config.memo {
            let mut memo = match &self.obs.sink {
                Some(sink) => MemoStepSimulator::traced(&self.cache, sink.as_ref(), job),
                None => MemoStepSimulator::new(&self.cache),
            };
            simulate_program_driven(
                &program,
                &spec.opts,
                &mut memo,
                &mut NullObserver,
                &mut IdentityShaper,
                budget,
            )
        } else {
            simulate_program_driven(
                &program,
                &spec.opts,
                &mut DirectStepSimulator::new(),
                &mut NullObserver,
                &mut IdentityShaper,
                budget,
            )
        }
    }

    /// Execute a batch; results come back in submission order and are
    /// bit-identical to running the specs one by one on one thread.
    pub fn run(&self, specs: &[JobSpec]) -> Vec<JobResult> {
        self.run_resumable(specs, None, &[])
    }

    /// [`Engine::run`] with checkpointing: every finished job is appended
    /// to `journal` (when given) as it completes, and jobs matching a
    /// restorable entry of `restored` — same index, same label, outcome
    /// `done` — are not re-executed at all; they come back as
    /// [`JobOutcome::Restored`] with the journalled numbers. Combined with
    /// [`Journal::resume`], an interrupted sweep picks up exactly where it
    /// stopped and produces results bit-identical to an uninterrupted run.
    pub fn run_resumable(
        &self,
        specs: &[JobSpec],
        journal: Option<&Journal>,
        restored: &[JournalEntry],
    ) -> Vec<JobResult> {
        if specs.is_empty() {
            return Vec::new();
        }
        let mut slots: Vec<Option<JobResult>> = (0..specs.len()).map(|_| None).collect();
        for entry in restored {
            if entry.is_restorable()
                && entry.job < specs.len()
                && specs[entry.job].label == entry.label
                && slots[entry.job].is_none()
            {
                self.obs.metrics.jobs_restored_total.inc();
                slots[entry.job] = Some(JobResult {
                    index: entry.job,
                    label: entry.label.clone(),
                    outcome: JobOutcome::Restored {
                        total: entry.total,
                        comp_time: entry.comp_time,
                        comm_time: entry.comm_time,
                        forced_sends: entry.forced_sends,
                    },
                });
            }
        }
        let mut pending: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect();
        let workers = self.config.effective_jobs().min(pending.len());
        if workers > 1 {
            // Dispatch order only — results still land in their
            // submission-order slots, so the batch output is bit-identical
            // to the unranked (and the sequential) order.
            pending.sort_by_cached_key(|&i| rank_key(i, &specs[i]));
        }
        self.obs
            .registry
            .gauge("engine_workers", "worker threads of the last batch")
            .set(workers as u64);

        if workers <= 1 {
            for &i in &pending {
                self.assign(i, 0);
                let result = self.execute(i, &specs[i]);
                if let Some(journal) = journal {
                    journal.record(&result);
                }
                slots[i] = Some(result);
            }
        } else {
            let (work_tx, work_rx) = channel::unbounded::<usize>();
            let (done_tx, done_rx) = channel::unbounded::<JobResult>();
            for &i in &pending {
                work_tx.send(i).expect("work queue open");
            }
            drop(work_tx);

            // Results are collected and journalled *inside* the scope, as
            // they arrive — a batch killed mid-run has already checkpointed
            // everything that finished. The drain terminates when the last
            // worker exits and drops its `done_tx` clone.
            let joined = crossbeam::thread::scope(|scope| {
                for worker in 0..workers {
                    let work_rx = work_rx.clone();
                    let done_tx = done_tx.clone();
                    scope.spawn(move |_| {
                        while let Ok(i) = work_rx.recv() {
                            self.assign(i, worker as u64);
                            let _ = done_tx.send(self.execute(i, &specs[i]));
                        }
                    });
                }
                drop(done_tx);
                while let Ok(result) = done_rx.recv() {
                    if let Some(journal) = journal {
                        journal.record(&result);
                    }
                    let i = result.index;
                    debug_assert!(slots[i].is_none(), "job {i} executed twice");
                    slots[i] = Some(result);
                }
            });
            // A worker dying outside the per-job isolation (it should not:
            // `execute` catches panics) is reported per-job below, not
            // propagated as a batch-killing panic.
            drop(joined);
        }

        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    self.obs.metrics.jobs_crashed_total.inc();
                    let result = JobResult {
                        index: i,
                        label: specs[i].label.clone(),
                        outcome: JobOutcome::Crashed {
                            message: "worker thread terminated without reporting a result".into(),
                            attempts: 0,
                        },
                    };
                    if let Some(journal) = journal {
                        journal.record(&result);
                    }
                    result
                })
            })
            .collect()
    }

    /// Like [`Engine::run`], but pre-validate every spec with [`lint_job`]
    /// first. If any job's report contains errors, the whole batch is
    /// refused (nothing runs) and the offending reports come back as a
    /// [`BatchRejection`] — diagnostics instead of a mid-batch panic
    /// inside a worker thread.
    pub fn run_checked(&self, specs: &[JobSpec]) -> Result<Vec<JobResult>, BatchRejection> {
        self.run_checked_resumable(specs, None, &[])
    }

    /// [`Engine::run_checked`] with checkpointing: pre-validate, then run
    /// via [`Engine::run_resumable`] with the given journal and restored
    /// entries. Validation happens before anything executes, including
    /// restored jobs — a spec that no longer lints clean refuses the batch
    /// even if its previous run was journalled.
    pub fn run_checked_resumable(
        &self,
        specs: &[JobSpec],
        journal: Option<&Journal>,
        restored: &[JournalEntry],
    ) -> Result<Vec<JobResult>, BatchRejection> {
        let rejected: Vec<RejectedJob> = specs
            .iter()
            .enumerate()
            .filter_map(|(index, spec)| {
                let report = lint_job(spec);
                report.has_errors().then(|| RejectedJob {
                    index,
                    label: spec.label.clone(),
                    report,
                })
            })
            .collect();
        if rejected.is_empty() {
            Ok(self.run_resumable(specs, journal, restored))
        } else {
            Err(BatchRejection { rejected })
        }
    }

    /// Like [`Engine::run`], but also snapshot the metrics registry and
    /// the memo-cache counters when the batch finishes. Cache figures are
    /// published into the registry first (as `engine_cache_*` gauges), so
    /// a Prometheus or JSON export of the snapshot carries them too.
    pub fn run_report(&self, specs: &[JobSpec]) -> RunReport {
        let start = Instant::now();
        let results = self.run(specs);
        let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        RunReport {
            results,
            metrics: self.metrics_snapshot(),
            cache: self.stats(),
            wall_ns,
        }
    }

    /// Publish the memo-cache counters into the registry (as
    /// `engine_cache_*` gauges), flush the trace sink, and snapshot the
    /// registry. Called by [`Engine::run_report`]; call it directly after
    /// [`Engine::run`]/[`Engine::run_checked`] to export metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let cache = self.stats();
        let reg = &self.obs.registry;
        reg.gauge("engine_cache_hits", "memo-cache hits so far")
            .set(cache.hits);
        reg.gauge("engine_cache_misses", "memo-cache misses so far")
            .set(cache.misses);
        reg.gauge("engine_cache_inserts", "memo-cache inserts so far")
            .set(cache.inserts);
        reg.gauge("engine_cache_evictions", "memo-cache evictions so far")
            .set(cache.evictions);
        reg.gauge("engine_cache_hit_permille", "memo-cache hit rate, permille")
            .set((cache.hit_rate() * 1000.0).round() as u64);
        if let Some(sink) = &self.obs.sink {
            sink.flush();
        }
        reg.snapshot()
    }

    fn assign(&self, index: usize, worker: u64) {
        if let Some(sink) = &self.obs.sink {
            sink.emit(&TraceEvent::WorkerAssign {
                job: index as u64,
                worker,
            });
        }
    }

    /// Sleep out the retry backoff before re-attempt number `attempt + 1`
    /// (zero-based `attempt` of the failure): base × 2^attempt, capped at
    /// one second.
    fn backoff(&self, attempt: u32) {
        let base = self.config.retry_backoff_ms;
        if base == 0 {
            return;
        }
        let ms = base.saturating_mul(1u64 << attempt.min(10)).min(1_000);
        std::thread::sleep(Duration::from_millis(ms));
    }

    /// Run one job to an outcome: attempt it under `catch_unwind` and the
    /// configured budget, retrying crashed/timed-out attempts up to the
    /// configured cap. A panic is contained here — it becomes a
    /// [`JobOutcome::Crashed`] result, never a dead worker.
    fn execute(&self, index: usize, spec: &JobSpec) -> JobResult {
        let job = index as u64;
        if let Some(sink) = &self.obs.sink {
            sink.emit(&TraceEvent::JobStart {
                job,
                label: spec.label.clone(),
            });
        }
        let start = Instant::now();
        let max_attempts = self.config.retries.saturating_add(1);
        let mut outcome = None;
        for attempt in 1..=max_attempts {
            match catch_unwind(AssertUnwindSafe(|| self.run_one_bounded(job, spec))) {
                Ok(run) if run.halt.is_complete() => {
                    outcome = Some(JobOutcome::Done {
                        prediction: run.prediction,
                        attempts: attempt,
                    });
                    break;
                }
                Ok(run) => {
                    if attempt == max_attempts {
                        outcome = Some(JobOutcome::TimedOut {
                            partial: run.prediction,
                            attempts: attempt,
                        });
                    }
                }
                Err(payload) => {
                    if attempt == max_attempts {
                        outcome = Some(JobOutcome::Crashed {
                            message: panic_message(payload),
                            attempts: attempt,
                        });
                    }
                }
            }
            if outcome.is_none() {
                self.obs.metrics.job_retries_total.inc();
                self.backoff(attempt - 1);
            }
        }
        let outcome = outcome.expect("at least one attempt ran");
        let wall_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.obs.metrics.jobs_total.inc();
        self.obs.metrics.job_wall_ns.observe(wall_ns);
        match &outcome {
            JobOutcome::TimedOut { .. } => self.obs.metrics.jobs_timed_out_total.inc(),
            JobOutcome::Crashed { .. } => self.obs.metrics.jobs_crashed_total.inc(),
            _ => {}
        }
        if let Some(sink) = &self.obs.sink {
            let total_ps = match &outcome {
                JobOutcome::Done { prediction, .. } => prediction.total.as_ps(),
                JobOutcome::TimedOut { partial, .. } => partial.total.as_ps(),
                JobOutcome::Restored { total, .. } => total.as_ps(),
                JobOutcome::Crashed { .. } => 0,
            };
            sink.emit(&TraceEvent::JobFinish {
                job,
                label: spec.label.clone(),
                total_ps,
                wall_ns,
                outcome: outcome.kind().to_string(),
            });
        }
        JobResult {
            index,
            label: spec.label.clone(),
            outcome,
        }
    }
}

/// Render a caught panic payload for a [`JobOutcome::Crashed`] message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Index of the best (smallest-total) result among those with trustworthy
/// totals, lowest index winning ties — the same choice `search::sweep`
/// makes. Crashed and timed-out jobs never win.
pub fn best_by_total(results: &[JobResult]) -> Option<usize> {
    results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.outcome.totals().map(|(total, ..)| (i, total)))
        .min_by_key(|&(_, total)| total)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loggp::presets;

    fn stencil_grid() -> Vec<JobSpec> {
        Grid::new()
            .source(
                "st32",
                JobSource::Stencil {
                    n: 32,
                    procs: 4,
                    iters: 6,
                    ps_per_flop: 500,
                },
            )
            .source("ca32", JobSource::Cannon { n: 32, q: 2 })
            .source(
                "ge64",
                JobSource::Gauss {
                    n: 64,
                    block: 16,
                    layout: LayoutSpec::ColCyclic(4),
                },
            )
            .machine("meiko", presets::meiko_cs2(4))
            .machine("myrinet", presets::myrinet_cluster(4))
            .build()
    }

    fn assert_identical(a: &[JobResult], b: &[JobResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.label, y.label);
            assert_eq!(x.prediction().total, y.prediction().total);
            assert_eq!(x.prediction().comp_time, y.prediction().comp_time);
            assert_eq!(x.prediction().comm_time, y.prediction().comm_time);
            assert_eq!(
                x.prediction().per_proc_finish,
                y.prediction().per_proc_finish
            );
            assert_eq!(x.prediction().forced_sends, y.prediction().forced_sends);
        }
    }

    #[test]
    fn parallel_matches_sequential_and_memo_is_transparent() {
        let jobs = stencil_grid();
        let plain: Vec<JobResult> = {
            let e = Engine::new(EngineConfig::default().with_jobs(1).with_memo(false));
            e.run(&jobs)
        };
        let memo_seq = Engine::sequential().run(&jobs);
        let memo_par = Engine::new(EngineConfig::default().with_jobs(4)).run(&jobs);
        assert_identical(&plain, &memo_seq);
        assert_identical(&plain, &memo_par);
    }

    #[test]
    fn repeated_steps_hit_the_cache() {
        let engine = Engine::new(EngineConfig::default().with_jobs(2));
        let jobs = Grid::new()
            .source(
                "st",
                JobSource::Stencil {
                    n: 48,
                    procs: 4,
                    iters: 40,
                    ps_per_flop: 500,
                },
            )
            .machine("meiko", presets::meiko_cs2(4))
            .build();
        engine.run(&jobs);
        let stats = engine.stats();
        // The readiness offsets settle into a steady state after a few
        // warm-up iterations; from then on every iteration is a hit.
        assert!(stats.hits >= 20, "hits: {}", stats.hits);
        assert!(stats.misses >= 1);
    }

    #[test]
    fn run_checked_rejects_bad_specs_with_diagnostics() {
        let opts = predsim_core::SimOptions::new(commsim::SimConfig::new(presets::meiko_cs2(4)));
        let specs = vec![
            JobSpec::new(
                "bad ge",
                JobSource::Gauss {
                    n: 10,
                    block: 3,
                    layout: LayoutSpec::RowCyclic(4),
                },
                opts,
            ),
            JobSpec::new("ok cannon", JobSource::Cannon { n: 32, q: 4 }, opts),
            JobSpec::new("bad cannon", JobSource::Cannon { n: 32, q: 5 }, opts),
            JobSpec::new(
                "bad stencil",
                JobSource::Stencil {
                    n: 4,
                    procs: 8,
                    iters: 1,
                    ps_per_flop: 100,
                },
                opts,
            ),
            JobSpec::new(
                "bad apsp",
                JobSource::Apsp {
                    n: 12,
                    block: 4,
                    layout: LayoutSpec::Grid2D(0, 3),
                },
                opts,
            ),
        ];
        let err = Engine::sequential().run_checked(&specs).unwrap_err();
        let indices: Vec<usize> = err.rejected.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 2, 3, 4]);
        for r in &err.rejected {
            assert!(r.report.has_errors());
            assert_eq!(
                r.report.diagnostics()[0].code,
                predsim_lint::Code::BadJobSpec
            );
        }
        let text = err.to_string();
        assert!(text.contains("4 job(s) rejected"), "{text}");
        assert!(text.contains("error[PS0501]"), "{text}");
        assert!(
            text.contains("block size 3 must divide the matrix size 10"),
            "{text}"
        );
        assert!(text.contains("grid side 5 must divide"), "{text}");
        assert!(text.contains("1..=4 bands, got 8"), "{text}");
        assert!(text.contains("zero processors"), "{text}");
    }

    #[test]
    fn run_checked_runs_clean_batches_even_with_cycles() {
        // Cannon's rotate steps are genuinely cyclic ring shifts; the
        // deadlock finding is a warning at the engine boundary (the
        // worst-case simulator forces transmissions by design), so the
        // batch must still execute — under both algorithms.
        let jobs = Grid::new()
            .source("ca", JobSource::Cannon { n: 32, q: 4 })
            .source(
                "apsp",
                JobSource::Apsp {
                    n: 24,
                    block: 8,
                    layout: LayoutSpec::Diagonal(4),
                },
            )
            .machine("meiko", presets::meiko_cs2(16))
            .build();
        let report = lint_job(&jobs[0]);
        assert!(!report.has_errors());
        assert!(report.count(predsim_lint::Severity::Warning) > 0);

        let results = Engine::sequential().run_checked(&jobs).unwrap();
        assert_eq!(results.len(), 2);

        let wc = Grid::new()
            .source("ca", JobSource::Cannon { n: 32, q: 4 })
            .machine("meiko", presets::meiko_cs2(16))
            .worst_case()
            .build();
        let results = Engine::sequential().run_checked(&wc).unwrap();
        assert!(results[0].prediction().forced_sends > 0);
    }

    #[test]
    fn empty_batch_and_best_selection() {
        let engine = Engine::sequential();
        assert!(engine.run(&[]).is_empty());
        assert_eq!(best_by_total(&[]), None);

        let jobs = Grid::new()
            .source(
                "fast",
                JobSource::Stencil {
                    n: 16,
                    procs: 2,
                    iters: 1,
                    ps_per_flop: 100,
                },
            )
            .source(
                "slow",
                JobSource::Stencil {
                    n: 64,
                    procs: 2,
                    iters: 4,
                    ps_per_flop: 900,
                },
            )
            .machine("ideal", presets::ideal(2))
            .build();
        let results = engine.run(&jobs);
        assert_eq!(best_by_total(&results), Some(0));
    }

    #[test]
    fn run_report_traces_jobs_and_snapshots_metrics() {
        let sink = Arc::new(predsim_obs::MemorySink::new());
        let obs = EngineObs::new().with_sink(sink.clone());
        let engine = Engine::with_obs(EngineConfig::default().with_jobs(2), obs);
        let jobs = stencil_grid();
        let report = engine.run_report(&jobs);
        assert_eq!(report.results.len(), jobs.len());

        // Observation changed nothing about the predictions.
        let plain = Engine::new(EngineConfig::default().with_jobs(1)).run(&jobs);
        assert_identical(&report.results, &plain);

        let events = sink.events();
        let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
        assert_eq!(count("job_start"), jobs.len());
        assert_eq!(count("job_finish"), jobs.len());
        assert_eq!(count("worker_assign"), jobs.len());
        assert!(count("memo_hit") > 0, "repeated steps must hit");
        assert!(count("memo_miss") > 0);
        for r in &report.results {
            assert!(
                events.iter().any(|e| matches!(e,
                    TraceEvent::JobFinish { job, total_ps, outcome, .. }
                        if *job == r.index as u64
                            && *total_ps == r.prediction().total.as_ps()
                            && outcome == "done")),
                "no finish event for job {}",
                r.index
            );
        }

        // The snapshot agrees with the batch and the cache counters.
        let snap = &report.metrics;
        assert_eq!(
            snap.scalar("engine_jobs_total", &[]),
            Some(jobs.len() as u64)
        );
        assert_eq!(snap.scalar("engine_workers", &[]), Some(2));
        let (n, _) = snap.histogram_totals("engine_job_wall_ns").unwrap();
        assert_eq!(n, jobs.len() as u64);
        assert_eq!(
            snap.scalar("engine_cache_hits", &[]),
            Some(report.cache.hits)
        );
        assert_eq!(
            snap.scalar("engine_cache_misses", &[]),
            Some(report.cache.misses)
        );
        assert!(snap.scalar("engine_phase_simulate_ns", &[]).unwrap() > 0);
        assert!(report.wall_ns > 0);
        assert_eq!(report.cache, engine.stats());
    }

    /// A spec whose `build()` panics (block does not divide n), exercising
    /// the crash-isolation path without `run_checked`'s pre-validation.
    fn crashing_spec(label: &str) -> JobSpec {
        let opts = predsim_core::SimOptions::new(commsim::SimConfig::new(presets::meiko_cs2(4)));
        JobSpec::new(
            label,
            JobSource::Gauss {
                n: 10,
                block: 3,
                layout: LayoutSpec::RowCyclic(4),
            },
            opts,
        )
    }

    #[test]
    fn panicking_job_is_isolated_and_the_pool_survives() {
        let mut jobs = stencil_grid();
        jobs.insert(1, crashing_spec("boom"));
        let engine = Engine::new(EngineConfig::default().with_jobs(3));
        let results = engine.run(&jobs);
        assert_eq!(results.len(), jobs.len());
        match &results[1].outcome {
            JobOutcome::Crashed { message, attempts } => {
                assert_eq!(*attempts, 1);
                assert!(
                    message.contains("block") || message.contains("divide"),
                    "unexpected panic message: {message}"
                );
            }
            other => panic!("expected Crashed, got {}", other.kind()),
        }
        // Every other job of the batch still produced its prediction,
        // bit-identical to a batch without the poisoned job.
        let clean = Engine::sequential().run(&stencil_grid());
        for (i, r) in results.iter().enumerate() {
            if i == 1 {
                continue;
            }
            let j = if i < 1 { i } else { i - 1 };
            assert_eq!(r.prediction().total, clean[j].prediction().total);
        }
        assert_eq!(
            engine
                .metrics_snapshot()
                .scalar("engine_jobs_crashed_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn budget_turns_runaway_jobs_into_timeouts() {
        let jobs = Grid::new()
            .source(
                "st",
                JobSource::Stencil {
                    n: 32,
                    procs: 4,
                    iters: 6,
                    ps_per_flop: 500,
                },
            )
            .machine("meiko", presets::meiko_cs2(4))
            .build();
        let engine = Engine::new(
            EngineConfig::default()
                .with_jobs(1)
                .with_step_budget(2)
                .with_retries(1),
        );
        let results = engine.run(&jobs);
        match &results[0].outcome {
            JobOutcome::TimedOut { partial, attempts } => {
                assert_eq!(partial.steps.len(), 2, "partial covers the budgeted prefix");
                assert_eq!(*attempts, 2, "the retry also timed out");
            }
            other => panic!("expected TimedOut, got {}", other.kind()),
        }
        assert!(!results[0].outcome.is_ok());
        assert_eq!(results[0].outcome.totals(), None);
        let snap = engine.metrics_snapshot();
        assert_eq!(snap.scalar("engine_jobs_timed_out_total", &[]), Some(1));
        assert_eq!(snap.scalar("engine_job_retries_total", &[]), Some(1));
    }

    #[test]
    fn retries_are_counted_on_crashing_jobs() {
        let engine = Engine::new(EngineConfig::default().with_jobs(1).with_retries(2));
        let results = engine.run(&[crashing_spec("boom")]);
        match &results[0].outcome {
            JobOutcome::Crashed { attempts, .. } => assert_eq!(*attempts, 3),
            other => panic!("expected Crashed, got {}", other.kind()),
        }
        assert_eq!(
            engine
                .metrics_snapshot()
                .scalar("engine_job_retries_total", &[]),
            Some(2)
        );
        assert_eq!(best_by_total(&results), None, "a crash never wins");
    }

    #[test]
    fn faulted_jobs_bypass_the_memo_and_stay_deterministic() {
        let plan = predsim_faults::FaultPlan::new(
            predsim_faults::FaultSpec::parse("drop:0.4:100:6").unwrap(),
            42,
        );
        let jobs = Grid::new()
            .source(
                "st",
                JobSource::Stencil {
                    n: 32,
                    procs: 4,
                    iters: 8,
                    ps_per_flop: 500,
                },
            )
            .machine("meiko", presets::meiko_cs2(4))
            .faults(plan.clone())
            .build();
        assert!(jobs[0].faults.is_some());
        let engine = Engine::new(EngineConfig::default().with_jobs(2));
        let a = engine.run(&jobs);
        let b = Engine::sequential().run(&jobs);
        assert_eq!(
            a[0].prediction(),
            b[0].prediction(),
            "fault decisions are independent of worker count"
        );
        assert_eq!(
            engine.stats().hits + engine.stats().misses,
            0,
            "faulted jobs must not touch the memo cache"
        );
        // And the engine path agrees with the library entry point.
        let direct =
            predsim_faults::simulate_faulted(&jobs[0].source.build(), &jobs[0].opts, &plan, None);
        assert_eq!(*a[0].prediction(), direct);
    }

    #[test]
    fn journal_resume_is_bit_identical_to_straight_through() {
        let jobs = stencil_grid();
        // Journal::create makes the missing directories itself.
        let path = std::env::temp_dir()
            .join(format!("predsim-engine-{}", std::process::id()))
            .join("resume.jsonl");

        // Straight-through run, fully journalled.
        let journal = Journal::create(&path).unwrap();
        let full = Engine::sequential().run_resumable(&jobs, Some(&journal), &[]);
        drop(journal);
        assert!(full.iter().all(|r| r.outcome.is_ok()));

        // "Kill" the run after two jobs: truncate the journal to its first
        // two lines, then resume against the same specs.
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().take(2).collect();
        std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();
        let (journal, restored) = Journal::resume(&path).unwrap();
        assert_eq!(restored.len(), 2);
        let engine = Engine::new(EngineConfig::default().with_jobs(2));
        let resumed = engine.run_resumable(&jobs, Some(&journal), &restored);
        drop(journal);

        assert_eq!(resumed.len(), full.len());
        for (r, f) in resumed.iter().zip(&full) {
            assert_eq!(r.index, f.index);
            assert_eq!(r.label, f.label);
            assert_eq!(r.outcome.totals(), f.outcome.totals(), "job {}", r.index);
        }
        assert_eq!(resumed[0].outcome.kind(), "restored");
        assert_eq!(resumed[1].outcome.kind(), "restored");
        assert_eq!(resumed[2].outcome.kind(), "done");
        assert_eq!(
            engine
                .metrics_snapshot()
                .scalar("engine_jobs_restored_total", &[]),
            Some(2)
        );

        // The journal now holds the re-run jobs too; a second resume has
        // nothing left to execute.
        let (journal, restored) = Journal::resume(&path).unwrap();
        assert_eq!(restored.len(), jobs.len());
        let all_restored = Engine::sequential().run_resumable(&jobs, Some(&journal), &restored);
        assert!(all_restored.iter().all(|r| r.outcome.kind() == "restored"));
        for (r, f) in all_restored.iter().zip(&full) {
            assert_eq!(r.outcome.totals(), f.outcome.totals());
        }
    }

    #[test]
    fn stale_journal_entries_do_not_restore() {
        let jobs = stencil_grid();
        let entry = JournalEntry {
            job: 0,
            label: "some other sweep".into(),
            outcome: "done".into(),
            total: loggp::Time::from_us(1.0),
            comp_time: loggp::Time::ZERO,
            comm_time: loggp::Time::ZERO,
            forced_sends: 0,
            attempts: 1,
        };
        let results = Engine::sequential().run_resumable(&jobs, None, &[entry]);
        assert_eq!(
            results[0].outcome.kind(),
            "done",
            "label mismatch must force a re-run"
        );
    }
}
