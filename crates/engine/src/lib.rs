//! `predsim-engine` — the parallel batch-prediction engine.
//!
//! The paper's workflow evaluates many predictions: block-size sweeps
//! (Figure 7), machine comparisons, scaling studies. Each prediction is an
//! independent pure function of `(program, machine, options)`, so a batch
//! parallelizes perfectly — and consecutive predictions re-simulate the
//! *same communication steps* over and over (every stencil iteration,
//! every Cannon rotate round, every repeated wavefront shape).
//!
//! The engine exploits both:
//!
//! * **a worker pool** ([`Engine::run`]) deals [`JobSpec`]s to
//!   `--jobs` threads over crossbeam channels and reassembles the
//!   [`JobResult`]s in submission order — results are bit-identical to
//!   running the jobs sequentially, whatever the worker count;
//! * **a step-pattern memo cache** ([`MemoCache`]) fingerprints each
//!   communication step (pattern × machine × algorithm × relative
//!   readiness, see [`fingerprint::StepKey`]) and replays the cached
//!   schedule, shifted to the step's base time, on a hit. Keys compare
//!   their full canonical encoding, so collisions cannot corrupt results.
//!
//! ```
//! use predsim_engine::{Engine, EngineConfig, Grid, JobSource};
//! use loggp::presets;
//!
//! let jobs = Grid::new()
//!     .source("stencil 64", JobSource::Stencil { n: 64, procs: 4, iters: 8, ps_per_flop: 500 })
//!     .machine("meiko", presets::meiko_cs2(4))
//!     .machine("paragon", presets::intel_paragon(4))
//!     .build();
//! let engine = Engine::new(EngineConfig::default());
//! let results = engine.run(&jobs);
//! assert_eq!(results.len(), 2);
//! assert!(engine.stats().hits > 0); // iterations 2..8 replay iteration 1
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod job;

pub use cache::{CacheStats, MemoCache, MemoStepSimulator};
pub use fingerprint::StepKey;
pub use job::{Grid, JobResult, JobSource, JobSpec, LayoutSpec};

use crossbeam::channel;
use predsim_core::{simulate_program, simulate_program_with, CommAlgo, Prediction};
use predsim_lint::{check_program, Code, Diagnostic, LintOptions, Report, Severity, Span};
use std::sync::Arc;

/// Lint one job without running it: first the spec itself (would the
/// generator behind it even accept these inputs?), then — when the spec is
/// feasible — the built program, under the spec's machine parameters.
///
/// Infeasible specs yield a single `PS0501` error. Program-level deadlock
/// findings are always reported at warning severity here (the worst-case
/// simulator handles cycles by forcing transmissions — that is its defined
/// behaviour, not a batch-stopping defect), so [`Engine::run_checked`]
/// rejects exactly the jobs that could not execute: bad specs and
/// structurally broken programs.
pub fn lint_job(spec: &JobSpec) -> Report {
    if let Err(why) = spec.source.validate() {
        let mut report = Report::new();
        report.push(
            Diagnostic::new(
                Code::BadJobSpec,
                Severity::Error,
                Span::program(),
                format!("job spec cannot produce a program: {why}"),
            )
            .with_note("the generator would panic on these inputs; fix the spec"),
        );
        return report;
    }
    let opts = LintOptions::default()
        .with_algo(CommAlgo::Standard)
        .with_params(spec.opts.cfg.params);
    check_program(&spec.source.build(), &opts)
}

/// One job [`Engine::run_checked`] refused to execute.
#[derive(Clone, Debug)]
pub struct RejectedJob {
    /// Position of the spec in the submitted slice.
    pub index: usize,
    /// The spec's label.
    pub label: String,
    /// The diagnostics that caused the rejection (plus any riding along).
    pub report: Report,
}

/// The error of [`Engine::run_checked`]: every job whose lint report
/// contains error-severity diagnostics. No job of the batch was executed.
#[derive(Clone, Debug)]
pub struct BatchRejection {
    /// The refused jobs, in submission order.
    pub rejected: Vec<RejectedJob>,
}

impl std::fmt::Display for BatchRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} job(s) rejected by pre-run checks:",
            self.rejected.len()
        )?;
        for job in &self.rejected {
            writeln!(f, "job {} ('{}'):", job.index, job.label)?;
            write!(f, "{}", job.report.render())?;
        }
        Ok(())
    }
}

impl std::error::Error for BatchRejection {}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub jobs: usize,
    /// Whether to memoize communication steps.
    pub memo: bool,
    /// Lock shards of the memo cache.
    pub shards: usize,
    /// Entries per shard before epoch eviction.
    pub shard_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 0,
            memo: true,
            shards: 16,
            shard_capacity: 4096,
        }
    }
}

impl EngineConfig {
    /// Worker threads after resolving `jobs == 0` to the CPU count.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }

    /// Same config with an explicit worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Same config with memoization switched on or off.
    pub fn with_memo(mut self, memo: bool) -> Self {
        self.memo = memo;
        self
    }
}

/// The batch-prediction engine: a worker pool plus a shared memo cache.
///
/// The cache persists across [`Engine::run`] calls, so a sweep following a
/// sweep over the same programs starts warm.
pub struct Engine {
    config: EngineConfig,
    cache: Arc<MemoCache>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let cache = Arc::new(MemoCache::new(
            config.shards.max(1),
            config.shard_capacity.max(1),
        ));
        Engine { config, cache }
    }

    /// A single-threaded engine (useful as the comparison baseline; still
    /// memoizes unless `memo` is disabled).
    pub fn sequential() -> Self {
        Engine::new(EngineConfig::default().with_jobs(1))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the memo-cache counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Predict one job with this engine's cache.
    pub fn run_one(&self, spec: &JobSpec) -> Prediction {
        let program = spec.source.build();
        if self.config.memo {
            let mut memo = MemoStepSimulator::new(&self.cache);
            simulate_program_with(&program, &spec.opts, &mut memo)
        } else {
            simulate_program(&program, &spec.opts)
        }
    }

    /// Execute a batch; results come back in submission order and are
    /// bit-identical to running the specs one by one on one thread.
    pub fn run(&self, specs: &[JobSpec]) -> Vec<JobResult> {
        if specs.is_empty() {
            return Vec::new();
        }
        let workers = self.config.effective_jobs().min(specs.len());
        if workers <= 1 {
            return specs
                .iter()
                .enumerate()
                .map(|(i, s)| self.execute(i, s))
                .collect();
        }

        let (work_tx, work_rx) = channel::unbounded::<usize>();
        let (done_tx, done_rx) = channel::unbounded::<JobResult>();
        for i in 0..specs.len() {
            work_tx.send(i).expect("work queue open");
        }
        drop(work_tx);

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move |_| {
                    while let Ok(i) = work_rx.recv() {
                        done_tx
                            .send(self.execute(i, &specs[i]))
                            .expect("collector open");
                    }
                });
            }
        })
        .expect("engine worker panicked");
        drop(done_tx);

        let mut slots: Vec<Option<JobResult>> = (0..specs.len()).map(|_| None).collect();
        for result in done_rx {
            let i = result.index;
            debug_assert!(slots[i].is_none(), "job {i} executed twice");
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every job completed"))
            .collect()
    }

    /// Like [`Engine::run`], but pre-validate every spec with [`lint_job`]
    /// first. If any job's report contains errors, the whole batch is
    /// refused (nothing runs) and the offending reports come back as a
    /// [`BatchRejection`] — diagnostics instead of a mid-batch panic
    /// inside a worker thread.
    pub fn run_checked(&self, specs: &[JobSpec]) -> Result<Vec<JobResult>, BatchRejection> {
        let rejected: Vec<RejectedJob> = specs
            .iter()
            .enumerate()
            .filter_map(|(index, spec)| {
                let report = lint_job(spec);
                report.has_errors().then(|| RejectedJob {
                    index,
                    label: spec.label.clone(),
                    report,
                })
            })
            .collect();
        if rejected.is_empty() {
            Ok(self.run(specs))
        } else {
            Err(BatchRejection { rejected })
        }
    }

    fn execute(&self, index: usize, spec: &JobSpec) -> JobResult {
        JobResult {
            index,
            label: spec.label.clone(),
            prediction: self.run_one(spec),
        }
    }
}

/// Index of the best (smallest-total) result, lowest index winning ties —
/// the same choice `search::sweep` makes.
pub fn best_by_total(results: &[JobResult]) -> Option<usize> {
    results
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.prediction.total)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loggp::presets;

    fn stencil_grid() -> Vec<JobSpec> {
        Grid::new()
            .source(
                "st32",
                JobSource::Stencil {
                    n: 32,
                    procs: 4,
                    iters: 6,
                    ps_per_flop: 500,
                },
            )
            .source("ca32", JobSource::Cannon { n: 32, q: 2 })
            .source(
                "ge64",
                JobSource::Gauss {
                    n: 64,
                    block: 16,
                    layout: LayoutSpec::ColCyclic(4),
                },
            )
            .machine("meiko", presets::meiko_cs2(4))
            .machine("myrinet", presets::myrinet_cluster(4))
            .build()
    }

    fn assert_identical(a: &[JobResult], b: &[JobResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.label, y.label);
            assert_eq!(x.prediction.total, y.prediction.total);
            assert_eq!(x.prediction.comp_time, y.prediction.comp_time);
            assert_eq!(x.prediction.comm_time, y.prediction.comm_time);
            assert_eq!(x.prediction.per_proc_finish, y.prediction.per_proc_finish);
            assert_eq!(x.prediction.forced_sends, y.prediction.forced_sends);
        }
    }

    #[test]
    fn parallel_matches_sequential_and_memo_is_transparent() {
        let jobs = stencil_grid();
        let plain: Vec<JobResult> = {
            let e = Engine::new(EngineConfig::default().with_jobs(1).with_memo(false));
            e.run(&jobs)
        };
        let memo_seq = Engine::sequential().run(&jobs);
        let memo_par = Engine::new(EngineConfig::default().with_jobs(4)).run(&jobs);
        assert_identical(&plain, &memo_seq);
        assert_identical(&plain, &memo_par);
    }

    #[test]
    fn repeated_steps_hit_the_cache() {
        let engine = Engine::new(EngineConfig::default().with_jobs(2));
        let jobs = Grid::new()
            .source(
                "st",
                JobSource::Stencil {
                    n: 48,
                    procs: 4,
                    iters: 40,
                    ps_per_flop: 500,
                },
            )
            .machine("meiko", presets::meiko_cs2(4))
            .build();
        engine.run(&jobs);
        let stats = engine.stats();
        // The readiness offsets settle into a steady state after a few
        // warm-up iterations; from then on every iteration is a hit.
        assert!(stats.hits >= 20, "hits: {}", stats.hits);
        assert!(stats.misses >= 1);
    }

    #[test]
    fn run_checked_rejects_bad_specs_with_diagnostics() {
        let opts = predsim_core::SimOptions::new(commsim::SimConfig::new(presets::meiko_cs2(4)));
        let specs = vec![
            JobSpec::new(
                "bad ge",
                JobSource::Gauss {
                    n: 10,
                    block: 3,
                    layout: LayoutSpec::RowCyclic(4),
                },
                opts,
            ),
            JobSpec::new("ok cannon", JobSource::Cannon { n: 32, q: 4 }, opts),
            JobSpec::new("bad cannon", JobSource::Cannon { n: 32, q: 5 }, opts),
            JobSpec::new(
                "bad stencil",
                JobSource::Stencil {
                    n: 4,
                    procs: 8,
                    iters: 1,
                    ps_per_flop: 100,
                },
                opts,
            ),
            JobSpec::new(
                "bad apsp",
                JobSource::Apsp {
                    n: 12,
                    block: 4,
                    layout: LayoutSpec::Grid2D(0, 3),
                },
                opts,
            ),
        ];
        let err = Engine::sequential().run_checked(&specs).unwrap_err();
        let indices: Vec<usize> = err.rejected.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 2, 3, 4]);
        for r in &err.rejected {
            assert!(r.report.has_errors());
            assert_eq!(
                r.report.diagnostics()[0].code,
                predsim_lint::Code::BadJobSpec
            );
        }
        let text = err.to_string();
        assert!(text.contains("4 job(s) rejected"), "{text}");
        assert!(text.contains("error[PS0501]"), "{text}");
        assert!(
            text.contains("block size 3 must divide the matrix size 10"),
            "{text}"
        );
        assert!(text.contains("grid side 5 must divide"), "{text}");
        assert!(text.contains("1..=4 bands, got 8"), "{text}");
        assert!(text.contains("zero processors"), "{text}");
    }

    #[test]
    fn run_checked_runs_clean_batches_even_with_cycles() {
        // Cannon's rotate steps are genuinely cyclic ring shifts; the
        // deadlock finding is a warning at the engine boundary (the
        // worst-case simulator forces transmissions by design), so the
        // batch must still execute — under both algorithms.
        let jobs = Grid::new()
            .source("ca", JobSource::Cannon { n: 32, q: 4 })
            .source(
                "apsp",
                JobSource::Apsp {
                    n: 24,
                    block: 8,
                    layout: LayoutSpec::Diagonal(4),
                },
            )
            .machine("meiko", presets::meiko_cs2(16))
            .build();
        let report = lint_job(&jobs[0]);
        assert!(!report.has_errors());
        assert!(report.count(predsim_lint::Severity::Warning) > 0);

        let results = Engine::sequential().run_checked(&jobs).unwrap();
        assert_eq!(results.len(), 2);

        let wc = Grid::new()
            .source("ca", JobSource::Cannon { n: 32, q: 4 })
            .machine("meiko", presets::meiko_cs2(16))
            .worst_case()
            .build();
        let results = Engine::sequential().run_checked(&wc).unwrap();
        assert!(results[0].prediction.forced_sends > 0);
    }

    #[test]
    fn empty_batch_and_best_selection() {
        let engine = Engine::sequential();
        assert!(engine.run(&[]).is_empty());
        assert_eq!(best_by_total(&[]), None);

        let jobs = Grid::new()
            .source(
                "fast",
                JobSource::Stencil {
                    n: 16,
                    procs: 2,
                    iters: 1,
                    ps_per_flop: 100,
                },
            )
            .source(
                "slow",
                JobSource::Stencil {
                    n: 64,
                    procs: 2,
                    iters: 4,
                    ps_per_flop: 900,
                },
            )
            .machine("ideal", presets::ideal(2))
            .build();
        let results = engine.run(&jobs);
        assert_eq!(best_by_total(&results), Some(0));
    }
}
