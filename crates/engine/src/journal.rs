//! The checkpoint journal: never lose a sweep.
//!
//! A [`Journal`] appends one JSONL line per finished job, flushed
//! immediately, so an interrupted batch leaves a parseable record of
//! everything that completed. [`Journal::resume`] reads that record back;
//! [`crate::Engine::run_resumable`] then skips every journalled `done` job
//! (restoring its headline numbers) and re-runs only the rest. Because
//! predictions are pure functions of their specs, the combined output is
//! bit-identical to an uninterrupted run.
//!
//! Line schema (all fields always present):
//!
//! ```json
//! {"job":3,"label":"ge @ meiko","outcome":"done","total_ps":81543210,
//!  "comp_ps":61543210,"comm_ps":20000000,"forced_sends":0,"attempts":1}
//! ```
//!
//! `outcome` is one of `done`, `timed_out`, `crashed`; only `done` lines
//! are restorable (the `*_ps` fields of the others are zero). Unparseable
//! lines — e.g. one truncated mid-write by a crash — are skipped, not
//! fatal: resuming after a hard kill must always work.

use crate::job::{JobOutcome, JobResult};
use loggp::Time;
use predsim_lint::json;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One parsed journal line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Position of the job in the submitted batch.
    pub job: usize,
    /// The job's label (must match the spec's for the entry to restore).
    pub label: String,
    /// Outcome tag: `done`, `timed_out` or `crashed`.
    pub outcome: String,
    /// Predicted total running time (zero unless `done`).
    pub total: Time,
    /// Predicted computation time (zero unless `done`).
    pub comp_time: Time,
    /// Predicted communication time (zero unless `done`).
    pub comm_time: Time,
    /// Forced transmissions (zero unless `done`).
    pub forced_sends: usize,
    /// Execution attempts the outcome took.
    pub attempts: u32,
}

impl JournalEntry {
    /// True iff this entry can stand in for re-running the job.
    pub fn is_restorable(&self) -> bool {
        self.outcome == "done"
    }

    fn parse(line: &str) -> Option<JournalEntry> {
        let v = json::parse(line).ok()?;
        let int = |key: &str| v.get(key)?.as_int();
        let ps = |key: &str| int(key).map(|n| Time::from_ps(n.max(0) as u64));
        Some(JournalEntry {
            job: usize::try_from(int("job")?).ok()?,
            label: v.get("label")?.as_str()?.to_string(),
            outcome: v.get("outcome")?.as_str()?.to_string(),
            total: ps("total_ps")?,
            comp_time: ps("comp_ps")?,
            comm_time: ps("comm_ps")?,
            forced_sends: usize::try_from(int("forced_sends")?).ok()?,
            attempts: u32::try_from(int("attempts")?).ok()?,
        })
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn render(result: &JobResult) -> String {
    let (total, comp, comm, forced) = result.outcome.totals().unwrap_or_default();
    format!(
        "{{\"job\":{},\"label\":\"{}\",\"outcome\":\"{}\",\"total_ps\":{},\
         \"comp_ps\":{},\"comm_ps\":{},\"forced_sends\":{},\"attempts\":{}}}",
        result.index,
        escape(&result.label),
        result.outcome.kind(),
        total.as_ps(),
        comp.as_ps(),
        comm.as_ps(),
        forced,
        result.outcome.attempts(),
    )
}

/// An append-only JSONL checkpoint file.
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

/// Create the missing parent directories of a journal path, so callers
/// can point a checkpoint at a nested location that does not exist yet.
fn ensure_parent(path: &Path) -> std::io::Result<()> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => std::fs::create_dir_all(parent),
        _ => Ok(()),
    }
}

impl Journal {
    /// Start a fresh journal at `path`. An existing journal is rotated to
    /// `<path>.prev` (atomically, via rename) rather than truncated in
    /// place, so a crash while the new journal is still empty cannot
    /// destroy the only copy of the previous run's checkpoint. Missing
    /// parent directories are created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        ensure_parent(&path)?;
        if path.is_file() {
            let mut prev = path.clone().into_os_string();
            prev.push(".prev");
            std::fs::rename(&path, &prev)?;
        }
        let file = File::create(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// Reopen the journal at `path` for appending, first reading back every
    /// parseable entry already in it. A missing file resumes an empty
    /// journal (nothing restored, everything re-run); missing parent
    /// directories are created, as in [`Journal::create`].
    pub fn resume(path: impl AsRef<Path>) -> std::io::Result<(Journal, Vec<JournalEntry>)> {
        let path = path.as_ref().to_path_buf();
        ensure_parent(&path)?;
        let mut entries = Vec::new();
        match File::open(&path) {
            Ok(f) => {
                for line in BufReader::new(f).lines() {
                    let line = line?;
                    if let Some(e) = JournalEntry::parse(&line) {
                        entries.push(e);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            Journal {
                path,
                file: Mutex::new(file),
            },
            entries,
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one result and flush, so a kill right after still leaves the
    /// line on disk. Restored outcomes are not re-recorded: their `done`
    /// line is already in the file this journal resumed from.
    pub fn record(&self, result: &JobResult) {
        if matches!(result.outcome, JobOutcome::Restored { .. }) {
            return;
        }
        let line = render(result);
        let mut file = self.file.lock().expect("journal poisoned");
        // A full disk mid-sweep should not take the batch down with it;
        // the worst case is a re-run of this job on resume.
        let _ = writeln!(file, "{line}");
        let _ = file.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predsim_core::Prediction;

    fn result(index: usize, label: &str, outcome: JobOutcome) -> JobResult {
        JobResult {
            index,
            label: label.into(),
            outcome,
        }
    }

    fn done(total_us: f64) -> JobOutcome {
        JobOutcome::Done {
            prediction: Prediction {
                total: Time::from_us(total_us),
                comp_time: Time::from_us(total_us / 2.0),
                comm_time: Time::from_us(total_us / 4.0),
                per_proc_comp: vec![],
                per_proc_comm: vec![],
                per_proc_finish: vec![],
                steps: vec![],
                forced_sends: 3,
            },
            attempts: 2,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        // No create_dir_all here: Journal::create/resume make missing
        // parent directories themselves.
        std::env::temp_dir()
            .join(format!("predsim-journal-{}", std::process::id()))
            .join(name)
    }

    #[test]
    fn create_and_resume_make_missing_parent_directories() {
        let dir =
            std::env::temp_dir().join(format!("predsim-journal-nested-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("a/b/c").join("ckpt.jsonl");
        assert!(!path.parent().unwrap().exists());
        {
            let journal = Journal::create(&path).unwrap();
            journal.record(&result(0, "nested", done(2.0)));
        }
        let (_j, entries) = Journal::resume(&path).unwrap();
        assert_eq!(entries.len(), 1);

        // Resume of a journal whose directories never existed either.
        let fresh = dir.join("x/y").join("fresh.jsonl");
        let (journal, entries) = Journal::resume(&fresh).unwrap();
        assert!(entries.is_empty());
        journal.record(&result(0, "first", done(1.0)));
        drop(journal);
        let (_j, entries) = Journal::resume(&fresh).unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn create_rotates_an_existing_journal_to_prev_instead_of_truncating() {
        let path = tmp("rotate.jsonl");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("jsonl.prev"));
        {
            let journal = Journal::create(&path).unwrap();
            journal.record(&result(0, "first-run", done(3.0)));
        }
        {
            let journal = Journal::create(&path).unwrap();
            journal.record(&result(0, "second-run", done(4.0)));
        }
        // The first run's checkpoint survived the second create.
        let prev = std::fs::read_to_string(path.with_extension("jsonl.prev")).unwrap();
        assert!(prev.contains("first-run"), "prev = {prev}");
        let (_j, entries) = Journal::resume(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].label, "second-run");
    }

    #[test]
    fn round_trips_entries_through_the_file() {
        let path = tmp("round.jsonl");
        let journal = Journal::create(&path).unwrap();
        journal.record(&result(0, "ge \"quoted\" @ meiko", done(10.0)));
        journal.record(&result(
            1,
            "stuck",
            JobOutcome::TimedOut {
                partial: done(1.0).prediction().unwrap().clone(),
                attempts: 3,
            },
        ));
        journal.record(&result(
            2,
            "boom",
            JobOutcome::Crashed {
                message: "worker exploded".into(),
                attempts: 1,
            },
        ));
        drop(journal);

        let (_journal, entries) = Journal::resume(&path).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].label, "ge \"quoted\" @ meiko");
        assert_eq!(entries[0].outcome, "done");
        assert!(entries[0].is_restorable());
        assert_eq!(entries[0].total, Time::from_us(10.0));
        assert_eq!(entries[0].forced_sends, 3);
        assert_eq!(entries[0].attempts, 2);
        assert_eq!(entries[1].outcome, "timed_out");
        assert!(!entries[1].is_restorable());
        assert_eq!(entries[1].total, Time::ZERO, "degraded totals are zeroed");
        assert_eq!(entries[2].outcome, "crashed");
    }

    #[test]
    fn truncated_and_garbage_lines_are_skipped() {
        let path = tmp("torn.jsonl");
        {
            let journal = Journal::create(&path).unwrap();
            journal.record(&result(0, "ok", done(5.0)));
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.clone();
        bytes.extend_from_slice(&full[..full.len() / 2]); // torn second line
        std::fs::write(&path, &bytes).unwrap();

        let (_j, entries) = Journal::resume(&path).unwrap();
        assert_eq!(entries.len(), 1, "the torn line must be skipped");
        assert_eq!(entries[0].job, 0);
    }

    #[test]
    fn resume_of_a_missing_file_is_empty_and_appendable() {
        let path = tmp("fresh.jsonl");
        let _ = std::fs::remove_file(&path);
        let (journal, entries) = Journal::resume(&path).unwrap();
        assert!(entries.is_empty());
        journal.record(&result(0, "first", done(1.0)));
        let (_j, entries) = Journal::resume(&path).unwrap();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn restored_results_are_not_duplicated() {
        let path = tmp("restored.jsonl");
        let journal = Journal::create(&path).unwrap();
        journal.record(&result(0, "a", done(1.0)));
        journal.record(&result(
            0,
            "a",
            JobOutcome::Restored {
                total: Time::from_us(1.0),
                comp_time: Time::ZERO,
                comm_time: Time::ZERO,
                forced_sends: 0,
            },
        ));
        drop(journal);
        let (_j, entries) = Journal::resume(&path).unwrap();
        assert_eq!(entries.len(), 1);
    }
}
