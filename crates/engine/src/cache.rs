//! The sharded step-pattern memo cache.
//!
//! Keys are [`StepKey`]s (canonical fingerprint of pattern × config ×
//! relative readiness); values are *normalized* simulation results —
//! schedules computed as if the earliest-ready processor entered the step
//! at time zero. Because the LogGP simulators are translation-invariant
//! (see [`crate::fingerprint`]), a cached normalized schedule shifted by
//! the step's base time is bit-identical to simulating the step directly.
//!
//! Shards are independent `parking_lot`-style `RwLock` maps selected by
//! the key's digest, so concurrent workers rarely contend; hit/miss/
//! insert/eviction counters are lock-free atomics.

use crate::fingerprint::StepKey;
use commsim::{CommPattern, SimResult, Timeline};
use loggp::Time;
use parking_lot::RwLock;
use predsim_core::{DirectStepSimulator, SimOptions, StepSimulator};
use predsim_obs::{TraceEvent, TraceSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A normalized (base-time-zero) step schedule.
#[derive(Clone, Debug)]
struct CachedStep {
    procs: usize,
    events: Arc<[commsim::CommEvent]>,
    finish: Time,
    forced_sends: usize,
}

impl CachedStep {
    fn from_result(r: &SimResult) -> Self {
        CachedStep {
            procs: r.timeline.procs(),
            events: r.timeline.events().into(),
            finish: r.finish,
            forced_sends: r.forced_sends,
        }
    }

    /// Rebuild the concrete result with every event shifted by `base`.
    fn materialize(&self, base: Time) -> SimResult {
        let mut timeline = Timeline::new(self.procs);
        for ev in self.events.iter() {
            let mut ev = *ev;
            ev.start += base;
            ev.end += base;
            timeline.push(ev);
        }
        SimResult {
            timeline,
            finish: self.finish + base,
            forced_sends: self.forced_sends,
        }
    }
}

/// Monotonic cache counters (snapshot via [`MemoCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Normalized schedules stored.
    pub inserts: u64,
    /// Entries dropped because a shard reached capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// Sharded fingerprint → normalized-schedule map.
pub struct MemoCache {
    shards: Vec<RwLock<HashMap<StepKey, CachedStep>>>,
    shard_capacity: usize,
    counters: Counters,
}

impl MemoCache {
    /// A cache with `shards` independent locks and at most
    /// `shard_capacity` entries per shard.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(
            shard_capacity > 0,
            "need room for at least one entry per shard"
        );
        MemoCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_capacity,
            counters: Counters::default(),
        }
    }

    fn shard(&self, key: &StepKey) -> &RwLock<HashMap<StepKey, CachedStep>> {
        // The digest already mixes every word; fold high bits in so shard
        // choice is not just the digest's low bits.
        let d = key.digest();
        &self.shards[((d ^ (d >> 32)) % self.shards.len() as u64) as usize]
    }

    /// Look up a normalized schedule and materialize it at `base`.
    pub fn get(&self, key: &StepKey, base: Time) -> Option<SimResult> {
        let found = self.shard(key).read().get(key).cloned();
        match found {
            Some(step) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(step.materialize(base))
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store the *normalized* result of simulating `key` (the schedule as
    /// computed with base time zero).
    pub fn insert(&self, key: StepKey, normalized: &SimResult) {
        let mut shard = self.shard(&key).write();
        if shard.len() >= self.shard_capacity && !shard.contains_key(&key) {
            // Epoch eviction: drop the whole shard. Deterministic, O(1)
            // amortized, and a sweep's working set either fits (no
            // eviction ever) or cycles anyway.
            self.counters
                .evictions
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        if shard
            .insert(key, CachedStep::from_result(normalized))
            .is_none()
        {
            self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently cached, across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`StepSimulator`] that answers repeated steps from a [`MemoCache`].
///
/// Each step's readiness vector is normalized by its minimum; the key is
/// built over the relative offsets; on a miss the step is simulated *at
/// the relative offsets* (so the stored schedule is base-free) and shifted
/// back. Translation invariance of the LogGP algorithms makes the shifted
/// schedule bit-identical to simulating at the absolute times directly.
///
/// Constructed with [`MemoStepSimulator::traced`], every lookup also emits
/// a [`TraceEvent::MemoHit`]/[`TraceEvent::MemoMiss`] event — purely
/// observational, the returned schedules are unaffected.
pub struct MemoStepSimulator<'a> {
    cache: &'a MemoCache,
    trace: Option<(&'a dyn TraceSink, u64)>,
    /// Miss-path backend; owning it (rather than constructing one per
    /// miss) keeps one `SimScratch` alive across the whole job, so cache
    /// misses reuse the same arenas the direct simulator would.
    direct: DirectStepSimulator,
}

impl<'a> MemoStepSimulator<'a> {
    /// A simulator backed by `cache`.
    pub fn new(cache: &'a MemoCache) -> Self {
        MemoStepSimulator {
            cache,
            trace: None,
            direct: DirectStepSimulator::new(),
        }
    }

    /// A simulator backed by `cache` that reports every hit and miss to
    /// `sink`, stamped with the engine job index `job` (`u64::MAX` when
    /// the lookup is not tied to a batch job).
    pub fn traced(cache: &'a MemoCache, sink: &'a dyn TraceSink, job: u64) -> Self {
        MemoStepSimulator {
            cache,
            trace: Some((sink, job)),
            direct: DirectStepSimulator::new(),
        }
    }

    fn lookup(
        &mut self,
        step: u64,
        comm: &CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        let base = ready.iter().copied().min().unwrap_or(Time::ZERO);
        let rel: Vec<Time> = ready.iter().map(|&t| t - base).collect();
        let key = StepKey::new(comm, opts, &rel);
        if let Some(hit) = self.cache.get(&key, base) {
            if let Some((sink, job)) = self.trace {
                sink.emit(&TraceEvent::MemoHit { job, step });
            }
            return hit;
        }
        if let Some((sink, job)) = self.trace {
            sink.emit(&TraceEvent::MemoMiss { job, step });
        }
        let normalized = self.direct.simulate_comm(comm, opts, &rel);
        let shifted = CachedStep::from_result(&normalized).materialize(base);
        self.cache.insert(key, &normalized);
        shifted
    }
}

impl StepSimulator for MemoStepSimulator<'_> {
    fn simulate_comm(
        &mut self,
        comm: &CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        // No step index available on this entry point.
        self.lookup(u64::MAX, comm, opts, ready)
    }

    fn simulate_comm_step(
        &mut self,
        step_idx: usize,
        comm: &CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        self.lookup(step_idx as u64, comm, opts, ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{standard, SimConfig};
    use loggp::presets;
    use predsim_core::SimOptions;

    fn pattern() -> CommPattern {
        let mut c = CommPattern::new(2);
        c.add(0, 1, 256);
        c
    }

    #[test]
    fn hit_materializes_shifted_schedule() {
        let cache = MemoCache::new(4, 16);
        let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(2)));
        let p = pattern();
        let rel = vec![Time::ZERO, Time::from_us(2.0)];
        let key = StepKey::new(&p, &opts, &rel);

        assert!(cache.get(&key, Time::ZERO).is_none());
        let normalized = standard::simulate_from(&p, &opts.cfg, &rel);
        cache.insert(key.clone(), &normalized);

        let base = Time::from_us(100.0);
        let hit = cache.get(&key, base).expect("cached");
        assert_eq!(hit.finish, normalized.finish + base);
        for (a, b) in hit
            .timeline
            .events()
            .iter()
            .zip(normalized.timeline.events())
        {
            assert_eq!(a.start, b.start + base);
            assert_eq!(a.end, b.end + base);
            assert_eq!((a.proc, a.kind, a.msg_id), (b.proc, b.kind, b.msg_id));
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn capacity_triggers_epoch_eviction() {
        let cache = MemoCache::new(1, 2);
        let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(2)));
        let normalized = standard::simulate(&pattern(), &opts.cfg);
        for bytes in 1..=5usize {
            let mut c = CommPattern::new(2);
            c.add(0, 1, bytes);
            let key = StepKey::new(&c, &opts, &[Time::ZERO, Time::ZERO]);
            cache.insert(key, &normalized);
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 2, "evictions: {}", stats.evictions);
        assert!(cache.len() <= 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn memo_simulator_matches_direct_on_hit_and_miss() {
        let cache = MemoCache::new(2, 64);
        let mut memo = MemoStepSimulator::new(&cache);
        let mut direct = DirectStepSimulator::new();
        let p = pattern();
        for opts in [
            SimOptions::new(SimConfig::new(presets::meiko_cs2(2))),
            SimOptions::new(SimConfig::new(presets::meiko_cs2(2))).worst_case(),
        ] {
            // Same relative shape at three different absolute bases: the
            // first call misses, the rest hit — all must equal direct.
            for base_us in [0.0, 55.0, 1234.5] {
                let ready = vec![Time::from_us(base_us), Time::from_us(base_us + 7.0)];
                let want = direct.simulate_comm(&p, &opts, &ready);
                let got = memo.simulate_comm(&p, &opts, &ready);
                assert_eq!(got.finish, want.finish);
                assert_eq!(got.forced_sends, want.forced_sends);
                assert_eq!(got.timeline.events(), want.timeline.events());
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "one miss per algorithm");
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn traced_memo_reports_hits_and_misses_without_changing_results() {
        let cache = MemoCache::new(2, 64);
        let sink = predsim_obs::MemorySink::new();
        let p = pattern();
        let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(2)));
        let ready = vec![Time::ZERO, Time::from_us(1.0)];
        let want = DirectStepSimulator::new().simulate_comm(&p, &opts, &ready);

        let mut memo = MemoStepSimulator::traced(&cache, &sink, 9);
        let miss = memo.simulate_comm_step(4, &p, &opts, &ready);
        let hit = memo.simulate_comm_step(4, &p, &opts, &ready);
        assert_eq!(miss.timeline.events(), want.timeline.events());
        assert_eq!(hit.timeline.events(), want.timeline.events());
        assert_eq!(
            sink.events(),
            vec![
                TraceEvent::MemoMiss { job: 9, step: 4 },
                TraceEvent::MemoHit { job: 9, step: 4 },
            ]
        );

        // The index-less entry point stamps the unknown-step sentinel.
        memo.simulate_comm(&p, &opts, &ready);
        assert!(matches!(
            sink.events().last(),
            Some(TraceEvent::MemoHit { step: u64::MAX, .. })
        ));
    }
}
