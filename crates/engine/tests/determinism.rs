//! Property tests: the engine is a pure optimization.
//!
//! Whatever the worker count and whether the memo cache is on, a batch's
//! results must be bit-identical — same predicted times, same per-step
//! records, same simulated event counts — to evaluating the same specs
//! sequentially with the direct simulator (which is what
//! `predsim_core::search::sweep` does).

use loggp::{presets, LogGpParams, Time};
use predsim_core::{
    search, simulate_program_with, DirectStepSimulator, Prediction, SimOptions, StepSimulator,
};
use predsim_engine::{
    best_by_total, Engine, EngineConfig, EngineObs, JobSource, JobSpec, LayoutSpec, MemoCache,
    MemoStepSimulator,
};
use predsim_faults::{FaultPlan, FaultSpec};
use proptest::prelude::*;
use std::sync::Arc;

fn machine_for(idx: usize, procs: usize) -> LogGpParams {
    match idx % 5 {
        0 => presets::meiko_cs2(procs),
        1 => presets::intel_paragon(procs),
        2 => presets::myrinet_cluster(procs),
        3 => presets::ethernet_cluster(procs),
        _ => presets::ideal(procs),
    }
}

/// Decode one `(kind, param)` pair into a small GE / stencil / Cannon job
/// source — pure arithmetic so the whole grid derives from plain integers.
fn source_for(kind: usize, param: usize) -> JobSource {
    match kind % 3 {
        0 => {
            let n = [32, 48, 64][param % 3];
            let block = [8, 16][param % 2];
            let procs = 2 + param % 3;
            let layout = match param % 3 {
                0 => LayoutSpec::Diagonal(procs),
                1 => LayoutSpec::RowCyclic(procs),
                _ => LayoutSpec::ColCyclic(procs),
            };
            JobSource::Gauss { n, block, layout }
        }
        1 => JobSource::Stencil {
            n: 8 + param % 24,
            procs: 2 + param % 3,
            iters: 1 + param % 5,
            ps_per_flop: 200 + 100 * (param % 4) as u64,
        },
        _ => {
            let q = [2, 2, 4][param % 3];
            JobSource::Cannon {
                n: q * (4 + param % 5),
                q,
            }
        }
    }
}

fn specs_for(kinds: &[(usize, usize)], mach: usize, worst: bool) -> Vec<JobSpec> {
    kinds
        .iter()
        .enumerate()
        .map(|(i, &(kind, param))| {
            let source = source_for(kind, param);
            let mut opts =
                SimOptions::new(commsim::SimConfig::new(machine_for(mach, source.procs())));
            if worst {
                opts = opts.worst_case();
            }
            JobSpec::new(format!("job{i}"), source, opts)
        })
        .collect()
}

fn assert_predictions_identical(a: &Prediction, b: &Prediction, label: &str) {
    assert_eq!(a.total, b.total, "{label}: total");
    assert_eq!(a.comp_time, b.comp_time, "{label}: comp");
    assert_eq!(a.comm_time, b.comm_time, "{label}: comm");
    assert_eq!(a.per_proc_comp, b.per_proc_comp, "{label}: per-proc comp");
    assert_eq!(a.per_proc_comm, b.per_proc_comm, "{label}: per-proc comm");
    assert_eq!(
        a.per_proc_finish, b.per_proc_finish,
        "{label}: per-proc finish"
    );
    assert_eq!(a.forced_sends, b.forced_sends, "{label}: forced sends");
    assert_eq!(a.steps.len(), b.steps.len(), "{label}: step count");
    for (x, y) in a.steps.iter().zip(&b.steps) {
        assert_eq!(x.label, y.label, "{label}: step label");
        assert_eq!(
            (x.start, x.comp_end, x.comm_end),
            (y.start, y.comp_end, y.comm_end),
            "{label}: step '{}' times",
            x.label
        );
    }
}

/// A [`StepSimulator`] wrapper that also counts committed events — the
/// "event counts" half of the bit-identical claim.
struct Counting<S> {
    inner: S,
    events: usize,
    finishes: Vec<Time>,
}

impl<S> Counting<S> {
    fn new(inner: S) -> Self {
        Counting {
            inner,
            events: 0,
            finishes: Vec::new(),
        }
    }
}

impl<S: StepSimulator> StepSimulator for Counting<S> {
    fn simulate_comm(
        &mut self,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> commsim::SimResult {
        let r = self.inner.simulate_comm(comm, opts, ready);
        self.events += r.timeline.len();
        self.finishes.push(r.finish);
        r
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// N workers, with and without memo, reproduce the sequential direct
    /// path exactly, and pick the same optimum `search::sweep` picks.
    #[test]
    fn engine_is_bit_identical_to_sequential_sweep(
        (kinds, mach, jobs, worst) in (
            proptest::collection::vec((0usize..3, 0usize..32), 1..6),
            0usize..5,
            2usize..5,
            proptest::bool::ANY,
        )
    ) {
        let specs = specs_for(&kinds, mach, worst);

        // The reference: one thread, no memo — exactly what a plain loop
        // over `simulate_program` computes.
        let baseline = Engine::new(EngineConfig::default().with_jobs(1).with_memo(false)).run(&specs);

        for memo in [false, true] {
            let engine = Engine::new(EngineConfig::default().with_jobs(jobs).with_memo(memo));
            let results = engine.run(&specs);
            prop_assert_eq!(results.len(), baseline.len());
            for (r, b) in results.iter().zip(&baseline) {
                prop_assert_eq!(r.index, b.index);
                prop_assert_eq!(&r.label, &b.label);
                assert_predictions_identical(
                    r.prediction(),
                    b.prediction(),
                    &format!("jobs={jobs} memo={memo} {}", r.label),
                );
            }
        }

        // Optimum selection agrees with the sequential search primitive.
        let totals: Vec<Time> = baseline.iter().map(|r| r.prediction().total).collect();
        let idx: Vec<usize> = (0..totals.len()).collect();
        let sweep = search::sweep(&idx, |i| totals[i]);
        let engine_best = best_by_total(&baseline).unwrap();
        prop_assert_eq!(sweep.best, engine_best);
        prop_assert_eq!(sweep.best_time, baseline[engine_best].prediction().total);
    }

    /// The memoizing step simulator commits the same events (same count,
    /// same per-step finish times) as the direct one, even when many
    /// lookups hit the cache.
    #[test]
    fn memo_preserves_event_counts(
        (kind, param, mach, worst) in (0usize..3, 0usize..64, 0usize..5, proptest::bool::ANY)
    ) {
        let source = source_for(kind, param);
        let mut opts = SimOptions::new(commsim::SimConfig::new(machine_for(mach, source.procs())));
        if worst {
            opts = opts.worst_case();
        }
        let program = source.build();

        let mut direct = Counting::new(DirectStepSimulator::new());
        let direct_pred = simulate_program_with(&program, &opts, &mut direct);

        let cache = MemoCache::new(4, 1024);
        let mut memo = Counting::new(MemoStepSimulator::new(&cache));
        let memo_pred = simulate_program_with(&program, &opts, &mut memo);

        assert_predictions_identical(&direct_pred, &memo_pred, "memo vs direct");
        prop_assert_eq!(direct.events, memo.events, "committed event counts differ");
        prop_assert_eq!(direct.finishes, memo.finishes, "per-step finish times differ");

        // Re-running the same program is answered largely from the cache
        // and still identical.
        let mut warm = Counting::new(MemoStepSimulator::new(&cache));
        let warm_pred = simulate_program_with(&program, &opts, &mut warm);
        assert_predictions_identical(&direct_pred, &warm_pred, "warm memo vs direct");
        prop_assert_eq!(direct.events, warm.events);
        let stats = cache.stats();
        prop_assert!(stats.hits >= stats.misses, "second run must hit: {:?}", stats);
    }

    /// Tracing and metrics are purely observational: an engine with a
    /// sink and a registry attached returns bit-identical results to the
    /// bare sequential engine, whatever the worker count, and traces
    /// every job exactly once.
    #[test]
    fn observability_is_bit_identical(
        (kinds, mach, jobs, worst) in (
            proptest::collection::vec((0usize..3, 0usize..32), 1..6),
            0usize..5,
            1usize..5,
            proptest::bool::ANY,
        )
    ) {
        let specs = specs_for(&kinds, mach, worst);
        let baseline =
            Engine::new(EngineConfig::default().with_jobs(1).with_memo(false)).run(&specs);

        let sink = Arc::new(predsim_obs::MemorySink::new());
        let obs = EngineObs::new().with_sink(sink.clone());
        let engine = Engine::with_obs(EngineConfig::default().with_jobs(jobs), obs);
        let report = engine.run_report(&specs);

        prop_assert_eq!(report.results.len(), baseline.len());
        for (r, b) in report.results.iter().zip(&baseline) {
            prop_assert_eq!(r.index, b.index);
            assert_predictions_identical(
                r.prediction(),
                b.prediction(),
                &format!("obs-on jobs={jobs} {}", r.label),
            );
        }

        let events = sink.events();
        let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
        prop_assert_eq!(count("job_start"), specs.len());
        prop_assert_eq!(count("job_finish"), specs.len());
        prop_assert_eq!(count("worker_assign"), specs.len());
        // Memo events account for every cache lookup the run made.
        prop_assert_eq!(
            (count("memo_hit") as u64, count("memo_miss") as u64),
            (report.cache.hits, report.cache.misses)
        );
        prop_assert_eq!(
            report.metrics.scalar("engine_jobs_total", &[]),
            Some(specs.len() as u64)
        );
    }

    /// Fault injection is deterministic across worker counts: the same
    /// specs under the same seeded plan produce bit-identical outcomes
    /// with `--jobs 1` and `--jobs N`, and a zero-rate plan reproduces
    /// the fault-free batch exactly.
    #[test]
    fn faulted_batches_are_identical_across_worker_counts(
        (kinds, mach, jobs, drop_ppm, seed) in (
            proptest::collection::vec((0usize..3, 0usize..32), 1..5),
            0usize..5,
            2usize..5,
            prop_oneof![Just(0u32), 1u32..400_000],
            any::<u64>(),
        )
    ) {
        let plan = FaultPlan::new(
            FaultSpec {
                drop_ppm,
                max_attempts: 4,
                ..FaultSpec::default()
            },
            seed,
        );
        let specs: Vec<JobSpec> = specs_for(&kinds, mach, false)
            .into_iter()
            .map(|s| s.with_faults(plan.clone()))
            .collect();

        let sequential = Engine::new(EngineConfig::default().with_jobs(1)).run(&specs);
        let parallel = Engine::new(EngineConfig::default().with_jobs(jobs)).run(&specs);
        prop_assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            prop_assert_eq!(s.index, p.index);
            prop_assert_eq!(&s.outcome, &p.outcome, "jobs={} {}", jobs, s.label);
        }

        if drop_ppm == 0 {
            let clean =
                Engine::new(EngineConfig::default().with_jobs(1)).run(&specs_for(&kinds, mach, false));
            for (s, c) in sequential.iter().zip(&clean) {
                assert_predictions_identical(
                    s.prediction(),
                    c.prediction(),
                    &format!("zero plan vs clean {}", s.label),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Static bounds: simulation-free intervals bracket every engine result, and
// the hi-ranked dispatch order stays a pure optimization.
// ---------------------------------------------------------------------------

#[test]
fn static_bounds_bracket_engine_results() {
    let kinds: Vec<(usize, usize)> = (0..9).map(|i| (i % 3, i * 7)).collect();
    for mach in 0..5 {
        for worst in [false, true] {
            let specs = specs_for(&kinds, mach, worst);
            let results = Engine::new(EngineConfig::default().with_jobs(3)).run(&specs);
            for (spec, result) in specs.iter().zip(&results) {
                let bounds = predsim_engine::static_bounds(spec)
                    .unwrap_or_else(|| panic!("{}: no bounds for a clean spec", spec.label));
                let total = result.prediction().total;
                assert!(
                    bounds.lo <= total && total <= bounds.hi,
                    "{} (mach {mach}, worst {worst}): {} outside [{}, {}]",
                    spec.label,
                    total,
                    bounds.lo,
                    bounds.hi
                );
            }
        }
    }
}

#[test]
fn static_bounds_are_unavailable_for_faulted_and_infeasible_jobs() {
    let opts = SimOptions::new(commsim::SimConfig::new(presets::meiko_cs2(4)));
    let clean = JobSpec::new(
        "clean",
        JobSource::Stencil {
            n: 32,
            procs: 4,
            iters: 2,
            ps_per_flop: 500,
        },
        opts,
    );
    assert!(predsim_engine::static_bounds(&clean).is_some());

    let plan = FaultPlan::new(
        FaultSpec {
            drop_ppm: 1000,
            ..FaultSpec::default()
        },
        7,
    );
    assert!(predsim_engine::static_bounds(&clean.clone().with_faults(plan)).is_none());

    let infeasible = JobSpec::new(
        "bad",
        JobSource::Gauss {
            n: 10,
            block: 24,
            layout: LayoutSpec::Diagonal(4),
        },
        opts,
    );
    assert!(predsim_engine::static_bounds(&infeasible).is_none());
}

/// The ranked dispatch path (workers > 1) must produce results identical
/// to the sequential path even when the batch mixes clean, faulted and
/// wildly different-sized jobs — ranking reorders only the work queue.
#[test]
fn ranked_dispatch_is_bit_identical_to_sequential() {
    let plan = FaultPlan::new(
        FaultSpec {
            drop_ppm: 0,
            ..FaultSpec::default()
        },
        3,
    );
    let mut specs = Vec::new();
    for (i, (kind, param)) in [(0usize, 5usize), (1, 20), (2, 9), (1, 3), (0, 16)]
        .iter()
        .enumerate()
    {
        let source = source_for(*kind, *param);
        let procs = source.build().procs();
        let opts = SimOptions::new(commsim::SimConfig::new(machine_for(i, procs)));
        let mut spec = JobSpec::new(format!("mix{i}"), source, opts);
        if i == 2 {
            spec = spec.with_faults(plan.clone());
        }
        specs.push(spec);
    }
    let sequential = Engine::new(EngineConfig::default().with_jobs(1)).run(&specs);
    let ranked = Engine::new(EngineConfig::default().with_jobs(4)).run(&specs);
    assert_eq!(sequential.len(), ranked.len());
    for (s, r) in sequential.iter().zip(&ranked) {
        assert_eq!(s.index, r.index);
        assert_eq!(&s.outcome, &r.outcome, "{}", s.label);
    }
}
