//! The oblivious program representation.
//!
//! The paper restricts itself to programs whose "communication pattern does
//! not depend on the input" and where "communication and computation steps
//! do not overlap; they are alternating". Such a program is fully described
//! by a finite sequence of steps, each carrying the computation time every
//! processor spends in the step and the communication pattern that follows.

use commsim::CommPattern;
use loggp::Time;

/// One alternation of the program: a computation phase (per-processor
/// durations) followed by a communication phase (a message pattern).
/// Either half may be absent.
#[derive(Clone, Debug)]
pub struct Step {
    /// Human-readable label (e.g. `"wave 7"`), used in reports.
    pub label: String,
    /// Per-processor computation time of this step; an empty vector means
    /// no computation phase.
    pub comp: Vec<Time>,
    /// The communication pattern that follows the computation; an empty
    /// pattern means no communication phase.
    pub comm: CommPattern,
}

impl Step {
    /// An empty step with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Step {
            label: label.into(),
            comp: Vec::new(),
            comm: CommPattern::new(0),
        }
    }

    /// Attach a computation phase (one duration per processor).
    pub fn with_comp(mut self, comp: Vec<Time>) -> Self {
        self.comp = comp;
        self
    }

    /// Attach a communication phase.
    pub fn with_comm(mut self, comm: CommPattern) -> Self {
        self.comm = comm;
        self
    }

    /// Total computation time charged in this step (across processors).
    pub fn comp_total(&self) -> Time {
        self.comp.iter().copied().sum()
    }

    /// Largest single computation charge of the step.
    pub fn comp_max(&self) -> Time {
        self.comp.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// True iff this step does nothing at all.
    pub fn is_empty(&self) -> bool {
        self.comp.iter().all(|t| t.is_zero()) && self.comm.is_empty()
    }
}

/// Optional per-step *work profile* metadata, produced by application trace
/// generators alongside the [`Program`] and consumed by the machine
/// emulator to model effects the pure LogGP prediction deliberately
/// ignores: per-block iteration overhead and cache behaviour.
#[derive(Clone, Debug, Default)]
pub struct StepLoad {
    /// Per processor: the ordered list of `(base address, length in
    /// bytes)` memory ranges its computation phase touches in this step
    /// (each visit feeds the cache simulator; repeats are meaningful).
    /// Applications assign each logical block a stable address range.
    pub touches: Vec<Vec<(u64, u32)>>,
    /// Per processor: the number of block-loop iterations performed (each
    /// one costs the emulator's per-visit overhead).
    pub visits: Vec<u32>,
}

impl StepLoad {
    /// An empty load profile for `procs` processors.
    pub fn new(procs: usize) -> Self {
        StepLoad {
            touches: vec![Vec::new(); procs],
            visits: vec![0; procs],
        }
    }

    /// Record that `proc` touches `len` bytes at `base` once.
    pub fn touch(&mut self, proc: usize, base: u64, len: u32) {
        self.touches[proc].push((base, len));
    }

    /// Record `n` loop iterations at `proc`.
    pub fn add_visits(&mut self, proc: usize, n: u32) {
        self.visits[proc] += n;
    }
}

/// An oblivious parallel program: a processor count and a step sequence.
#[derive(Clone, Debug)]
pub struct Program {
    procs: usize,
    steps: Vec<Step>,
}

impl Program {
    /// An empty program over `procs` processors.
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0, "a program needs at least one processor");
        Program {
            procs,
            steps: Vec::new(),
        }
    }

    /// Append a step.
    ///
    /// # Panics
    /// Panics if the step's computation vector or communication pattern
    /// disagrees with the program's processor count (an empty half is
    /// always accepted).
    pub fn push(&mut self, step: Step) {
        assert!(
            step.comp.is_empty() || step.comp.len() == self.procs,
            "step '{}' has {} computation entries for {} processors",
            step.label,
            step.comp.len(),
            self.procs
        );
        assert!(
            step.comm.is_empty() || step.comm.procs() == self.procs,
            "step '{}' has a pattern over {} processors, program has {}",
            step.label,
            step.comm.procs(),
            self.procs
        );
        self.steps.push(step);
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The step sequence.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the program has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total messages across all communication phases.
    pub fn total_messages(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.comm.network_messages().count())
            .sum()
    }

    /// Total bytes across all communication phases (network messages only).
    pub fn total_network_bytes(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| s.comm.network_messages())
            .map(|m| m.bytes)
            .sum()
    }

    /// Per-processor sum of computation charges over the whole program —
    /// the pure computation load balance.
    pub fn comp_load(&self) -> Vec<Time> {
        let mut load = vec![Time::ZERO; self.procs];
        for s in &self.steps {
            for (p, &t) in s.comp.iter().enumerate() {
                load[p] += t;
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_builders() {
        let mut comm = CommPattern::new(2);
        comm.add(0, 1, 10);
        let s = Step::new("s")
            .with_comp(vec![Time::from_us(1.0), Time::from_us(3.0)])
            .with_comm(comm);
        assert_eq!(s.comp_total(), Time::from_us(4.0));
        assert_eq!(s.comp_max(), Time::from_us(3.0));
        assert!(!s.is_empty());
        assert!(Step::new("empty").is_empty());
    }

    #[test]
    fn program_accumulates() {
        let mut p = Program::new(2);
        assert!(p.is_empty());
        let mut comm = CommPattern::new(2);
        comm.add(0, 1, 100);
        comm.add(1, 1, 50); // self-message: not a network message
        p.push(Step::new("a").with_comp(vec![Time::from_us(1.0); 2]));
        p.push(Step::new("b").with_comm(comm));
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_messages(), 1);
        assert_eq!(p.total_network_bytes(), 100);
        assert_eq!(p.comp_load(), vec![Time::from_us(1.0); 2]);
    }

    #[test]
    #[should_panic(expected = "computation entries")]
    fn comp_arity_checked() {
        let mut p = Program::new(3);
        p.push(Step::new("bad").with_comp(vec![Time::ZERO; 2]));
    }

    #[test]
    #[should_panic(expected = "pattern over")]
    fn comm_arity_checked() {
        let mut p = Program::new(3);
        let mut comm = CommPattern::new(2);
        comm.add(0, 1, 1);
        p.push(Step::new("bad").with_comm(comm));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_proc_program_rejected() {
        let _ = Program::new(0);
    }
}
