//! The oblivious program representation.
//!
//! The paper restricts itself to programs whose "communication pattern does
//! not depend on the input" and where "communication and computation steps
//! do not overlap; they are alternating". Such a program is fully described
//! by a finite sequence of steps, each carrying the computation time every
//! processor spends in the step and the communication pattern that follows.

use commsim::CommPattern;
use loggp::Time;
use std::fmt;

/// A structural defect that makes a [`Step`] unacceptable for a
/// [`Program`] — the typed form of what [`Program::push`] /
/// [`Program::new`] panic about. Produced by [`Program::try_push`] and
/// [`Program::try_new`] so front ends (CLI, batch engine) can surface
/// diagnostics instead of aborting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// A program over zero processors was requested.
    NoProcessors,
    /// A step's computation vector disagrees with the processor count.
    CompArity {
        /// The offending step's label.
        label: String,
        /// Number of computation entries the step carries.
        got: usize,
        /// Processor count of the program.
        procs: usize,
    },
    /// A step's communication pattern spans a different processor count.
    PatternProcs {
        /// The offending step's label.
        label: String,
        /// Processor count of the step's pattern.
        got: usize,
        /// Processor count of the program.
        procs: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::NoProcessors => write!(f, "a program needs at least one processor"),
            ProgramError::CompArity { label, got, procs } => write!(
                f,
                "step '{label}' has {got} computation entries for {procs} processors"
            ),
            ProgramError::PatternProcs { label, got, procs } => write!(
                f,
                "step '{label}' has a pattern over {got} processors, program has {procs}"
            ),
        }
    }
}

impl std::error::Error for ProgramError {}

/// One alternation of the program: a computation phase (per-processor
/// durations) followed by a communication phase (a message pattern).
/// Either half may be absent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Human-readable label (e.g. `"wave 7"`), used in reports.
    pub label: String,
    /// Per-processor computation time of this step; an empty vector means
    /// no computation phase.
    pub comp: Vec<Time>,
    /// The communication pattern that follows the computation; an empty
    /// pattern means no communication phase.
    pub comm: CommPattern,
}

impl Step {
    /// An empty step with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Step {
            label: label.into(),
            comp: Vec::new(),
            comm: CommPattern::new(0),
        }
    }

    /// Attach a computation phase (one duration per processor).
    pub fn with_comp(mut self, comp: Vec<Time>) -> Self {
        self.comp = comp;
        self
    }

    /// Attach a communication phase.
    pub fn with_comm(mut self, comm: CommPattern) -> Self {
        self.comm = comm;
        self
    }

    /// Total computation time charged in this step (across processors).
    pub fn comp_total(&self) -> Time {
        self.comp.iter().copied().sum()
    }

    /// Largest single computation charge of the step.
    pub fn comp_max(&self) -> Time {
        self.comp.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// True iff this step does nothing at all.
    pub fn is_empty(&self) -> bool {
        self.comp.iter().all(|t| t.is_zero()) && self.comm.is_empty()
    }
}

/// Optional per-step *work profile* metadata, produced by application trace
/// generators alongside the [`Program`] and consumed by the machine
/// emulator to model effects the pure LogGP prediction deliberately
/// ignores: per-block iteration overhead and cache behaviour.
#[derive(Clone, Debug, Default)]
pub struct StepLoad {
    /// Per processor: the ordered list of `(base address, length in
    /// bytes)` memory ranges its computation phase touches in this step
    /// (each visit feeds the cache simulator; repeats are meaningful).
    /// Applications assign each logical block a stable address range.
    pub touches: Vec<Vec<(u64, u32)>>,
    /// Per processor: the number of block-loop iterations performed (each
    /// one costs the emulator's per-visit overhead).
    pub visits: Vec<u32>,
}

impl StepLoad {
    /// An empty load profile for `procs` processors.
    pub fn new(procs: usize) -> Self {
        StepLoad {
            touches: vec![Vec::new(); procs],
            visits: vec![0; procs],
        }
    }

    /// Record that `proc` touches `len` bytes at `base` once.
    pub fn touch(&mut self, proc: usize, base: u64, len: u32) {
        self.touches[proc].push((base, len));
    }

    /// Record `n` loop iterations at `proc`.
    pub fn add_visits(&mut self, proc: usize, n: u32) {
        self.visits[proc] += n;
    }
}

/// An oblivious parallel program: a processor count and a step sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    procs: usize,
    steps: Vec<Step>,
}

impl Program {
    /// An empty program over `procs` processors.
    ///
    /// # Panics
    /// Panics if `procs == 0`; use [`Program::try_new`] for a fallible
    /// version.
    pub fn new(procs: usize) -> Self {
        Program::try_new(procs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Program::new`].
    pub fn try_new(procs: usize) -> Result<Self, ProgramError> {
        if procs == 0 {
            return Err(ProgramError::NoProcessors);
        }
        Ok(Program {
            procs,
            steps: Vec::new(),
        })
    }

    /// Append a step.
    ///
    /// # Panics
    /// Panics if the step's computation vector or communication pattern
    /// disagrees with the program's processor count (an empty half is
    /// always accepted); use [`Program::try_push`] for a fallible version.
    pub fn push(&mut self, step: Step) {
        self.try_push(step).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Program::push`]: validates the step's arities against the
    /// program's processor count and returns the typed defect instead of
    /// panicking. On error the step is not appended (it is returned inside
    /// the error's context only by label; the program is unchanged).
    pub fn try_push(&mut self, step: Step) -> Result<(), ProgramError> {
        if !step.comp.is_empty() && step.comp.len() != self.procs {
            return Err(ProgramError::CompArity {
                label: step.label,
                got: step.comp.len(),
                procs: self.procs,
            });
        }
        if !step.comm.is_empty() && step.comm.procs() != self.procs {
            return Err(ProgramError::PatternProcs {
                label: step.label,
                got: step.comm.procs(),
                procs: self.procs,
            });
        }
        self.steps.push(step);
        Ok(())
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The step sequence.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the program has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total messages across all communication phases.
    pub fn total_messages(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.comm.network_messages().count())
            .sum()
    }

    /// Total bytes across all communication phases (network messages only).
    pub fn total_network_bytes(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| s.comm.network_messages())
            .map(|m| m.bytes)
            .sum()
    }

    /// Per-processor sum of computation charges over the whole program —
    /// the pure computation load balance.
    pub fn comp_load(&self) -> Vec<Time> {
        let mut load = vec![Time::ZERO; self.procs];
        for s in &self.steps {
            for (p, &t) in s.comp.iter().enumerate() {
                load[p] += t;
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_builders() {
        let mut comm = CommPattern::new(2);
        comm.add(0, 1, 10);
        let s = Step::new("s")
            .with_comp(vec![Time::from_us(1.0), Time::from_us(3.0)])
            .with_comm(comm);
        assert_eq!(s.comp_total(), Time::from_us(4.0));
        assert_eq!(s.comp_max(), Time::from_us(3.0));
        assert!(!s.is_empty());
        assert!(Step::new("empty").is_empty());
    }

    #[test]
    fn program_accumulates() {
        let mut p = Program::new(2);
        assert!(p.is_empty());
        let mut comm = CommPattern::new(2);
        comm.add(0, 1, 100);
        comm.add(1, 1, 50); // self-message: not a network message
        p.push(Step::new("a").with_comp(vec![Time::from_us(1.0); 2]));
        p.push(Step::new("b").with_comm(comm));
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_messages(), 1);
        assert_eq!(p.total_network_bytes(), 100);
        assert_eq!(p.comp_load(), vec![Time::from_us(1.0); 2]);
    }

    #[test]
    #[should_panic(expected = "computation entries")]
    fn comp_arity_checked() {
        let mut p = Program::new(3);
        p.push(Step::new("bad").with_comp(vec![Time::ZERO; 2]));
    }

    #[test]
    #[should_panic(expected = "pattern over")]
    fn comm_arity_checked() {
        let mut p = Program::new(3);
        let mut comm = CommPattern::new(2);
        comm.add(0, 1, 1);
        p.push(Step::new("bad").with_comm(comm));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_proc_program_rejected() {
        let _ = Program::new(0);
    }

    #[test]
    fn try_new_and_try_push_return_typed_errors() {
        assert_eq!(Program::try_new(0).unwrap_err(), ProgramError::NoProcessors);

        let mut p = Program::try_new(3).unwrap();
        let err = p
            .try_push(Step::new("bad").with_comp(vec![Time::ZERO; 2]))
            .unwrap_err();
        assert_eq!(
            err,
            ProgramError::CompArity {
                label: "bad".into(),
                got: 2,
                procs: 3
            }
        );
        assert!(err.to_string().contains("2 computation entries"));

        let mut comm = CommPattern::new(2);
        comm.add(0, 1, 1);
        let err = p.try_push(Step::new("worse").with_comm(comm)).unwrap_err();
        assert_eq!(
            err,
            ProgramError::PatternProcs {
                label: "worse".into(),
                got: 2,
                procs: 3
            }
        );
        assert!(err.to_string().contains("pattern over 2 processors"));

        // Failed pushes leave the program unchanged; good ones append.
        assert!(p.is_empty());
        p.try_push(Step::new("ok").with_comp(vec![Time::ZERO; 3]))
            .unwrap();
        assert_eq!(p.len(), 1);
    }
}
