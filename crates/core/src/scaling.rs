//! Scalability metrics over predicted running times.
//!
//! The paper's §1 names "analyzing the scaling behavior of parallel
//! programs" as a use of running-time prediction; these helpers turn a
//! `(processor count, predicted time)` series into the standard metrics:
//! speedup, parallel efficiency, and the Karp–Flatt experimentally
//! determined serial fraction (a sensitive scalability diagnostic).

use loggp::Time;

/// One point of a scaling study.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Processor count.
    pub procs: usize,
    /// Predicted (or measured) running time.
    pub time: Time,
}

/// Derived metrics for one point, relative to the 1-processor baseline.
#[derive(Clone, Copy, Debug)]
pub struct ScaleMetrics {
    /// Processor count.
    pub procs: usize,
    /// `T(1) / T(p)`.
    pub speedup: f64,
    /// `speedup / p`.
    pub efficiency: f64,
    /// Karp–Flatt serial fraction `(1/speedup − 1/p) / (1 − 1/p)`;
    /// `None` for the baseline point itself.
    pub serial_fraction: Option<f64>,
}

/// Compute the metric series. The baseline is the entry with the smallest
/// processor count (normally 1).
///
/// # Panics
/// Panics on an empty series or non-positive baseline time.
pub fn analyze(points: &[ScalePoint]) -> Vec<ScaleMetrics> {
    let base = points
        .iter()
        .min_by_key(|p| p.procs)
        .expect("need at least one scaling point");
    assert!(base.time > Time::ZERO, "baseline time must be positive");
    let t1 = base.time.as_secs_f64() * base.procs as f64; // normalize if base > 1 proc
    points
        .iter()
        .map(|p| {
            let speedup = t1 / p.time.as_secs_f64();
            let efficiency = speedup / p.procs as f64;
            let serial_fraction = if p.procs == base.procs {
                None
            } else {
                let inv_s = 1.0 / speedup;
                let inv_p = 1.0 / p.procs as f64;
                Some(((inv_s - inv_p) / (1.0 - inv_p)).max(0.0))
            };
            ScaleMetrics {
                procs: p.procs,
                speedup,
                efficiency,
                serial_fraction,
            }
        })
        .collect()
}

/// Amdahl's law: the speedup bound `1 / (f + (1−f)/p)` for serial
/// fraction `f` on `p` processors.
pub fn amdahl_bound(serial_fraction: f64, procs: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial_fraction));
    1.0 / (serial_fraction + (1.0 - serial_fraction) / procs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(procs: usize, us: f64) -> ScalePoint {
        ScalePoint {
            procs,
            time: Time::from_us(us),
        }
    }

    #[test]
    fn perfect_scaling_metrics() {
        let series = [pt(1, 800.0), pt(2, 400.0), pt(4, 200.0), pt(8, 100.0)];
        let m = analyze(&series);
        for (i, p) in [1usize, 2, 4, 8].iter().enumerate() {
            assert!((m[i].speedup - *p as f64).abs() < 1e-9);
            assert!((m[i].efficiency - 1.0).abs() < 1e-9);
            if *p > 1 {
                assert!(m[i].serial_fraction.unwrap() < 1e-9);
            }
        }
        assert!(m[0].serial_fraction.is_none());
    }

    #[test]
    fn amdahl_limited_series_recovers_serial_fraction() {
        // Build a series obeying Amdahl with f = 0.1 exactly.
        let f = 0.1;
        let t1 = 1000.0;
        let series: Vec<ScalePoint> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&p| pt(p, t1 * (f + (1.0 - f) / p as f64)))
            .collect();
        let m = analyze(&series);
        for mm in m.iter().skip(1) {
            let got = mm.serial_fraction.unwrap();
            assert!((got - f).abs() < 1e-9, "p={}: {got}", mm.procs);
            assert!(mm.speedup <= amdahl_bound(f, mm.procs) + 1e-9);
        }
    }

    #[test]
    fn amdahl_bound_extremes() {
        assert!((amdahl_bound(0.0, 64) - 64.0).abs() < 1e-12);
        assert!((amdahl_bound(1.0, 64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degrading_efficiency_shows_rising_serial_fraction() {
        // Communication-limited scaling: time floors at 100us.
        let series = [pt(1, 800.0), pt(2, 450.0), pt(4, 300.0), pt(8, 240.0)];
        let m = analyze(&series);
        let fr: Vec<f64> = m
            .iter()
            .skip(1)
            .map(|x| x.serial_fraction.unwrap())
            .collect();
        assert!(fr.windows(2).all(|w| w[1] >= w[0] - 1e-12), "{fr:?}");
        assert!(m.last().unwrap().efficiency < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_series_panics() {
        let _ = analyze(&[]);
    }
}
