//! Post-hoc analysis of predictions: where does the predicted time go,
//! and which steps are the bottlenecks?
//!
//! The paper's use-case is choosing implementation parameters; once the
//! predictor says a configuration is slow, the next question is *why*.
//! [`classify`] buckets every step of a prediction into computation-bound,
//! communication-bound or wait-bound, and [`Breakdown`] aggregates the
//! program-level split.

use crate::simulate::Prediction;
use loggp::Time;

/// What dominated one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// The computation phase was at least as long as the communication
    /// span.
    ComputationBound,
    /// The communication span exceeded the computation phase.
    CommunicationBound,
    /// The step did nothing measurable.
    Empty,
}

/// One classified step.
#[derive(Clone, Debug)]
pub struct StepClass {
    /// Step label.
    pub label: String,
    /// Computation span (max over processors).
    pub comp: Time,
    /// Communication span (completion minus computation end).
    pub comm: Time,
    /// The verdict.
    pub kind: StepKind,
}

/// Program-level aggregation of [`classify`].
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    /// Steps where computation dominated.
    pub comp_bound_steps: usize,
    /// Steps where communication dominated.
    pub comm_bound_steps: usize,
    /// Steps that did nothing.
    pub empty_steps: usize,
    /// Total time inside computation-dominated steps.
    pub comp_bound_time: Time,
    /// Total time inside communication-dominated steps.
    pub comm_bound_time: Time,
}

impl Breakdown {
    /// Fraction of classified time spent in communication-bound steps
    /// (0 when nothing was classified).
    pub fn comm_bound_fraction(&self) -> f64 {
        let total = self.comp_bound_time + self.comm_bound_time;
        if total.is_zero() {
            0.0
        } else {
            self.comm_bound_time.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Classify every step of a prediction.
pub fn classify(pred: &Prediction) -> Vec<StepClass> {
    let mut out = Vec::with_capacity(pred.steps.len());
    let mut prev_end = Time::ZERO;
    for s in &pred.steps {
        // Spans relative to the step's own phases.
        let comp = s.comp_end.saturating_sub(prev_end.min(s.comp_end));
        let comm = s.comm_end.saturating_sub(s.comp_end);
        let kind = if comp.is_zero() && comm.is_zero() {
            StepKind::Empty
        } else if comm > comp {
            StepKind::CommunicationBound
        } else {
            StepKind::ComputationBound
        };
        out.push(StepClass {
            label: s.label.clone(),
            comp,
            comm,
            kind,
        });
        prev_end = s.comm_end;
    }
    out
}

/// Aggregate a classification into a [`Breakdown`].
pub fn breakdown(classes: &[StepClass]) -> Breakdown {
    let mut b = Breakdown::default();
    for c in classes {
        match c.kind {
            StepKind::ComputationBound => {
                b.comp_bound_steps += 1;
                b.comp_bound_time += c.comp + c.comm;
            }
            StepKind::CommunicationBound => {
                b.comm_bound_steps += 1;
                b.comm_bound_time += c.comp + c.comm;
            }
            StepKind::Empty => b.empty_steps += 1,
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, Step};
    use crate::simulate::{simulate_program, SimOptions};
    use commsim::{CommPattern, SimConfig};
    use loggp::presets;

    fn predict(prog: &Program) -> Prediction {
        simulate_program(
            prog,
            &SimOptions::new(SimConfig::new(presets::meiko_cs2(prog.procs()))),
        )
    }

    #[test]
    fn classifies_comp_and_comm_bound_steps() {
        let mut prog = Program::new(2);
        // Heavy computation, no communication.
        prog.push(Step::new("crunch").with_comp(vec![Time::from_ms(5.0); 2]));
        // Tiny computation, heavy communication.
        let mut pat = CommPattern::new(2);
        pat.add(0, 1, 100_000);
        prog.push(
            Step::new("ship")
                .with_comp(vec![Time::from_us(1.0); 2])
                .with_comm(pat),
        );
        let classes = classify(&predict(&prog));
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].kind, StepKind::ComputationBound);
        assert_eq!(classes[1].kind, StepKind::CommunicationBound);

        let b = breakdown(&classes);
        assert_eq!(b.comp_bound_steps, 1);
        assert_eq!(b.comm_bound_steps, 1);
        assert!(b.comm_bound_fraction() > 0.0 && b.comm_bound_fraction() < 1.0);
    }

    #[test]
    fn empty_steps_counted() {
        let mut prog = Program::new(2);
        prog.push(Step::new("nop"));
        let classes = classify(&predict(&prog));
        assert_eq!(classes[0].kind, StepKind::Empty);
        let b = breakdown(&classes);
        assert_eq!(b.empty_steps, 1);
        assert_eq!(b.comm_bound_fraction(), 0.0);
    }

    #[test]
    fn ge_trace_is_mostly_computation_bound_at_large_blocks() {
        // Indirect cross-check with the application: at B=120 the blocked
        // elimination's waves are dominated by computation.
        use blockops::AnalyticCost;
        let layout = crate::layout::Diagonal::new(4);
        let g = gauss_like(240, 60, &layout);
        let classes = classify(&predict(&g));
        let b = breakdown(&classes);
        assert!(b.comp_bound_time > b.comm_bound_time, "{b:?}");
        // Avoid unused import warning path for AnalyticCost in non-test builds.
        let _ = AnalyticCost::paper_default();
    }

    /// A minimal elimination-shaped program built locally (the real
    /// generator lives in the `gauss` crate, which depends on this one).
    fn gauss_like(n: usize, bsz: usize, layout: &crate::layout::Diagonal) -> Program {
        use crate::layout::Layout;
        use blockops::{AnalyticCost, CostModel, OpClass};
        let cost = AnalyticCost::paper_default();
        let nb = n / bsz;
        let procs = layout.procs();
        let mut prog = Program::new(procs);
        for k in 0..nb {
            let mut comp = vec![Time::ZERO; procs];
            comp[layout.owner(k, k)] += cost.op_cost(OpClass::Op1, bsz);
            for t in k + 1..nb {
                comp[layout.owner(k, t)] += cost.op_cost(OpClass::Op2, bsz);
                comp[layout.owner(t, k)] += cost.op_cost(OpClass::Op3, bsz);
            }
            let mut pat = CommPattern::new(procs);
            for t in k + 1..nb {
                pat.add(layout.owner(k, k), layout.owner(k, t), 8 * bsz * bsz);
            }
            prog.push(
                Step::new(format!("panel {k}"))
                    .with_comp(comp)
                    .with_comm(pat),
            );
            let mut comp = vec![Time::ZERO; procs];
            for i in k + 1..nb {
                for j in k + 1..nb {
                    comp[layout.owner(i, j)] += cost.op_cost(OpClass::Op4, bsz);
                }
            }
            prog.push(Step::new(format!("update {k}")).with_comp(comp));
        }
        prog
    }
}
