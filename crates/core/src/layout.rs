//! Data layouts: assignments of grid blocks to processors.
//!
//! The paper compares two layouts for the blocked Gaussian elimination
//! (§6.2): the **row stripped cyclic** mapping (whole block-rows dealt to
//! processors round-robin — row-wise data propagation then needs no
//! messages, but load is unbalanced) and the **diagonal** mapping (blocks
//! of each anti-diagonal spread across processors — balanced within the
//! active diagonal band, at the price of more communication). Column-cyclic
//! and 2-D block-cyclic layouts are included as extensions.

use std::fmt::Debug;

/// An assignment of the blocks of an `nb × nb` grid to `procs` processors.
pub trait Layout: Send + Sync + Debug {
    /// The processor owning block `(i, j)`.
    fn owner(&self, i: usize, j: usize) -> usize;

    /// Number of processors the layout maps onto.
    fn procs(&self) -> usize;

    /// Display name (used in reports and figures).
    fn name(&self) -> String;
}

/// Row stripped cyclic: block row `i` belongs to processor `i mod P`.
#[derive(Clone, Copy, Debug)]
pub struct RowCyclic {
    procs: usize,
}

impl RowCyclic {
    /// A row-cyclic layout over `procs` processors.
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        RowCyclic { procs }
    }
}

impl Layout for RowCyclic {
    fn owner(&self, i: usize, _j: usize) -> usize {
        i % self.procs
    }
    fn procs(&self) -> usize {
        self.procs
    }
    fn name(&self) -> String {
        "row-stripped-cyclic".into()
    }
}

/// Column cyclic: block column `j` belongs to processor `j mod P`.
#[derive(Clone, Copy, Debug)]
pub struct ColCyclic {
    procs: usize,
}

impl ColCyclic {
    /// A column-cyclic layout over `procs` processors.
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        ColCyclic { procs }
    }
}

impl Layout for ColCyclic {
    fn owner(&self, _i: usize, j: usize) -> usize {
        j % self.procs
    }
    fn procs(&self) -> usize {
        self.procs
    }
    fn name(&self) -> String {
        "column-cyclic".into()
    }
}

/// Diagonal mapping: blocks are dealt to processors along anti-diagonals,
/// `owner(i, j) = (2i + j) mod P` — walking an anti-diagonal (`i+j`
/// constant, `i` increasing) advances the owner by exactly one, so any `P`
/// consecutive blocks of a diagonal land on `P` distinct processors. The
/// active diagonal band of the elimination wave is thus load-balanced,
/// which is exactly why the paper's diagonal mapping wins for large
/// blocks.
#[derive(Clone, Copy, Debug)]
pub struct Diagonal {
    procs: usize,
}

impl Diagonal {
    /// A diagonal layout over `procs` processors.
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0);
        Diagonal { procs }
    }
}

impl Layout for Diagonal {
    fn owner(&self, i: usize, j: usize) -> usize {
        // Along an anti-diagonal d = i+j: owner = (2i + j) mod P
        // = (i + d) mod P, which steps by one as i increases.
        (2 * i + j) % self.procs
    }
    fn procs(&self) -> usize {
        self.procs
    }
    fn name(&self) -> String {
        "diagonal".into()
    }
}

/// 2-D block-cyclic over a `pr × pc` processor grid (ScaLAPACK-style);
/// an extension beyond the paper's two layouts.
#[derive(Clone, Copy, Debug)]
pub struct BlockCyclic2D {
    pr: usize,
    pc: usize,
}

impl BlockCyclic2D {
    /// A layout over a `pr × pc` processor grid (`pr·pc` processors).
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0);
        BlockCyclic2D { pr, pc }
    }
}

impl Layout for BlockCyclic2D {
    fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.pr) * self.pc + (j % self.pc)
    }
    fn procs(&self) -> usize {
        self.pr * self.pc
    }
    fn name(&self) -> String {
        format!("block-cyclic-{}x{}", self.pr, self.pc)
    }
}

/// Count how many blocks of an `nb × nb` grid each processor owns — the
/// static load balance of a layout.
pub fn block_counts(layout: &dyn Layout, nb: usize) -> Vec<usize> {
    let mut counts = vec![0usize; layout.procs()];
    for i in 0..nb {
        for j in 0..nb {
            counts[layout.owner(i, j)] += 1;
        }
    }
    counts
}

/// How evenly a layout spreads each anti-diagonal of an `nb × nb` grid:
/// the maximum, over anti-diagonals, of the largest per-processor share of
/// that diagonal. 1 means perfectly spread (each processor owns at most
/// one block of any diagonal of length ≤ P).
pub fn max_diagonal_share(layout: &dyn Layout, nb: usize) -> usize {
    let mut worst = 0;
    for d in 0..(2 * nb - 1) {
        let mut counts = vec![0usize; layout.procs()];
        for i in 0..nb {
            if d >= i && d - i < nb {
                counts[layout.owner(i, d - i)] += 1;
            }
        }
        let len: usize = counts.iter().sum();
        if len <= layout.procs() {
            worst = worst.max(*counts.iter().max().unwrap());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_in_range() {
        let nb = 12;
        let layouts: Vec<Box<dyn Layout>> = vec![
            Box::new(RowCyclic::new(8)),
            Box::new(ColCyclic::new(8)),
            Box::new(Diagonal::new(8)),
            Box::new(BlockCyclic2D::new(2, 4)),
        ];
        for l in &layouts {
            for i in 0..nb {
                for j in 0..nb {
                    assert!(l.owner(i, j) < l.procs(), "{} ({i},{j})", l.name());
                }
            }
        }
    }

    #[test]
    fn row_cyclic_rows_stay_local() {
        let l = RowCyclic::new(4);
        for i in 0..8 {
            let owner = l.owner(i, 0);
            for j in 1..8 {
                assert_eq!(l.owner(i, j), owner);
            }
        }
        assert_eq!(l.owner(5, 3), 1);
    }

    #[test]
    fn diagonal_spreads_diagonals() {
        let p = 8;
        let l = Diagonal::new(p);
        // Any P consecutive blocks of one anti-diagonal hit P distinct procs.
        let d = 10;
        let owners: Vec<usize> = (0..p).map(|i| l.owner(i, d - i)).collect();
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), p, "{owners:?}");
    }

    #[test]
    fn diagonal_balances_better_than_row_cyclic_on_diagonals() {
        let p = 8;
        let nb = 12;
        let diag = Diagonal::new(p);
        let rows = RowCyclic::new(p);
        assert_eq!(max_diagonal_share(&diag, nb), 1);
        assert!(max_diagonal_share(&rows, nb) >= 1);
    }

    #[test]
    fn block_counts_sum_to_grid() {
        let nb = 10;
        for l in [
            Box::new(RowCyclic::new(3)) as Box<dyn Layout>,
            Box::new(Diagonal::new(7)),
            Box::new(BlockCyclic2D::new(3, 2)),
        ] {
            let counts = block_counts(l.as_ref(), nb);
            assert_eq!(counts.iter().sum::<usize>(), nb * nb, "{}", l.name());
        }
    }

    #[test]
    fn diagonal_block_counts_nearly_uniform() {
        let counts = block_counts(&Diagonal::new(8), 16);
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 8, "{counts:?}");
    }

    #[test]
    fn block_cyclic_grid() {
        let l = BlockCyclic2D::new(2, 3);
        assert_eq!(l.procs(), 6);
        assert_eq!(l.owner(0, 0), 0);
        assert_eq!(l.owner(1, 0), 3);
        assert_eq!(l.owner(0, 2), 2);
        assert_eq!(l.owner(3, 5), 3 + (5 % 3));
        assert!(l.name().contains("2x3"));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RowCyclic::new(2).name(), "row-stripped-cyclic");
        assert_eq!(ColCyclic::new(2).name(), "column-cyclic");
        assert_eq!(Diagonal::new(2).name(), "diagonal");
    }
}
