//! `predsim-core`: the whole-program running-time predictor.
//!
//! This crate combines the two halves of the paper's method:
//!
//! 1. **follow the control flow** of an *oblivious, block-structured*
//!    parallel program — represented here as a [`Program`]: a sequence of
//!    [`Step`]s, each an (optional) per-processor computation phase followed
//!    by an (optional) communication pattern ("communication and computation
//!    steps do not overlap; they are alternating");
//! 2. **simulate each communication step under LogGP** with either the
//!    standard or the overestimating algorithm from the `commsim` crate,
//!    chaining processor availability from phase to phase.
//!
//! The result is a [`Prediction`]: the total running time plus the
//! computation-only and communication-only breakdowns the paper plots in
//! its Figures 7–9, per processor and per step.
//!
//! Extensions beyond the paper (its §7 future work):
//! * [`Overlap::RecvOnly`] — an approximation of overlapping communication
//!   and computation;
//! * [`search`] — automatic selection of the optimal block size from the
//!   predicted times;
//! * data layouts for block grids live in [`layout`] and are shared by all
//!   applications.
//!
//! ```
//! use predsim_core::{Program, Step, SimOptions, simulate_program};
//! use commsim::{CommPattern, SimConfig};
//! use loggp::{presets, Time};
//!
//! // Two processors: compute 100 us each, then P0 sends P1 1 KB.
//! let mut comm = CommPattern::new(2);
//! comm.add(0, 1, 1024);
//! let step = Step::new("exchange")
//!     .with_comp(vec![Time::from_us(100.0), Time::from_us(100.0)])
//!     .with_comm(comm);
//! let mut prog = Program::new(2);
//! prog.push(step);
//!
//! let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(2)));
//! let pred = simulate_program(&prog, &opts);
//! assert!(pred.total > Time::from_us(100.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bsp;
pub mod collectives;
pub mod layout;
pub mod program;
pub mod replay;
pub mod report;
pub mod scaling;
pub mod search;
pub mod simulate;
pub mod textfmt;

pub use layout::{BlockCyclic2D, ColCyclic, Diagonal, Layout, RowCyclic};
pub use program::{Program, ProgramError, Step, StepLoad};
pub use replay::{record_program, ProgramRecording, ReplayStats};
pub use simulate::{
    simulate_program, simulate_program_driven, simulate_program_observed, simulate_program_traced,
    simulate_program_with, CommAlgo, CompShaper, DirectStepSimulator, FrontEmitter, IdentityShaper,
    NullObserver, Overlap, Prediction, ProgramObserver, SimBudget, SimHalt, SimOptions, SimRun,
    StepRecord, StepSimulator, Synchronization, TracedStepSimulator,
};
