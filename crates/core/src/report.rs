//! Tiny plain-text table/CSV formatters used by examples, benches and
//! EXPERIMENTS.md generation — the workspace deliberately has no
//! serialization dependency.

use loggp::Time;

/// A simple column-aligned text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cell, w = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting — callers only emit numbers/identifiers).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a [`Time`] in milliseconds with three decimals (the figures'
/// natural unit for whole-program runs).
pub fn ms(t: Time) -> String {
    format!("{:.3}", t.as_ms_f64())
}

/// Format a [`Time`] in microseconds with two decimals.
pub fn us(t: Time) -> String {
    format!("{:.2}", t.as_us_f64())
}

/// Format a [`Time`] in seconds with four decimals (Figure 7's unit).
pub fn secs(t: Time) -> String {
    format!("{:.4}", t.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(["B", "time"]);
        t.row(["10", "1.5"]);
        t.row(["120", "0.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('B') && lines[0].contains("time"));
        assert!(lines[2].trim_start().starts_with("10"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(["a", "b"]).row(["1"]);
    }

    #[test]
    fn time_formatters() {
        let t = Time::from_us(1234.5);
        assert_eq!(us(t), "1234.50");
        assert_eq!(ms(t), "1.234"); // rounded down (1.2345 -> 1.234/1.235 per fmt)
        assert_eq!(secs(Time::from_secs(0.75)), "0.7500");
    }
}
