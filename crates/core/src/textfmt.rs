//! A small line-oriented text format for [`Program`]s.
//!
//! Lets traces be produced by external tools (or by hand) and fed to the
//! predictor, and lets generated traces be archived and diffed. The
//! workspace deliberately carries no serialization dependency, so the
//! format is hand-rolled and minimal:
//!
//! ```text
//! # comments and blank lines are ignored
//! program procs=4
//! step label=wave 1
//! comp 120.5 80.25 0 0            # per-processor times, microseconds
//! msg 0 1 800                     # src dst bytes (repeatable)
//! msg 2 3 800
//! step label=wave 2
//! comp 60 60 60 60
//! ```
//!
//! Every `step` opens a new step; `comp` (optional, at most one per step)
//! carries per-processor microsecond durations; each `msg` appends one
//! message. Self-messages are legal (the predictor ignores them; the
//! emulator charges them).

use crate::program::{Program, Step};
use commsim::CommPattern;
use loggp::Time;
use std::fmt::Write as _;

/// A parse failure, with the 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Render a program in the text format.
pub fn dump(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program procs={}", prog.procs());
    for step in prog.steps() {
        let _ = writeln!(out, "step label={}", step.label);
        if !step.comp.is_empty() {
            let mut line = String::from("comp");
            for t in &step.comp {
                let _ = write!(line, " {}", t.as_us_f64());
            }
            out.push_str(&line);
            out.push('\n');
        }
        for m in step.comm.messages() {
            let _ = writeln!(out, "msg {} {} {}", m.src, m.dst, m.bytes);
        }
    }
    out
}

/// Parse the text format back into a [`Program`].
pub fn parse(text: &str) -> Result<Program, ParseError> {
    let err = |line: usize, message: String| ParseError { line, message };
    let mut prog: Option<Program> = None;
    let mut procs = 0usize;
    // Current step under construction.
    let mut cur: Option<(String, Vec<Time>, CommPattern)> = None;

    // The line the current step was opened on, for error attribution.
    let mut step_line = 0usize;

    let flush = |prog: &mut Option<Program>,
                 cur: &mut Option<(String, Vec<Time>, CommPattern)>,
                 step_line: usize|
     -> Result<(), ParseError> {
        if let Some((label, comp, comm)) = cur.take() {
            let mut step = Step::new(label);
            if !comp.is_empty() {
                step = step.with_comp(comp);
            }
            if !comm.is_empty() {
                step = step.with_comm(comm);
            }
            prog.as_mut()
                .expect("program header precedes steps")
                .try_push(step)
                .map_err(|e| ParseError {
                    line: step_line,
                    message: e.to_string(),
                })?;
        }
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (word, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match word {
            "program" => {
                if prog.is_some() {
                    return Err(err(lineno, "duplicate program header".into()));
                }
                let rest = rest.trim();
                let Some(p) = rest.strip_prefix("procs=") else {
                    return Err(err(lineno, format!("expected 'procs=N', got '{rest}'")));
                };
                procs = p
                    .trim()
                    .parse::<usize>()
                    .map_err(|e| err(lineno, format!("bad processor count: {e}")))?;
                if procs == 0 {
                    return Err(err(lineno, "need at least one processor".into()));
                }
                prog = Some(Program::new(procs));
            }
            "step" => {
                if prog.is_none() {
                    return Err(err(lineno, "'step' before 'program' header".into()));
                }
                flush(&mut prog, &mut cur, step_line)?;
                step_line = lineno;
                let label = rest
                    .trim()
                    .strip_prefix("label=")
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("step {lineno}"));
                cur = Some((label, Vec::new(), CommPattern::new(procs)));
            }
            "comp" => {
                let Some((_, comp, _)) = cur.as_mut() else {
                    return Err(err(lineno, "'comp' outside a step".into()));
                };
                if !comp.is_empty() {
                    return Err(err(lineno, "duplicate 'comp' in step".into()));
                }
                for tok in rest.split_whitespace() {
                    let us: f64 = tok
                        .parse()
                        .map_err(|e| err(lineno, format!("bad duration '{tok}': {e}")))?;
                    if !us.is_finite() || us < 0.0 {
                        return Err(err(lineno, format!("invalid duration '{tok}'")));
                    }
                    comp.push(Time::from_us(us));
                }
                if comp.len() != procs {
                    return Err(err(
                        lineno,
                        format!("'comp' has {} entries for {procs} processors", comp.len()),
                    ));
                }
            }
            "msg" => {
                let Some((_, _, comm)) = cur.as_mut() else {
                    return Err(err(lineno, "'msg' outside a step".into()));
                };
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(err(lineno, "expected 'msg SRC DST BYTES'".into()));
                }
                let nums: Result<Vec<usize>, _> = parts.iter().map(|t| t.parse()).collect();
                let nums = nums.map_err(|e| err(lineno, format!("bad msg field: {e}")))?;
                comm.try_add(nums[0], nums[1], nums[2])
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            other => return Err(err(lineno, format!("unknown directive '{other}'"))),
        }
    }
    flush(&mut prog, &mut cur, step_line)?;
    prog.ok_or_else(|| err(0, "missing 'program' header".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_program, SimOptions};
    use commsim::SimConfig;
    use loggp::presets;

    fn sample() -> Program {
        let mut prog = Program::new(3);
        let mut c1 = CommPattern::new(3);
        c1.add(0, 1, 800);
        c1.add(1, 1, 10); // self message survives the round trip
        prog.push(
            Step::new("wave 1")
                .with_comp(vec![Time::from_us(120.5), Time::from_us(80.25), Time::ZERO])
                .with_comm(c1),
        );
        prog.push(Step::new("wave 2").with_comp(vec![Time::from_us(60.0); 3]));
        let mut c3 = CommPattern::new(3);
        c3.add(2, 0, 64);
        prog.push(Step::new("drain").with_comm(c3));
        prog
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let prog = sample();
        let text = dump(&prog);
        let back = parse(&text).unwrap();
        assert_eq!(back.procs(), prog.procs());
        assert_eq!(back.len(), prog.len());
        for (a, b) in back.steps().iter().zip(prog.steps()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.comp, b.comp);
            assert_eq!(
                a.comm.messages().len(),
                b.comm.messages().len(),
                "step {}",
                a.label
            );
            for (ma, mb) in a.comm.messages().iter().zip(b.comm.messages()) {
                assert_eq!((ma.src, ma.dst, ma.bytes), (mb.src, mb.dst, mb.bytes));
            }
        }
        // And the predictions agree, which is what actually matters.
        let cfg = SimOptions::new(SimConfig::new(presets::meiko_cs2(3)));
        assert_eq!(
            simulate_program(&back, &cfg).total,
            simulate_program(&prog, &cfg).total
        );
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "\n# hello\nprogram procs=2\n\nstep label=x # trailing\ncomp 1 2\nmsg 0 1 5\n";
        let prog = parse(text).unwrap();
        assert_eq!(prog.len(), 1);
        assert_eq!(prog.steps()[0].comp[1], Time::from_us(2.0));
    }

    #[test]
    fn step_without_label_gets_default() {
        let prog = parse("program procs=1\nstep\ncomp 3\n").unwrap();
        assert!(prog.steps()[0].label.starts_with("step "));
    }

    #[test]
    fn error_cases_report_lines() {
        for (text, needle) in [
            ("step label=x", "'step' before"),
            ("program procs=0", "at least one"),
            ("program procs=2\ncomp 1 2", "'comp' outside"),
            ("program procs=2\nmsg 0 1 5", "'msg' outside"),
            ("program procs=2\nstep\ncomp 1", "2 processors"),
            ("program procs=2\nstep\nmsg 0 9 5", "processor 9"),
            ("program procs=2\nstep\nmsg 0 1", "expected 'msg"),
            ("program procs=2\nbogus", "unknown directive"),
            ("program procs=2\nprogram procs=2", "duplicate program"),
            ("", "missing 'program'"),
            (
                "program procs=2\nstep\ncomp 1 2\ncomp 1 2",
                "duplicate 'comp'",
            ),
            ("program procs=2\nstep\ncomp -1 2", "invalid duration"),
        ] {
            let e = parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} -> {e}");
        }
    }

    #[test]
    fn dump_is_stable_text() {
        let text = dump(&sample());
        assert!(text.starts_with("program procs=3\n"));
        assert!(text.contains("step label=wave 1"));
        assert!(text.contains("msg 0 1 800"));
        assert!(text.contains("comp 120.5 80.25 0"));
    }
}
