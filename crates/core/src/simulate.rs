//! The whole-program simulator: alternate computation charges with
//! LogGP-simulated communication steps.

use crate::program::Program;
use commsim::{standard, worstcase, SimConfig, SimResult};
use loggp::Time;

/// Which communication-step algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommAlgo {
    /// The paper's Figure 2 algorithm (receive priority, eager sends).
    Standard,
    /// The §4.2 overestimation algorithm (receive everything first).
    WorstCase,
}

/// How processors synchronize between steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Synchronization {
    /// A processor starts the next step as soon as *it* has finished its
    /// own communication operations of the current one (the systolic
    /// behaviour of the paper's Split-C programs). Default.
    PerProcessor,
    /// All processors wait for the whole step to complete (BSP-style
    /// superstep barrier); useful as an ablation and for BSP comparisons.
    Barrier,
}

/// Whether communication may overlap the next computation phase — the
/// paper's class forbids it ("non-overlapping"); `RecvOnly` implements the
/// §7 future-work extension approximately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Overlap {
    /// No overlap: next computation starts after the processor's last
    /// communication operation of the step (the paper's model).
    None,
    /// A processor may resume computing after its last *receive*; trailing
    /// sends are charged to the communication section but do not delay the
    /// next computation phase. Approximation: the send overhead is assumed
    /// to be hidden under the following computation.
    RecvOnly,
}

/// Options of the whole-program simulation.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Machine model + seeds for the communication algorithms.
    pub cfg: SimConfig,
    /// Communication algorithm.
    pub algo: CommAlgo,
    /// Step synchronization.
    pub sync: Synchronization,
    /// Communication/computation overlap extension.
    pub overlap: Overlap,
}

impl SimOptions {
    /// Paper defaults: standard algorithm, per-processor chaining, no
    /// overlap.
    pub fn new(cfg: SimConfig) -> Self {
        SimOptions {
            cfg,
            algo: CommAlgo::Standard,
            sync: Synchronization::PerProcessor,
            overlap: Overlap::None,
        }
    }

    /// Use the worst-case communication algorithm.
    pub fn worst_case(mut self) -> Self {
        self.algo = CommAlgo::WorstCase;
        self
    }

    /// Use barrier synchronization between steps.
    pub fn with_barrier(mut self) -> Self {
        self.sync = Synchronization::Barrier;
        self
    }

    /// Enable the receive-only overlap extension.
    pub fn with_overlap(mut self) -> Self {
        self.overlap = Overlap::RecvOnly;
        self
    }
}

/// Timing record of one program step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepRecord {
    /// The step's label.
    pub label: String,
    /// When the first processor entered the step's computation phase.
    pub start: Time,
    /// When the last processor finished the step's computation phase.
    pub comp_end: Time,
    /// When the last communication operation of the step completed
    /// (equals `comp_end` for communication-free steps).
    pub comm_end: Time,
    /// Forced transmissions the worst-case algorithm needed in this step.
    pub forced_sends: usize,
}

/// The output of [`simulate_program`]: the paper's predicted quantities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted total running time (Figure 7's quantity).
    pub total: Time,
    /// Computation time: the largest per-processor sum of computation
    /// charges (Figure 9's quantity — what a processor would spend if
    /// communication were free).
    pub comp_time: Time,
    /// Communication time: the largest per-processor sum of communication
    /// *section* durations — the time from entering each communication
    /// phase to finishing one's own operations in it (Figure 8's
    /// quantity).
    pub comm_time: Time,
    /// Per-processor computation sums.
    pub per_proc_comp: Vec<Time>,
    /// Per-processor communication-section sums.
    pub per_proc_comm: Vec<Time>,
    /// Per-processor completion times.
    pub per_proc_finish: Vec<Time>,
    /// Per-step records.
    pub steps: Vec<StepRecord>,
    /// Total forced transmissions (worst-case algorithm on cyclic steps).
    pub forced_sends: usize,
}

impl Prediction {
    /// The processor that finishes last.
    pub fn critical_proc(&self) -> usize {
        self.per_proc_finish
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| **t)
            .map(|(p, _)| p)
            .unwrap_or(0)
    }

    /// Idle (waiting) time of a processor: finish − computation − comm
    /// sections can overlap slack; this reports `total − comp − comm` for
    /// the critical processor, clamped at zero.
    pub fn critical_idle(&self) -> Time {
        let p = self.critical_proc();
        self.total
            .saturating_sub(self.per_proc_comp[p])
            .saturating_sub(self.per_proc_comm[p])
    }

    /// One-line human summary of the prediction.
    pub fn summary(&self) -> String {
        format!(
            "total {} (comp {}, comm {}, critical P{}, {} steps{})",
            self.total,
            self.comp_time,
            self.comm_time,
            self.critical_proc(),
            self.steps.len(),
            if self.forced_sends > 0 {
                format!(", {} forced sends", self.forced_sends)
            } else {
                String::new()
            }
        )
    }

    /// Per-processor breakdown as a rendered text table.
    pub fn per_proc_table(&self) -> String {
        let mut t = crate::report::Table::new(["proc", "comp (ms)", "comm (ms)", "finish (ms)"]);
        for p in 0..self.per_proc_comp.len() {
            t.row([
                format!("P{p}"),
                crate::report::ms(self.per_proc_comp[p]),
                crate::report::ms(self.per_proc_comm[p]),
                crate::report::ms(self.per_proc_finish[p]),
            ]);
        }
        t.render()
    }

    /// The `k` most expensive steps by communication span, as
    /// `(label, comm duration)` — the bottleneck list.
    pub fn slowest_comm_steps(&self, k: usize) -> Vec<(String, Time)> {
        let mut spans: Vec<(String, Time)> = self
            .steps
            .iter()
            .map(|s| (s.label.clone(), s.comm_end.saturating_sub(s.comp_end)))
            .collect();
        spans.sort_by_key(|s| std::cmp::Reverse(s.1));
        spans.truncate(k);
        spans
    }
}

/// Pluggable communication-step backend for [`simulate_program_with`].
///
/// The whole-program simulator is a fold over steps; everything expensive
/// happens inside the per-step LogGP simulation. Abstracting that one call
/// lets alternative backends — most notably `predsim-engine`'s
/// fingerprint-memoizing cache — slot under the unchanged program loop
/// while guaranteeing identical results.
pub trait StepSimulator {
    /// Simulate the communication pattern of one step, with processor `p`
    /// unable to start communicating before `ready[p]`. Must return exactly
    /// what the direct algorithms in [`commsim`] would.
    fn simulate_comm(
        &mut self,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult;

    /// [`StepSimulator::simulate_comm`] with the program step index
    /// attached. The whole-program fold calls this variant; the default
    /// implementation ignores the index and delegates, so existing
    /// backends keep working unchanged. Backends that emit step-stamped
    /// trace events override it.
    fn simulate_comm_step(
        &mut self,
        step_idx: usize,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        let _ = step_idx;
        self.simulate_comm(comm, opts, ready)
    }
}

/// The pass-through backend: call the [`commsim`] algorithms directly.
///
/// Owns a [`commsim::SimScratch`] that is reused across steps, so the
/// per-step queue/heap/arena allocations of the hot loop are amortized
/// over the whole program instead of being rebuilt for every pattern.
/// Results are bit-identical to fresh per-step simulations.
#[derive(Debug, Default)]
pub struct DirectStepSimulator {
    scratch: commsim::SimScratch,
}

impl DirectStepSimulator {
    /// A backend with a fresh scratch.
    pub fn new() -> Self {
        DirectStepSimulator::default()
    }
}

impl StepSimulator for DirectStepSimulator {
    fn simulate_comm(
        &mut self,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        match opts.algo {
            CommAlgo::Standard => {
                standard::simulate_from_scratch(comm, &opts.cfg, ready, &mut self.scratch)
            }
            CommAlgo::WorstCase => {
                worstcase::simulate_from_scratch(comm, &opts.cfg, ready, &mut self.scratch)
            }
        }
    }
}

/// A tracing backend: the direct [`commsim`] algorithms with a
/// [`predsim_obs::TraceSink`] attached, so every committed send/receive
/// (plus gap stalls and drain markers) is emitted, stamped with the
/// program step index. Produces exactly [`DirectStepSimulator`]'s results.
pub struct TracedStepSimulator<'a> {
    sink: &'a dyn predsim_obs::TraceSink,
}

impl<'a> TracedStepSimulator<'a> {
    /// A backend emitting into `sink`.
    pub fn new(sink: &'a dyn predsim_obs::TraceSink) -> Self {
        TracedStepSimulator { sink }
    }
}

impl StepSimulator for TracedStepSimulator<'_> {
    fn simulate_comm(
        &mut self,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        self.simulate_comm_step(0, comm, opts, ready)
    }

    fn simulate_comm_step(
        &mut self,
        step_idx: usize,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        let tracer = commsim::StepTracer::new(self.sink, step_idx as u64);
        let params = opts.cfg.params;
        let mut arrival = |m: &commsim::Message, start: Time| params.arrival_time(start, m.bytes);
        match opts.algo {
            CommAlgo::Standard => {
                standard::simulate_traced(comm, &opts.cfg, ready, &mut arrival, Some(&tracer))
            }
            CommAlgo::WorstCase => {
                worstcase::simulate_traced(comm, &opts.cfg, ready, &mut arrival, Some(&tracer))
            }
        }
    }
}

/// Observer of the whole-program fold: called after every step with the
/// per-processor virtual-time front (each processor's readiness for the
/// next step). This is the hook the horizon profile is computed from.
pub trait ProgramObserver {
    /// `front[p]` is processor `p`'s virtual time after step `step_idx`.
    fn step_done(&mut self, step_idx: usize, front: &[Time]);
}

/// A [`ProgramObserver`] emitting one [`predsim_obs::TraceEvent::Front`]
/// per processor per step into a [`predsim_obs::TraceSink`].
pub struct FrontEmitter<'a> {
    sink: &'a dyn predsim_obs::TraceSink,
}

impl<'a> FrontEmitter<'a> {
    /// An emitter writing to `sink`.
    pub fn new(sink: &'a dyn predsim_obs::TraceSink) -> Self {
        FrontEmitter { sink }
    }
}

impl ProgramObserver for FrontEmitter<'_> {
    fn step_done(&mut self, step_idx: usize, front: &[Time]) {
        for (proc, t) in front.iter().enumerate() {
            self.sink.emit(&predsim_obs::TraceEvent::Front {
                step: step_idx as u64,
                proc,
                ps: t.as_ps(),
            });
        }
    }
}

/// The do-nothing [`ProgramObserver`].
pub struct NullObserver;

impl ProgramObserver for NullObserver {
    fn step_done(&mut self, _step_idx: usize, _front: &[Time]) {}
}

/// Reshapes per-step, per-processor computation charges before they are
/// applied — the hook fault injection uses for transient slowdowns and
/// fail-stop outages. `base` is the program's own charge for the step
/// ([`Time::ZERO`] on computation-free steps); the returned value replaces
/// it in the fold and in the computation ledger.
pub trait CompShaper {
    /// The effective computation charge of processor `proc` in step
    /// `step_idx`.
    fn comp_charge(&mut self, step_idx: usize, proc: usize, base: Time) -> Time;
}

/// The identity [`CompShaper`]: charges exactly the program's own costs.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityShaper;

impl CompShaper for IdentityShaper {
    fn comp_charge(&mut self, _step_idx: usize, _proc: usize, base: Time) -> Time {
        base
    }
}

/// Per-run simulation budgets; the default is unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimBudget {
    /// Maximum number of program steps to simulate.
    pub max_steps: Option<usize>,
    /// Halt once any processor's virtual-time front exceeds this.
    pub max_virtual: Option<Time>,
}

impl SimBudget {
    /// No limits.
    pub fn unlimited() -> Self {
        SimBudget::default()
    }

    /// A budget of at most `n` program steps.
    pub fn steps(n: usize) -> Self {
        SimBudget {
            max_steps: Some(n),
            ..SimBudget::default()
        }
    }

    /// A budget on simulated virtual time.
    pub fn virtual_time(t: Time) -> Self {
        SimBudget {
            max_virtual: Some(t),
            ..SimBudget::default()
        }
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.max_virtual.is_none()
    }
}

/// Why a budgeted simulation stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimHalt {
    /// The whole program was simulated.
    Completed,
    /// The step budget ran out before step `at_step` could be simulated.
    StepBudget {
        /// Index of the first step *not* simulated.
        at_step: usize,
    },
    /// A processor's front crossed the virtual-time budget after `at_step`.
    VirtualBudget {
        /// Index of the last step that *was* simulated.
        at_step: usize,
    },
}

impl SimHalt {
    /// True iff the program ran to completion.
    pub fn is_complete(&self) -> bool {
        matches!(self, SimHalt::Completed)
    }
}

/// A (possibly budget-truncated) simulation outcome: the prediction covers
/// the steps that were simulated, and [`SimHalt`] says whether that was all
/// of them.
#[derive(Clone, Debug)]
pub struct SimRun {
    /// Prediction over the simulated prefix of the program.
    pub prediction: Prediction,
    /// Whether (and where) the budget cut the run short.
    pub halt: SimHalt,
}

/// Simulate a whole program; see [`Prediction`] for what comes back.
pub fn simulate_program(prog: &Program, opts: &SimOptions) -> Prediction {
    simulate_program_with(prog, opts, &mut DirectStepSimulator::new())
}

/// [`simulate_program`] with a caller-supplied communication backend.
pub fn simulate_program_with(
    prog: &Program,
    opts: &SimOptions,
    step_sim: &mut dyn StepSimulator,
) -> Prediction {
    simulate_program_observed(prog, opts, step_sim, &mut NullObserver)
}

/// [`simulate_program`] with full tracing: per-operation events from the
/// communication algorithms and per-step [`predsim_obs::TraceEvent::Front`]
/// markers, all emitted into `sink`. The prediction is bit-identical to the
/// untraced one.
pub fn simulate_program_traced(
    prog: &Program,
    opts: &SimOptions,
    sink: &dyn predsim_obs::TraceSink,
) -> Prediction {
    simulate_program_observed(
        prog,
        opts,
        &mut TracedStepSimulator::new(sink),
        &mut FrontEmitter::new(sink),
    )
}

/// [`simulate_program_with`] plus a [`ProgramObserver`] notified after
/// every step with the per-processor virtual-time front.
pub fn simulate_program_observed(
    prog: &Program,
    opts: &SimOptions,
    step_sim: &mut dyn StepSimulator,
    observer: &mut dyn ProgramObserver,
) -> Prediction {
    simulate_program_driven(
        prog,
        opts,
        step_sim,
        observer,
        &mut IdentityShaper,
        SimBudget::unlimited(),
    )
    .prediction
}

/// The master entry point under all the others: the whole-program fold with
/// every hook exposed — a pluggable communication backend, a per-step
/// observer, a computation-charge shaper (fault injection) and simulation
/// budgets (engine job limits). With [`IdentityShaper`] and an unlimited
/// budget this computes exactly what [`simulate_program`] does.
pub fn simulate_program_driven(
    prog: &Program,
    opts: &SimOptions,
    step_sim: &mut dyn StepSimulator,
    observer: &mut dyn ProgramObserver,
    shaper: &mut dyn CompShaper,
    budget: SimBudget,
) -> SimRun {
    let procs = prog.procs();
    let mut ready = vec![Time::ZERO; procs];
    let mut per_proc_comp = vec![Time::ZERO; procs];
    let mut per_proc_comm = vec![Time::ZERO; procs];
    let mut steps = Vec::with_capacity(prog.len());
    let mut forced_sends = 0usize;
    let mut halt = SimHalt::Completed;

    // Fold buffers, hoisted out of the step loop: the fold itself must not
    // allocate per step (the per-step simulation is the only place heap
    // traffic is acceptable, and the scratch-carrying backends remove most
    // of it there too).
    let mut comp_end = vec![Time::ZERO; procs];
    let mut comm_done = vec![Time::ZERO; procs];
    let mut last_recv_done = vec![Time::ZERO; procs];

    for (step_idx, step) in prog.steps().iter().enumerate() {
        if let Some(max) = budget.max_steps {
            if step_idx >= max {
                halt = SimHalt::StepBudget { at_step: step_idx };
                break;
            }
        }
        let start = ready.iter().copied().min().unwrap_or(Time::ZERO);

        // Computation phase. A step without computation charges has base
        // cost zero on every processor; the shaper may still inflate it
        // (fail-stop outages apply to communication-only steps too).
        for p in 0..procs {
            let base = if step.comp.is_empty() {
                Time::ZERO
            } else {
                step.comp[p]
            };
            let charge = shaper.comp_charge(step_idx, p, base);
            comp_end[p] = ready[p] + charge;
            per_proc_comp[p] += charge;
        }
        let comp_end_max = comp_end.iter().copied().max().unwrap_or(Time::ZERO);

        // Communication phase.
        let comm_end_max = if step.comm.is_empty() {
            ready.copy_from_slice(&comp_end);
            comp_end_max
        } else {
            let result = step_sim.simulate_comm_step(step_idx, &step.comm, opts, &comp_end);
            forced_sends += result.forced_sends;

            // Per-processor end of the communication section.
            comm_done.copy_from_slice(&comp_end);
            last_recv_done.copy_from_slice(&comp_end);
            for ev in result.timeline.events() {
                comm_done[ev.proc] = comm_done[ev.proc].max(ev.end);
                if ev.kind == loggp::OpKind::Recv {
                    last_recv_done[ev.proc] = last_recv_done[ev.proc].max(ev.end);
                }
            }
            for p in 0..procs {
                per_proc_comm[p] += comm_done[p] - comp_end[p];
            }

            ready.copy_from_slice(match opts.overlap {
                Overlap::None => &comm_done,
                Overlap::RecvOnly => &last_recv_done,
            });
            comm_done.iter().copied().max().unwrap_or(comp_end_max)
        };

        if opts.sync == Synchronization::Barrier {
            let max = ready.iter().copied().max().unwrap_or(Time::ZERO);
            ready.fill(max);
        }

        steps.push(StepRecord {
            label: step.label.clone(),
            start,
            comp_end: comp_end_max,
            comm_end: comm_end_max,
            forced_sends,
        });
        observer.step_done(step_idx, &ready);

        if let Some(max) = budget.max_virtual {
            let front = ready.iter().copied().max().unwrap_or(Time::ZERO);
            if front > max {
                halt = SimHalt::VirtualBudget { at_step: step_idx };
                break;
            }
        }
    }

    let total = ready.iter().copied().max().unwrap_or(Time::ZERO);
    let prediction = Prediction {
        total,
        comp_time: per_proc_comp.iter().copied().max().unwrap_or(Time::ZERO),
        comm_time: per_proc_comm.iter().copied().max().unwrap_or(Time::ZERO),
        per_proc_comp,
        per_proc_comm,
        per_proc_finish: ready,
        steps,
        forced_sends,
    };
    SimRun { prediction, halt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Step;
    use commsim::CommPattern;
    use loggp::presets;

    fn opts(procs: usize) -> SimOptions {
        SimOptions::new(SimConfig::new(presets::meiko_cs2(procs)))
    }

    fn one_msg(procs: usize, src: usize, dst: usize, bytes: usize) -> CommPattern {
        let mut c = CommPattern::new(procs);
        c.add(src, dst, bytes);
        c
    }

    #[test]
    fn empty_program_is_zero() {
        let prog = Program::new(4);
        let pred = simulate_program(&prog, &opts(4));
        assert_eq!(pred.total, Time::ZERO);
        assert_eq!(pred.comp_time, Time::ZERO);
        assert_eq!(pred.comm_time, Time::ZERO);
    }

    #[test]
    fn computation_only_program() {
        let mut prog = Program::new(2);
        prog.push(Step::new("c1").with_comp(vec![Time::from_us(10.0), Time::from_us(30.0)]));
        prog.push(Step::new("c2").with_comp(vec![Time::from_us(5.0), Time::from_us(1.0)]));
        let pred = simulate_program(&prog, &opts(2));
        assert_eq!(pred.total, Time::from_us(31.0));
        assert_eq!(pred.comp_time, Time::from_us(31.0));
        assert_eq!(pred.comm_time, Time::ZERO);
        assert_eq!(
            pred.per_proc_comp,
            vec![Time::from_us(15.0), Time::from_us(31.0)]
        );
        assert_eq!(pred.critical_proc(), 1);
    }

    #[test]
    fn comm_follows_comp() {
        let cfg = SimConfig::new(presets::meiko_cs2(2));
        let mut prog = Program::new(2);
        prog.push(
            Step::new("s")
                .with_comp(vec![Time::from_us(100.0), Time::from_us(20.0)])
                .with_comm(one_msg(2, 0, 1, 1000)),
        );
        let pred = simulate_program(&prog, &SimOptions::new(cfg));
        // P0 computes 100us, then the message costs o+wire+L+o.
        let expect = Time::from_us(100.0) + cfg.params.message_cost(1000);
        assert_eq!(pred.total, expect);
        // P1's comm section spans from its comp end (20us) to recv end.
        assert_eq!(pred.per_proc_comm[1], expect - Time::from_us(20.0));
        assert_eq!(pred.comm_time, pred.per_proc_comm[1]);
    }

    #[test]
    fn per_processor_chaining_pipelines_steps() {
        // P0 computes long in step 1; P1 is free to finish its own step-1
        // work and start step 2 before P0 is done.
        let mut prog = Program::new(2);
        prog.push(Step::new("1").with_comp(vec![Time::from_us(100.0), Time::from_us(1.0)]));
        prog.push(Step::new("2").with_comp(vec![Time::from_us(1.0), Time::from_us(10.0)]));
        let per_proc = simulate_program(&prog, &opts(2));
        assert_eq!(per_proc.per_proc_finish[1], Time::from_us(11.0));
        // Under a barrier, P1 waits for P0's step-1 computation.
        let barrier = simulate_program(&prog, &opts(2).with_barrier());
        assert_eq!(barrier.per_proc_finish[1], Time::from_us(110.0));
        assert!(barrier.total >= per_proc.total);
    }

    #[test]
    fn worst_case_never_faster_on_dag_steps() {
        let mut prog = Program::new(3);
        let mut c = CommPattern::new(3);
        c.add(0, 1, 500);
        c.add(1, 2, 500);
        prog.push(
            Step::new("s")
                .with_comp(vec![Time::from_us(5.0); 3])
                .with_comm(c),
        );
        let st = simulate_program(&prog, &opts(3));
        let wc = simulate_program(&prog, &opts(3).worst_case());
        assert!(wc.total >= st.total);
        assert_eq!(wc.forced_sends, 0);
    }

    #[test]
    fn overlap_hides_trailing_sends() {
        // P0 sends one message, then computes again. With RecvOnly overlap
        // its second computation starts right after its (only) send... but
        // the send *is* its last op, so overlap lets it start at comp_end —
        // no wait for the message flight.
        let mut prog = Program::new(2);
        prog.push(Step::new("send").with_comm(one_msg(2, 0, 1, 64)));
        prog.push(Step::new("work").with_comp(vec![Time::from_us(50.0), Time::ZERO]));
        let none = simulate_program(&prog, &opts(2));
        let over = simulate_program(&prog, &opts(2).with_overlap());
        assert!(over.per_proc_finish[0] <= none.per_proc_finish[0]);
        // P0 under overlap: its send overhead can hide under computation,
        // so it finishes at exactly 50us.
        assert_eq!(over.per_proc_finish[0], Time::from_us(50.0));
    }

    #[test]
    fn step_records_cover_program() {
        let mut prog = Program::new(2);
        prog.push(Step::new("a").with_comp(vec![Time::from_us(10.0); 2]));
        prog.push(Step::new("b").with_comm(one_msg(2, 0, 1, 10)));
        let pred = simulate_program(&prog, &opts(2));
        assert_eq!(pred.steps.len(), 2);
        assert_eq!(pred.steps[0].label, "a");
        assert!(pred.steps[1].comm_end >= pred.steps[1].comp_end);
        assert_eq!(pred.steps[1].comm_end, pred.total);
    }

    #[test]
    fn summary_and_tables_render() {
        let mut prog = Program::new(2);
        prog.push(
            Step::new("s")
                .with_comp(vec![Time::from_us(40.0), Time::ZERO])
                .with_comm(one_msg(2, 0, 1, 100)),
        );
        let pred = simulate_program(&prog, &opts(2));
        let s = pred.summary();
        assert!(s.contains("total") && s.contains("critical P"), "{s}");
        let t = pred.per_proc_table();
        assert!(t.contains("P0") && t.contains("P1"), "{t}");
        let slow = pred.slowest_comm_steps(5);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].0, "s");
        assert!(slow[0].1 > Time::ZERO);
    }

    #[test]
    fn traced_simulation_is_bit_identical_and_emits_fronts() {
        use predsim_obs::{MemorySink, TraceEvent};
        let mut prog = Program::new(3);
        prog.push(Step::new("warm").with_comp(vec![Time::from_us(7.0); 3]));
        let mut c = CommPattern::new(3);
        c.add(0, 1, 500);
        c.add(1, 2, 500);
        prog.push(Step::new("chain").with_comm(c));
        for opts in [opts(3), opts(3).worst_case(), opts(3).with_barrier()] {
            let plain = simulate_program(&prog, &opts);
            let sink = MemorySink::new();
            let traced = simulate_program_traced(&prog, &opts, &sink);
            assert_eq!(plain.total, traced.total);
            assert_eq!(plain.per_proc_finish, traced.per_proc_finish);
            assert_eq!(plain.per_proc_comm, traced.per_proc_comm);
            // One Front event per processor per step, stamped in order.
            let fronts: Vec<(u64, usize)> = sink
                .events()
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Front { step, proc, .. } => Some((*step, *proc)),
                    _ => None,
                })
                .collect();
            assert_eq!(fronts.len(), prog.len() * 3);
            assert_eq!(fronts[0], (0, 0));
            assert_eq!(fronts.last(), Some(&(1, 2)));
            // Communication events are stamped with the comm step's index.
            assert!(sink
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::Send { step: 1, .. })));
        }
    }

    #[test]
    fn front_events_reflect_readiness_not_step_completion() {
        use predsim_obs::{MemorySink, TraceEvent};
        // Per-processor chaining: P1 finishes step 0 early and its front
        // must say so (it is *not* the step's max).
        let mut prog = Program::new(2);
        prog.push(Step::new("skew").with_comp(vec![Time::from_us(100.0), Time::from_us(1.0)]));
        let sink = MemorySink::new();
        let _ = simulate_program_traced(&prog, &opts(2), &sink);
        let fronts: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Front { ps, .. } => Some(*ps),
                _ => None,
            })
            .collect();
        assert_eq!(
            fronts,
            vec![Time::from_us(100.0).as_ps(), Time::from_us(1.0).as_ps()]
        );
    }

    #[test]
    fn default_step_method_delegates() {
        // A backend only implementing simulate_comm still works through
        // the step-indexed entry point.
        struct Only;
        impl StepSimulator for Only {
            fn simulate_comm(
                &mut self,
                comm: &commsim::CommPattern,
                opts: &SimOptions,
                ready: &[Time],
            ) -> SimResult {
                DirectStepSimulator::new().simulate_comm(comm, opts, ready)
            }
        }
        let mut prog = Program::new(2);
        prog.push(Step::new("s").with_comm(one_msg(2, 0, 1, 100)));
        let a = simulate_program(&prog, &opts(2));
        let b = simulate_program_with(&prog, &opts(2), &mut Only);
        assert_eq!(a.total, b.total);
    }

    #[test]
    fn driven_with_identity_and_unlimited_budget_matches_simulate() {
        let mut prog = Program::new(3);
        prog.push(Step::new("warm").with_comp(vec![Time::from_us(7.0); 3]));
        let mut c = CommPattern::new(3);
        c.add(0, 1, 500);
        c.add(1, 2, 500);
        prog.push(Step::new("chain").with_comm(c));
        for o in [opts(3), opts(3).worst_case()] {
            let plain = simulate_program(&prog, &o);
            let run = simulate_program_driven(
                &prog,
                &o,
                &mut DirectStepSimulator::new(),
                &mut NullObserver,
                &mut IdentityShaper,
                SimBudget::unlimited(),
            );
            assert!(run.halt.is_complete());
            assert_eq!(run.prediction.total, plain.total);
            assert_eq!(run.prediction.per_proc_finish, plain.per_proc_finish);
            assert_eq!(run.prediction.per_proc_comp, plain.per_proc_comp);
            assert_eq!(run.prediction.per_proc_comm, plain.per_proc_comm);
        }
    }

    #[test]
    fn step_budget_truncates_the_run() {
        let mut prog = Program::new(2);
        for i in 0..5 {
            prog.push(Step::new(format!("s{i}")).with_comp(vec![Time::from_us(10.0); 2]));
        }
        let run = simulate_program_driven(
            &prog,
            &opts(2),
            &mut DirectStepSimulator::new(),
            &mut NullObserver,
            &mut IdentityShaper,
            SimBudget::steps(2),
        );
        assert_eq!(run.halt, SimHalt::StepBudget { at_step: 2 });
        assert_eq!(run.prediction.steps.len(), 2);
        assert_eq!(run.prediction.total, Time::from_us(20.0));
    }

    #[test]
    fn virtual_budget_halts_after_crossing_step() {
        let mut prog = Program::new(2);
        for i in 0..5 {
            prog.push(Step::new(format!("s{i}")).with_comp(vec![Time::from_us(10.0); 2]));
        }
        let run = simulate_program_driven(
            &prog,
            &opts(2),
            &mut DirectStepSimulator::new(),
            &mut NullObserver,
            &mut IdentityShaper,
            SimBudget::virtual_time(Time::from_us(25.0)),
        );
        // Step 2 pushes the front to 30us > 25us; steps 3 and 4 never run.
        assert_eq!(run.halt, SimHalt::VirtualBudget { at_step: 2 });
        assert_eq!(run.prediction.steps.len(), 3);
        assert_eq!(run.prediction.total, Time::from_us(30.0));
    }

    #[test]
    fn comp_shaper_inflates_charges_and_the_ledger() {
        struct DoubleP1;
        impl CompShaper for DoubleP1 {
            fn comp_charge(&mut self, _step: usize, proc: usize, base: Time) -> Time {
                if proc == 1 {
                    base + base
                } else {
                    base
                }
            }
        }
        let mut prog = Program::new(2);
        prog.push(Step::new("c").with_comp(vec![Time::from_us(10.0); 2]));
        let run = simulate_program_driven(
            &prog,
            &opts(2),
            &mut DirectStepSimulator::new(),
            &mut NullObserver,
            &mut DoubleP1,
            SimBudget::unlimited(),
        );
        assert_eq!(run.prediction.per_proc_comp[0], Time::from_us(10.0));
        assert_eq!(run.prediction.per_proc_comp[1], Time::from_us(20.0));
        assert_eq!(run.prediction.total, Time::from_us(20.0));
    }

    #[test]
    fn shaper_applies_to_communication_only_steps() {
        // Fail-stop semantics: an outage charged by the shaper on a step
        // with no computation still delays the processor's participation.
        struct Outage;
        impl CompShaper for Outage {
            fn comp_charge(&mut self, step: usize, proc: usize, base: Time) -> Time {
                if step == 0 && proc == 0 {
                    base + Time::from_us(100.0)
                } else {
                    base
                }
            }
        }
        let mut prog = Program::new(2);
        prog.push(Step::new("send").with_comm(one_msg(2, 0, 1, 1)));
        let cfg = SimConfig::new(presets::meiko_cs2(2));
        let run = simulate_program_driven(
            &prog,
            &SimOptions::new(cfg),
            &mut DirectStepSimulator::new(),
            &mut NullObserver,
            &mut Outage,
            SimBudget::unlimited(),
        );
        // P0's send starts only after the outage; the message is received
        // after it, i.e. queued receives drain once the sender restarts.
        assert_eq!(
            run.prediction.total,
            Time::from_us(100.0) + cfg.params.message_cost(1)
        );
    }

    #[test]
    fn critical_idle_accounts_waiting() {
        // P1 waits for a message without computing: all its time is comm
        // section, so idle is zero; P0 computes then sends.
        let mut prog = Program::new(2);
        prog.push(
            Step::new("s")
                .with_comp(vec![Time::from_us(40.0), Time::ZERO])
                .with_comm(one_msg(2, 0, 1, 1)),
        );
        let pred = simulate_program(&prog, &opts(2));
        assert_eq!(pred.critical_proc(), 1);
        assert_eq!(pred.critical_idle(), Time::ZERO);
    }
}
