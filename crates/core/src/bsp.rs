//! A BSP (bulk-synchronous parallel) baseline predictor.
//!
//! The paper's introduction positions LogGP simulation against the BSP
//! model of Valiant, where "applications are expressed as sequences of
//! computation steps separated by global synchronization" and a superstep
//! with local work `w` and an `h`-relation costs `w + g·h + l`. This
//! module predicts the *same* [`Program`]s under that formula, giving the
//! classical analytical baseline to compare the simulation against:
//! BSP sees neither the per-message overhead/gap serialization nor the
//! receive-priority scheduling the simulation derives, and it imposes a
//! barrier after every step.

use crate::program::Program;
use loggp::{LogGpParams, Time};

/// BSP machine parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BspParams {
    /// Communication throughput cost: time per byte of the step's maximum
    /// per-processor traffic (the `h`-relation is measured in bytes here,
    /// not packets — the natural unit when messages have arbitrary size).
    pub g_per_byte: Time,
    /// Barrier/synchronization latency `l`, charged once per superstep
    /// that communicates.
    pub l_barrier: Time,
}

impl BspParams {
    /// Derive BSP parameters from a LogGP machine, the standard folklore
    /// mapping: throughput from `G` (long-message bandwidth) plus the
    /// per-message cost amortized away; barrier latency from a round trip
    /// of small messages, `l ≈ 2·(o + L) + g`.
    pub fn from_loggp(p: &LogGpParams) -> Self {
        BspParams {
            g_per_byte: p.gap_per_byte,
            l_barrier: (p.overhead + p.latency) * 2 + p.gap,
        }
    }
}

/// The BSP prediction of a program.
#[derive(Clone, Debug)]
pub struct BspPrediction {
    /// Total predicted time: `Σ_steps (w + g·h + l)`.
    pub total: Time,
    /// Σ w — the computation part.
    pub comp_time: Time,
    /// Σ (g·h + l) — the communication-and-synchronization part.
    pub comm_time: Time,
    /// Number of supersteps that communicated (each charged `l`).
    pub barriers: usize,
}

/// Maximum per-processor communication volume (bytes sent or received,
/// whichever is larger — the byte `h`-relation) of one pattern.
pub fn h_relation_bytes(pattern: &commsim::CommPattern) -> u64 {
    let procs = pattern.procs();
    let mut sent = vec![0u64; procs];
    let mut received = vec![0u64; procs];
    for m in pattern.network_messages() {
        sent[m.src] += m.bytes as u64;
        received[m.dst] += m.bytes as u64;
    }
    (0..procs)
        .map(|p| sent[p].max(received[p]))
        .max()
        .unwrap_or(0)
}

/// Predict `prog` under the BSP cost model: every step is a superstep,
/// `w` is the largest computation charge, `h` the byte h-relation.
pub fn predict(prog: &Program, params: &BspParams) -> BspPrediction {
    let mut total = Time::ZERO;
    let mut comp_time = Time::ZERO;
    let mut comm_time = Time::ZERO;
    let mut barriers = 0usize;
    for step in prog.steps() {
        let w = step.comp_max();
        comp_time += w;
        total += w;
        if !step.comm.is_empty() {
            let h = h_relation_bytes(&step.comm);
            let c = params.g_per_byte.saturating_mul(h) + params.l_barrier;
            comm_time += c;
            total += c;
            barriers += 1;
        }
    }
    BspPrediction {
        total,
        comp_time,
        comm_time,
        barriers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Step;
    use commsim::CommPattern;
    use loggp::presets;

    fn params() -> BspParams {
        BspParams::from_loggp(&presets::meiko_cs2(4))
    }

    #[test]
    fn from_loggp_mapping() {
        let p = presets::meiko_cs2(8);
        let b = BspParams::from_loggp(&p);
        assert_eq!(b.g_per_byte, p.gap_per_byte);
        assert_eq!(b.l_barrier, Time::from_us(2.0 * (6.0 + 9.0) + 16.0));
    }

    #[test]
    fn h_relation_takes_max_side() {
        let mut pat = CommPattern::new(3);
        pat.add(0, 1, 100);
        pat.add(0, 2, 200); // P0 sends 300
        pat.add(1, 0, 50); // P0 receives 50
        pat.add(0, 0, 999); // self: excluded
        assert_eq!(h_relation_bytes(&pat), 300);
    }

    #[test]
    fn empty_program_is_zero() {
        let prog = Program::new(4);
        let pred = predict(&prog, &params());
        assert_eq!(pred.total, Time::ZERO);
        assert_eq!(pred.barriers, 0);
    }

    #[test]
    fn computation_only_steps_skip_barriers() {
        let mut prog = Program::new(2);
        prog.push(Step::new("w").with_comp(vec![Time::from_us(5.0), Time::from_us(9.0)]));
        let pred = predict(&prog, &params());
        assert_eq!(pred.total, Time::from_us(9.0));
        assert_eq!(pred.comm_time, Time::ZERO);
        assert_eq!(pred.barriers, 0);
    }

    #[test]
    fn communication_adds_gh_plus_l() {
        let mut prog = Program::new(2);
        let mut pat = CommPattern::new(2);
        pat.add(0, 1, 1000);
        prog.push(Step::new("c").with_comm(pat));
        let p = params();
        let pred = predict(&prog, &p);
        assert_eq!(pred.total, p.g_per_byte * 1000 + p.l_barrier);
        assert_eq!(pred.barriers, 1);
    }

    #[test]
    fn bsp_upperbounds_ideal_and_misses_gap_effects() {
        // A fan-in of many tiny messages: LogGP simulation is dominated by
        // the per-message gap; byte-based BSP barely notices, so BSP
        // *underestimates* here — the known blind spot the paper's model
        // fixes.
        let procs = 16;
        let mut prog = Program::new(procs);
        let mut pat = CommPattern::new(procs);
        for s in 1..procs {
            pat.add(s, 0, 1);
        }
        prog.push(Step::new("fanin").with_comm(pat));
        let loggp = presets::meiko_cs2(procs);
        let bsp = predict(&prog, &BspParams::from_loggp(&loggp));
        let sim = crate::simulate::simulate_program(
            &prog,
            &crate::simulate::SimOptions::new(commsim::SimConfig::new(loggp)),
        );
        assert!(
            bsp.total < sim.total,
            "BSP {} should miss the gap serialization the simulation sees ({})",
            bsp.total,
            sim.total
        );
    }
}
