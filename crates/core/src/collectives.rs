//! Multi-round collective operations as oblivious [`Program`]s.
//!
//! The LogP/LogGP literature the paper builds on (Karp, Sahay, Santos &
//! Schauser: "Optimal broadcast and summation in the LogP model", the
//! paper's citation \[9\]) analyzed collectives with explicit formulas; here the same
//! collectives are expressed as multi-step programs — one communication
//! step per round, the data dependence between rounds enforced by the
//! step chaining — and predicted by simulation, so regular and irregular
//! phases of an application compose in one trace.

use crate::program::{Program, Step};
use commsim::CommPattern;
use loggp::Time;

/// Binomial-tree broadcast from processor 0: `⌈log₂ p⌉` rounds, round `r`
/// sending `i → i + 2^r` for every holder `i < 2^r`.
pub fn binomial_broadcast(p: usize, bytes: usize) -> Program {
    let mut prog = Program::new(p.max(1));
    let mut round = 1usize;
    while round < p {
        let mut pat = CommPattern::new(p);
        for i in 0..round.min(p) {
            if i + round < p {
                pat.add(i, i + round, bytes);
            }
        }
        prog.push(Step::new(format!("bcast round {round}")).with_comm(pat));
        round *= 2;
    }
    prog
}

/// Binomial-tree reduction to processor 0 (the broadcast mirrored), with
/// `combine` time charged at each receiver per round — a reduction does
/// real work (e.g. summing `bytes/8` doubles) between rounds.
#[allow(clippy::needless_range_loop)]
pub fn binomial_reduce(p: usize, bytes: usize, combine: Time) -> Program {
    let mut prog = Program::new(p.max(1));
    let mut rounds = Vec::new();
    let mut round = 1usize;
    while round < p {
        rounds.push(round);
        round *= 2;
    }
    for &round in rounds.iter().rev() {
        let mut pat = CommPattern::new(p);
        let mut comp = vec![Time::ZERO; p];
        for i in 0..round.min(p) {
            if i + round < p {
                pat.add(i + round, i, bytes);
                comp[i] = combine;
            }
        }
        let mut step = Step::new(format!("reduce round {round}")).with_comm(pat);
        if !combine.is_zero() {
            // The combine happens *after* the receive, i.e. in the next
            // step's computation phase; push it as a separate step so the
            // alternation stays strict.
            prog.push(step);
            step = Step::new(format!("combine {round}")).with_comp(comp);
        }
        prog.push(step);
    }
    prog
}

/// All-reduce as reduce-to-0 followed by broadcast-from-0.
pub fn all_reduce(p: usize, bytes: usize, combine: Time) -> Program {
    let mut prog = binomial_reduce(p, bytes, combine);
    for step in binomial_broadcast(p, bytes).steps() {
        prog.push(step.clone());
    }
    prog
}

/// Recursive-doubling all-reduce on a power-of-two machine: `log₂ p`
/// rounds of pairwise exchange across hypercube dimensions, each followed
/// by a combine. Fewer rounds than reduce+broadcast at the price of
/// bidirectional traffic every round.
pub fn all_reduce_hypercube(p: usize, bytes: usize, combine: Time) -> Program {
    assert!(
        p.is_power_of_two(),
        "recursive doubling needs a power-of-two machine"
    );
    let mut prog = Program::new(p);
    let mut dim = 0;
    while (1usize << dim) < p {
        let mut pat = CommPattern::new(p);
        for i in 0..p {
            pat.add(i, i ^ (1 << dim), bytes);
        }
        prog.push(Step::new(format!("exchange dim {dim}")).with_comm(pat));
        if !combine.is_zero() {
            prog.push(Step::new(format!("combine dim {dim}")).with_comp(vec![combine; p]));
        }
        dim += 1;
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_program, SimOptions};
    use commsim::SimConfig;
    use loggp::presets;

    fn total(prog: &Program, procs: usize) -> Time {
        let cfg = SimConfig::new(presets::meiko_cs2(procs));
        simulate_program(prog, &SimOptions::new(cfg)).total
    }

    #[test]
    fn broadcast_program_matches_closed_form() {
        for p in [2usize, 3, 8, 16, 31] {
            let params = presets::meiko_cs2(p);
            let prog = binomial_broadcast(p, 256);
            assert_eq!(
                total(&prog, p),
                commsim::formulas::binomial_broadcast(&params, p, 256),
                "p={p}"
            );
        }
    }

    #[test]
    fn broadcast_rounds_count() {
        assert_eq!(binomial_broadcast(1, 1).len(), 0);
        assert_eq!(binomial_broadcast(2, 1).len(), 1);
        assert_eq!(binomial_broadcast(8, 1).len(), 3);
        assert_eq!(binomial_broadcast(9, 1).len(), 4);
    }

    #[test]
    fn reduce_time_equals_broadcast_without_combine() {
        // Mirrored trees, same chained semantics.
        for p in [2usize, 4, 8, 13] {
            let b = total(&binomial_broadcast(p, 128), p);
            let r = total(&binomial_reduce(p, 128, Time::ZERO), p);
            assert_eq!(b, r, "p={p}");
        }
    }

    #[test]
    fn combine_time_extends_reduction() {
        let free = total(&binomial_reduce(8, 64, Time::ZERO), 8);
        let busy = total(&binomial_reduce(8, 64, Time::from_us(40.0)), 8);
        assert!(busy > free);
        // Three rounds of combining on the critical path.
        assert!(busy >= free + Time::from_us(3.0 * 40.0));
    }

    #[test]
    fn all_reduce_is_reduce_plus_broadcast() {
        let p = 8;
        let ar = total(&all_reduce(p, 64, Time::from_us(5.0)), p);
        let r = total(&binomial_reduce(p, 64, Time::from_us(5.0)), p);
        let b = total(&binomial_broadcast(p, 64), p);
        // Chained per-processor, the phases overlap a little at the root,
        // so the sum is an upper bound within one message time.
        assert!(ar <= r + b);
        assert!(ar > r.max(b));
    }

    #[test]
    fn hypercube_allreduce_beats_tree_for_small_messages() {
        // log p exchange rounds vs 2 log p tree rounds.
        let p = 16;
        let tree = total(&all_reduce(p, 8, Time::ZERO), p);
        let cube = total(&all_reduce_hypercube(p, 8, Time::ZERO), p);
        assert!(cube < tree, "cube {cube} >= tree {tree}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_odd_p() {
        let _ = all_reduce_hypercube(6, 8, Time::ZERO);
    }

    #[test]
    fn degenerate_single_processor() {
        assert_eq!(total(&binomial_broadcast(1, 9), 1), Time::ZERO);
        assert_eq!(total(&all_reduce(1, 9, Time::from_us(1.0)), 1), Time::ZERO);
    }
}
