//! Whole-program incremental re-simulation.
//!
//! Parameter sweeps (`ge-sweep`, calibration refinement) simulate the *same
//! program* many times, changing only the LogGP parameters between runs.
//! The communication patterns, per-step structure and — for the common
//! deterministic configurations — the commit order of every send and
//! receive are identical across those runs; only the *times* move. This
//! module exploits that: [`record_program`] runs one full simulation while
//! recording each communication step's commit order
//! ([`commsim::Recording`]), and [`ProgramRecording::predict`] re-times the
//! recorded orders under new parameters instead of re-running the hot loop.
//!
//! The invariant is absolute, not approximate: a replayed step is accepted
//! only when the recorded order is provably valid under the new parameters
//! (the standard algorithm's replay verifies every operation; the
//! worst-case replay is unconditional for a matching seed). Any step whose
//! recording cannot be validated is transparently re-simulated in full, so
//! **[`ProgramRecording::predict`] is always bit-identical to
//! [`simulate_program`](crate::simulate_program) at the same options** —
//! replay changes cost, never results. [`ReplayStats`] reports how much of
//! the program actually took the fast path.

use crate::program::Program;
use crate::simulate::{
    simulate_program_driven, CommAlgo, IdentityShaper, NullObserver, Overlap, Prediction,
    SimBudget, SimOptions, StepRecord, StepSimulator, Synchronization,
};
use commsim::replay::{record_standard, record_worstcase};
use commsim::{standard, worstcase, Recording, SimResult, SimScratch, StepEnds};
use loggp::Time;

/// The commit orders of every communication step of one recorded program
/// simulation, in program order. Produced by [`record_program`].
#[derive(Debug)]
pub struct ProgramRecording {
    /// Algorithm the recording was made under; a replay under the other
    /// algorithm would re-time the wrong schedule, so it falls back.
    algo: CommAlgo,
    /// One recording per communication step, in encounter order.
    steps: Vec<Recording>,
}

impl ProgramRecording {
    /// Number of recorded communication steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the program had no communication steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Re-predict the program under `opts` — typically the same program
    /// with different `opts.cfg.params` — replaying recorded commit orders
    /// where provably valid and re-simulating the rest. The prediction is
    /// bit-identical to `simulate_program(prog, opts)`.
    ///
    /// This is a lean clone of the whole-program fold: replayed steps go
    /// through [`Recording::retime`], which computes the per-processor
    /// completion maxima the fold consumes without building a timeline or
    /// any per-event state, so an all-fast-path re-prediction does no
    /// per-message allocation at all. Refused steps transparently fall
    /// back to the full hot loop. `fold_identity_across_options` and the
    /// sweep tests below pin the fold against
    /// [`simulate_program`](crate::simulate_program) across
    /// synchronization, overlap and algorithm options.
    pub fn predict(&self, prog: &Program, opts: &SimOptions) -> (Prediction, ReplayStats) {
        let recordings: &[Recording] = if opts.algo == self.algo {
            &self.steps
        } else {
            &[]
        };
        let mut stats = ReplayStats::default();
        let mut scratch = SimScratch::new();
        let mut ends = StepEnds::default();
        let mut next_rec = 0usize;

        let procs = prog.procs();
        let mut ready = vec![Time::ZERO; procs];
        let mut per_proc_comp = vec![Time::ZERO; procs];
        let mut per_proc_comm = vec![Time::ZERO; procs];
        let mut comp_end = vec![Time::ZERO; procs];
        let mut steps = Vec::with_capacity(prog.len());
        let mut forced_sends = 0usize;

        for step in prog.steps() {
            let start = ready.iter().copied().min().unwrap_or(Time::ZERO);

            for p in 0..procs {
                let charge = if step.comp.is_empty() {
                    Time::ZERO
                } else {
                    step.comp[p]
                };
                comp_end[p] = ready[p] + charge;
                per_proc_comp[p] += charge;
            }
            let comp_end_max = comp_end.iter().copied().max().unwrap_or(Time::ZERO);

            let comm_end_max = if step.comm.is_empty() {
                ready.copy_from_slice(&comp_end);
                comp_end_max
            } else {
                let rec = recordings.get(next_rec);
                next_rec += 1;
                let replayed = rec.is_some_and(|rec| {
                    rec.retime(&step.comm, &opts.cfg, &comp_end, &mut scratch, &mut ends)
                });
                if replayed {
                    stats.replayed += 1;
                } else {
                    stats.resimulated += 1;
                    let result = match opts.algo {
                        CommAlgo::Standard => standard::simulate_from_scratch(
                            &step.comm,
                            &opts.cfg,
                            &comp_end,
                            &mut scratch,
                        ),
                        CommAlgo::WorstCase => worstcase::simulate_from_scratch(
                            &step.comm,
                            &opts.cfg,
                            &comp_end,
                            &mut scratch,
                        ),
                    };
                    ends.reset(&comp_end);
                    ends.absorb(&result);
                }
                forced_sends += ends.forced_sends;
                for p in 0..procs {
                    per_proc_comm[p] += ends.comm_done[p] - comp_end[p];
                }
                ready.copy_from_slice(match opts.overlap {
                    Overlap::None => &ends.comm_done,
                    Overlap::RecvOnly => &ends.last_recv_done,
                });
                ends.comm_done.iter().copied().max().unwrap_or(comp_end_max)
            };

            if opts.sync == Synchronization::Barrier {
                let max = ready.iter().copied().max().unwrap_or(Time::ZERO);
                ready.fill(max);
            }

            steps.push(StepRecord {
                label: step.label.clone(),
                start,
                comp_end: comp_end_max,
                comm_end: comm_end_max,
                forced_sends,
            });
        }

        let total = ready.iter().copied().max().unwrap_or(Time::ZERO);
        let prediction = Prediction {
            total,
            comp_time: per_proc_comp.iter().copied().max().unwrap_or(Time::ZERO),
            comm_time: per_proc_comm.iter().copied().max().unwrap_or(Time::ZERO),
            per_proc_comp,
            per_proc_comm,
            per_proc_finish: ready,
            steps,
            forced_sends,
        };
        (prediction, stats)
    }
}

/// How much of an incremental re-prediction took the fast path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Communication steps re-timed from their recorded commit order.
    pub replayed: usize,
    /// Communication steps simulated in full (recording refused, missing,
    /// or made under a different algorithm).
    pub resimulated: usize,
}

impl ReplayStats {
    /// Total communication steps processed.
    pub fn comm_steps(&self) -> usize {
        self.replayed + self.resimulated
    }

    /// Fraction of communication steps replayed (1.0 for an all-fast-path
    /// run; 0.0 when everything was re-simulated or there was no
    /// communication).
    pub fn replay_fraction(&self) -> f64 {
        if self.comm_steps() == 0 {
            0.0
        } else {
            self.replayed as f64 / self.comm_steps() as f64
        }
    }
}

/// Simulate `prog` under `opts` while recording every communication step's
/// commit order for later incremental re-prediction. The returned
/// [`Prediction`] is bit-identical to `simulate_program(prog, opts)`.
pub fn record_program(prog: &Program, opts: &SimOptions) -> (Prediction, ProgramRecording) {
    let mut backend = RecordingBackend {
        algo: opts.algo,
        scratch: SimScratch::new(),
        steps: Vec::new(),
    };
    let run = simulate_program_driven(
        prog,
        opts,
        &mut backend,
        &mut NullObserver,
        &mut IdentityShaper,
        SimBudget::unlimited(),
    );
    (
        run.prediction,
        ProgramRecording {
            algo: backend.algo,
            steps: backend.steps,
        },
    )
}

/// Backend of [`record_program`]: the direct algorithms with the recording
/// hook enabled.
struct RecordingBackend {
    algo: CommAlgo,
    scratch: SimScratch,
    steps: Vec<Recording>,
}

impl StepSimulator for RecordingBackend {
    fn simulate_comm(
        &mut self,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        let (result, rec) = match opts.algo {
            CommAlgo::Standard => record_standard(comm, &opts.cfg, ready, &mut self.scratch),
            CommAlgo::WorstCase => record_worstcase(comm, &opts.cfg, ready, &mut self.scratch),
        };
        self.steps.push(rec);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Step;
    use crate::simulate::simulate_program;
    use commsim::{patterns, SimConfig};
    use loggp::{presets, LogGpParams};

    fn sample_program(procs: usize) -> Program {
        let mut prog = Program::new(procs);
        prog.push(Step::new("warm").with_comp(vec![Time::from_us(7.0); procs]));
        prog.push(Step::new("ring").with_comm(patterns::ring(procs, 512)));
        prog.push(Step::new("mid").with_comp(vec![Time::from_us(3.0); procs]));
        prog.push(Step::new("all").with_comm(patterns::all_to_all(procs, 128)));
        prog.push(Step::new("rand").with_comm(patterns::random(procs, 3 * procs, 2048, 42)));
        prog
    }

    fn scaled(p: LogGpParams, num: u64, den: u64) -> LogGpParams {
        let s = |t: Time| Time::from_ps(t.as_ps() * num / den);
        LogGpParams {
            latency: s(p.latency),
            overhead: s(p.overhead),
            gap: s(p.gap),
            gap_per_byte: s(p.gap_per_byte),
            procs: p.procs,
        }
    }

    #[test]
    fn recording_run_matches_plain_simulation() {
        let prog = sample_program(6);
        for opts in [
            SimOptions::new(SimConfig::new(presets::meiko_cs2(6))),
            SimOptions::new(SimConfig::new(presets::meiko_cs2(6))).worst_case(),
        ] {
            let plain = simulate_program(&prog, &opts);
            let (recorded, rec) = record_program(&prog, &opts);
            assert_eq!(plain, recorded);
            assert_eq!(rec.len(), 3);
        }
    }

    #[test]
    fn predict_at_same_params_replays_everything() {
        let prog = sample_program(6);
        let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(6)));
        let (_, rec) = record_program(&prog, &opts);
        let (pred, stats) = rec.predict(&prog, &opts);
        assert_eq!(pred, simulate_program(&prog, &opts));
        assert_eq!(stats.replayed, 3);
        assert_eq!(stats.resimulated, 0);
        assert_eq!(stats.replay_fraction(), 1.0);
    }

    #[test]
    fn predict_matches_full_simulation_across_param_changes() {
        let prog = sample_program(6);
        let base = presets::meiko_cs2(6);
        for o in [
            SimOptions::new(SimConfig::new(base)),
            SimOptions::new(SimConfig::new(base)).worst_case(),
        ] {
            let (_, rec) = record_program(&prog, &o);
            // Sweep: uniform scalings (order-preserving) and a few skewed
            // ones (may force fallback); predictions must match full
            // simulation regardless of which path each step took.
            for (num, den) in [(3, 2), (2, 1), (1, 3), (7, 5), (1, 1)] {
                let mut alt = o;
                alt.cfg.params = scaled(base, num, den);
                let (pred, stats) = rec.predict(&prog, &alt);
                assert_eq!(pred, simulate_program(&prog, &alt), "scale {num}/{den}");
                assert_eq!(stats.comm_steps(), 3);
            }
            let mut skew = o;
            skew.cfg.params.latency = base.latency * 40;
            let (pred, _) = rec.predict(&prog, &skew);
            assert_eq!(pred, simulate_program(&prog, &skew));
        }
    }

    #[test]
    fn uniform_scaling_takes_the_fast_path() {
        let prog = sample_program(6);
        let base = presets::meiko_cs2(6);
        let o = SimOptions::new(SimConfig::new(base));
        let (_, rec) = record_program(&prog, &o);
        let mut alt = o;
        alt.cfg.params = scaled(base, 2, 1);
        let (_, stats) = rec.predict(&prog, &alt);
        // Doubling every parameter scales all times uniformly, so the
        // recorded order stays valid and every step replays.
        assert_eq!(stats.replayed, 3);
        assert_eq!(stats.resimulated, 0);
    }

    #[test]
    fn algorithm_mismatch_falls_back_to_full_simulation() {
        let prog = sample_program(5);
        let st = SimOptions::new(SimConfig::new(presets::meiko_cs2(5)));
        let (_, rec) = record_program(&prog, &st);
        let wc = st.worst_case();
        let (pred, stats) = rec.predict(&prog, &wc);
        assert_eq!(pred, simulate_program(&prog, &wc));
        assert_eq!(stats.replayed, 0);
        assert_eq!(stats.resimulated, 3);
        assert_eq!(stats.replay_fraction(), 0.0);
    }

    #[test]
    fn random_tie_break_recordings_never_replay_but_stay_correct() {
        let prog = sample_program(5);
        let o = SimOptions::new(SimConfig::new(presets::meiko_cs2(5)).with_random_ties(9));
        let (recorded, rec) = record_program(&prog, &o);
        assert_eq!(recorded, simulate_program(&prog, &o));
        let (pred, stats) = rec.predict(&prog, &o);
        assert_eq!(pred, simulate_program(&prog, &o));
        assert_eq!(stats.replayed, 0);
        assert_eq!(stats.resimulated, 3);
    }

    #[test]
    fn worstcase_replay_survives_skewed_params() {
        // The worst-case recording replays unconditionally (same seed),
        // even under skews that flip the standard algorithm's order.
        let prog = sample_program(6);
        let base = presets::meiko_cs2(6);
        let o = SimOptions::new(SimConfig::new(base)).worst_case();
        let (_, rec) = record_program(&prog, &o);
        let mut skew = o;
        skew.cfg.params.latency = base.latency * 100;
        let (pred, stats) = rec.predict(&prog, &skew);
        assert_eq!(pred, simulate_program(&prog, &skew));
        assert_eq!(stats.replayed, 3);
    }

    #[test]
    fn fold_identity_across_options() {
        // predict's lean fold must reproduce simulate_program bit-for-bit
        // under every synchronization / overlap / algorithm combination,
        // at recorded params and across a sweep (mixing fast-path and
        // fallback steps).
        let prog = sample_program(6);
        let base = presets::meiko_cs2(6);
        let o0 = SimOptions::new(SimConfig::new(base));
        for opts in [
            o0,
            o0.with_barrier(),
            o0.with_overlap(),
            o0.with_barrier().with_overlap(),
            o0.worst_case(),
            o0.worst_case().with_barrier(),
            o0.worst_case().with_overlap(),
        ] {
            let (recorded, rec) = record_program(&prog, &opts);
            assert_eq!(recorded, simulate_program(&prog, &opts));
            for (num, den) in [(1, 1), (2, 1), (7, 5), (1, 4)] {
                let mut alt = opts;
                alt.cfg.params = scaled(base, num, den);
                let (pred, stats) = rec.predict(&prog, &alt);
                assert_eq!(pred, simulate_program(&prog, &alt), "scale {num}/{den}");
                assert_eq!(stats.comm_steps(), 3);
            }
        }
    }

    #[test]
    fn empty_and_comp_only_programs_record_cleanly() {
        let mut prog = Program::new(3);
        prog.push(Step::new("c").with_comp(vec![Time::from_us(4.0); 3]));
        let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(3)));
        let (_, rec) = record_program(&prog, &opts);
        assert!(rec.is_empty());
        let (pred, stats) = rec.predict(&prog, &opts);
        assert_eq!(pred, simulate_program(&prog, &opts));
        assert_eq!(stats.comm_steps(), 0);
        assert_eq!(stats.replay_fraction(), 0.0);
    }
}
