//! Automatic selection of optimal implementation parameters from the
//! predicted running times — the paper's §7 future work ("future work may
//! be done to automatically determine these optimal values from the
//! predicted running times. This reduces to a search problem and therefore
//! some heuristics have to be used.").
//!
//! Two strategies over a sorted candidate list (e.g. block sizes):
//!
//! * [`sweep`] — exhaustive: evaluate every candidate; exact but costs one
//!   full program simulation per candidate;
//! * [`hill_climb`] — a local-descent heuristic that starts from a coarse
//!   probe and walks downhill, evaluating only a fraction of the
//!   candidates. The predicted time curve is *sawtoothed* (paper Figure 7),
//!   so the heuristic is only guaranteed to find a local optimum; the test
//!   suite quantifies how close it lands on the paper's workload.

use loggp::Time;

/// The outcome of a parameter search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchResult<P> {
    /// The best candidate found.
    pub best: P,
    /// Its predicted time.
    pub best_time: Time,
    /// Every `(candidate, time)` pair that was evaluated, in evaluation
    /// order.
    pub evaluated: Vec<(P, Time)>,
}

impl<P: Copy> SearchResult<P> {
    /// Number of evaluations performed.
    pub fn evals(&self) -> usize {
        self.evaluated.len()
    }
}

/// Exhaustively evaluate all candidates; returns the global optimum of the
/// predicted times.
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn sweep<P: Copy>(candidates: &[P], mut eval: impl FnMut(P) -> Time) -> SearchResult<P> {
    assert!(!candidates.is_empty(), "no candidates to search");
    let evaluated: Vec<(P, Time)> = candidates.iter().map(|&c| (c, eval(c))).collect();
    let &(best, best_time) = evaluated.iter().min_by_key(|(_, t)| *t).expect("non-empty");
    SearchResult {
        best,
        best_time,
        evaluated,
    }
}

/// [`sweep`] evaluated on `jobs` threads.
///
/// The result — best candidate, best time, and the `evaluated` list in
/// candidate order — is identical to the sequential [`sweep`] for a pure
/// `eval`; only wall-clock time changes. Candidates are dealt to workers
/// round-robin and reassembled by index, so ties resolve exactly as in the
/// sequential path (lowest candidate index wins).
///
/// # Panics
/// Panics if `candidates` is empty or `jobs` is zero.
pub fn sweep_parallel<P, F>(candidates: &[P], jobs: usize, eval: F) -> SearchResult<P>
where
    P: Copy + Send + Sync,
    F: Fn(P) -> Time + Sync,
{
    assert!(!candidates.is_empty(), "no candidates to search");
    assert!(jobs > 0, "need at least one worker");
    let jobs = jobs.min(candidates.len());
    if jobs == 1 {
        return sweep(candidates, eval);
    }

    let mut evaluated: Vec<Option<(P, Time)>> = vec![None; candidates.len()];
    let eval = &eval;
    let chunks: Vec<Vec<(usize, (P, Time))>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    (w..candidates.len())
                        .step_by(jobs)
                        .map(|i| (i, (candidates[i], eval(candidates[i]))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    for (i, pair) in chunks.into_iter().flatten() {
        evaluated[i] = Some(pair);
    }
    let evaluated: Vec<(P, Time)> = evaluated
        .into_iter()
        .map(|e| e.expect("all evaluated"))
        .collect();
    let &(best, best_time) = evaluated.iter().min_by_key(|(_, t)| *t).expect("non-empty");
    SearchResult {
        best,
        best_time,
        evaluated,
    }
}

/// Local-descent heuristic over a *sorted* candidate list.
///
/// Probes `probes` roughly equally spaced candidates, then walks downhill
/// from the best probe by single-index steps until neither neighbour
/// improves. Evaluations are memoized, so each candidate is evaluated at
/// most once.
///
/// # Panics
/// Panics if `candidates` is empty or `probes` is zero.
pub fn hill_climb<P: Copy + PartialEq>(
    candidates: &[P],
    probes: usize,
    mut eval: impl FnMut(P) -> Time,
) -> SearchResult<P> {
    assert!(!candidates.is_empty(), "no candidates to search");
    assert!(probes > 0, "need at least one probe");
    let n = candidates.len();
    let mut cache: Vec<Option<Time>> = vec![None; n];
    let mut evaluated: Vec<(P, Time)> = Vec::new();

    let mut get = |idx: usize, cache: &mut Vec<Option<Time>>, evaluated: &mut Vec<(P, Time)>| {
        if let Some(t) = cache[idx] {
            t
        } else {
            let t = eval(candidates[idx]);
            cache[idx] = Some(t);
            evaluated.push((candidates[idx], t));
            t
        }
    };

    // Coarse probes.
    let probes = probes.min(n);
    let mut best_idx = 0;
    let mut best_time = Time::MAX;
    for k in 0..probes {
        let idx = if probes == 1 {
            n / 2
        } else {
            k * (n - 1) / (probes - 1)
        };
        let t = get(idx, &mut cache, &mut evaluated);
        if t < best_time {
            best_time = t;
            best_idx = idx;
        }
    }

    // Downhill walk.
    loop {
        let mut improved = false;
        for next in [
            best_idx.checked_sub(1),
            (best_idx + 1 < n).then_some(best_idx + 1),
        ]
        .into_iter()
        .flatten()
        {
            let t = get(next, &mut cache, &mut evaluated);
            if t < best_time {
                best_time = t;
                best_idx = next;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    SearchResult {
        best: candidates[best_idx],
        best_time,
        evaluated,
    }
}

/// [`hill_climb`] with the coarse-probe phase evaluated on `jobs` threads.
///
/// Probes are simulated concurrently (they are fixed up front), then the
/// downhill walk proceeds sequentially as in [`hill_climb`] — each walk
/// step depends on the previous one, so there is nothing to parallelize
/// there. For a pure `eval` the chosen candidate and its time are
/// identical to the sequential variant; the `evaluated` list holds probes
/// in probe order followed by walk evaluations in walk order, which is the
/// sequential order too.
///
/// # Panics
/// Panics if `candidates` is empty, `probes` is zero, or `jobs` is zero.
pub fn hill_climb_parallel<P, F>(
    candidates: &[P],
    probes: usize,
    jobs: usize,
    eval: F,
) -> SearchResult<P>
where
    P: Copy + PartialEq + Send + Sync,
    F: Fn(P) -> Time + Sync,
{
    assert!(!candidates.is_empty(), "no candidates to search");
    assert!(probes > 0, "need at least one probe");
    assert!(jobs > 0, "need at least one worker");
    let n = candidates.len();
    let probes = probes.min(n);

    // The probe indices, deduplicated exactly as the sequential memoized
    // variant would effectively visit them.
    let mut probe_idx: Vec<usize> = (0..probes)
        .map(|k| {
            if probes == 1 {
                n / 2
            } else {
                k * (n - 1) / (probes - 1)
            }
        })
        .collect();
    probe_idx.dedup();

    let probe_results = {
        let probe_search = sweep_parallel(
            &probe_idx.iter().map(|&i| candidates[i]).collect::<Vec<P>>(),
            jobs,
            &eval,
        );
        probe_search.evaluated
    };

    let mut cache: Vec<Option<Time>> = vec![None; n];
    let mut evaluated: Vec<(P, Time)> = Vec::new();
    let mut best_idx = 0;
    let mut best_time = Time::MAX;
    for (&idx, &(c, t)) in probe_idx.iter().zip(&probe_results) {
        cache[idx] = Some(t);
        evaluated.push((c, t));
        if t < best_time {
            best_time = t;
            best_idx = idx;
        }
    }

    // Sequential downhill walk, memoized against probe results.
    loop {
        let mut improved = false;
        for next in [
            best_idx.checked_sub(1),
            (best_idx + 1 < n).then_some(best_idx + 1),
        ]
        .into_iter()
        .flatten()
        {
            let t = match cache[next] {
                Some(t) => t,
                None => {
                    let t = eval(candidates[next]);
                    cache[next] = Some(t);
                    evaluated.push((candidates[next], t));
                    t
                }
            };
            if t < best_time {
                best_time = t;
                best_idx = next;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    SearchResult {
        best: candidates[best_idx],
        best_time,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> Time {
        Time::from_us(us)
    }

    #[test]
    fn sweep_finds_global_minimum() {
        let cands = [10usize, 20, 30, 40, 50];
        let times = [t(9.0), t(4.0), t(6.0), t(3.0), t(8.0)];
        let r = sweep(&cands, |c| {
            times[cands.iter().position(|&x| x == c).unwrap()]
        });
        assert_eq!(r.best, 40);
        assert_eq!(r.best_time, t(3.0));
        assert_eq!(r.evals(), 5);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn sweep_rejects_empty() {
        let _ = sweep::<usize>(&[], |_| Time::ZERO);
    }

    #[test]
    fn hill_climb_finds_minimum_of_unimodal_curve() {
        let cands: Vec<usize> = (0..100).collect();
        // V-shaped valley at 37.
        let f = |c: usize| t((c as f64 - 37.0).abs() + 1.0);
        let r = hill_climb(&cands, 4, f);
        assert_eq!(r.best, 37);
        assert!(r.evals() < 60, "evaluated {} of 100", r.evals());
    }

    #[test]
    fn hill_climb_lands_on_local_minimum_of_sawtooth() {
        let cands: Vec<usize> = (0..50).collect();
        // Sawtooth with local minima every 10; global at 45.
        let f = |c: usize| {
            let phase = (c % 10) as f64;
            t(100.0 - (c as f64) + phase * 5.0)
        };
        let r = hill_climb(&cands, 5, f);
        // Whatever it found, it is a genuine local minimum.
        let idx = cands.iter().position(|&c| c == r.best).unwrap();
        for nb in [idx.wrapping_sub(1), idx + 1] {
            if nb < cands.len() {
                assert!(f(cands[nb]) >= r.best_time);
            }
        }
    }

    #[test]
    fn hill_climb_memoizes() {
        let cands: Vec<usize> = (0..20).collect();
        let mut calls = 0usize;
        let r = hill_climb(&cands, 20, |c| {
            calls += 1;
            t(c as f64 + 1.0)
        });
        assert_eq!(r.best, 0);
        assert_eq!(calls, r.evals());
        assert!(calls <= 20, "each candidate evaluated at most once");
    }

    #[test]
    fn single_candidate() {
        let r = hill_climb(&[42usize], 3, |_| t(7.0));
        assert_eq!(r.best, 42);
        let s = sweep(&[42usize], |_| t(7.0));
        assert_eq!(s.best, 42);
    }
}
