//! Property-based tests for the whole-program simulator.

use commsim::{patterns, SimConfig};
use loggp::{presets, Time};
use predsim_core::{simulate_program, Program, SimOptions, Step};
use proptest::prelude::*;

/// A random oblivious program: alternating computation and communication.
fn arb_program() -> impl Strategy<Value = Program> {
    (2usize..8, 1usize..8, any::<u64>()).prop_map(|(procs, steps, seed)| {
        let mut prog = Program::new(procs);
        for s in 0..steps {
            let step_seed = seed.wrapping_add(s as u64);
            let comp: Vec<Time> = (0..procs)
                .map(|p| Time::from_ns((step_seed.rotate_left(p as u32) % 100_000) * 10))
                .collect();
            let comm = patterns::random(procs, (step_seed % 8) as usize, 2048, step_seed);
            prog.push(Step::new(format!("s{s}")).with_comp(comp).with_comm(comm));
        }
        prog
    })
}

fn opts(procs: usize) -> SimOptions {
    SimOptions::new(SimConfig::new(presets::meiko_cs2(procs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Total time dominates the pure-computation critical path and every
    /// per-processor finish time; the step records are monotone.
    #[test]
    fn totals_dominate_components(prog in arb_program()) {
        let pred = simulate_program(&prog, &opts(prog.procs()));
        prop_assert!(pred.total >= pred.comp_time);
        for p in 0..prog.procs() {
            prop_assert!(pred.per_proc_finish[p] <= pred.total);
            prop_assert!(pred.per_proc_comp[p] <= pred.per_proc_finish[p]);
        }
        prop_assert_eq!(
            pred.comp_time,
            pred.per_proc_comp.iter().copied().max().unwrap()
        );
        let mut prev_end = Time::ZERO;
        for s in &pred.steps {
            prop_assert!(s.comm_end >= s.comp_end);
            prop_assert!(s.comm_end >= prev_end.min(s.comm_end)); // non-negative spans
            prev_end = s.comm_end;
        }
    }

    /// comp_time equals the load-balance view of the program, and is
    /// independent of the communication model.
    #[test]
    fn comp_time_matches_program_load(prog in arb_program()) {
        let pred = simulate_program(&prog, &opts(prog.procs()));
        let load = prog.comp_load();
        prop_assert_eq!(pred.per_proc_comp, load);
        let wc = simulate_program(&prog, &opts(prog.procs()).worst_case());
        prop_assert_eq!(wc.comp_time, pred.comp_time);
    }

    /// The simulation is deterministic.
    #[test]
    fn simulation_deterministic(prog in arb_program()) {
        let a = simulate_program(&prog, &opts(prog.procs()));
        let b = simulate_program(&prog, &opts(prog.procs()));
        prop_assert_eq!(a.total, b.total);
        prop_assert_eq!(a.per_proc_finish, b.per_proc_finish);
        prop_assert_eq!(a.per_proc_comm, b.per_proc_comm);
    }

    /// Scaling every computation charge by k scales comp_time by k (and
    /// cannot shrink the total).
    #[test]
    fn comp_scaling(prog in arb_program(), k in 2u64..5) {
        let mut scaled = Program::new(prog.procs());
        for s in prog.steps() {
            scaled.push(
                Step::new(s.label.clone())
                    .with_comp(s.comp.iter().map(|&t| t * k).collect())
                    .with_comm(s.comm.clone()),
            );
        }
        let base = simulate_program(&prog, &opts(prog.procs()));
        let big = simulate_program(&scaled, &opts(prog.procs()));
        prop_assert_eq!(big.comp_time, base.comp_time * k);
        prop_assert!(big.total >= base.comp_time * k);
    }

    /// Overlap never hurts the per-processor finish times relative to
    /// no-overlap *when each step's pattern is communication-only or
    /// computation-only* (mixed steps can reshuffle schedules).
    #[test]
    fn overlap_shrinks_pure_send_chains(procs in 2usize..6, steps in 1usize..5) {
        let mut prog = Program::new(procs);
        for s in 0..steps {
            let mut comm = commsim::CommPattern::new(procs);
            comm.add(s % procs, (s + 1) % procs, 256);
            prog.push(Step::new(format!("send{s}")).with_comm(comm));
            prog.push(Step::new(format!("work{s}")).with_comp(vec![Time::from_us(30.0); procs]));
        }
        let none = simulate_program(&prog, &opts(procs));
        let over = simulate_program(&prog, &opts(procs).with_overlap());
        prop_assert!(over.total <= none.total);
    }

    /// An empty program stays empty under every option combination.
    #[test]
    fn empty_program_zero(procs in 1usize..8) {
        let prog = Program::new(procs);
        for o in [
            opts(procs),
            opts(procs).worst_case(),
            opts(procs).with_barrier(),
            opts(procs).with_overlap(),
        ] {
            let pred = simulate_program(&prog, &o);
            prop_assert_eq!(pred.total, Time::ZERO);
        }
    }
}
