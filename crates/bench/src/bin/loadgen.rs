//! Load generator for predsim-serve: drive `POST /v1/predict` from N
//! concurrent keep-alive connections and report the latency distribution
//! (p50/p95/p99) and sustained throughput.
//!
//! ```text
//! cargo run -p bench --release --bin loadgen -- \
//!     [--addr HOST:PORT] [--concurrency N] [--requests N] \
//!     [--source SPEC] [--machine NAME] [--workers N] [--queue-cap N]
//! ```
//!
//! Without `--addr`, an in-process server is started (with `--workers`
//! prediction threads and a `--queue-cap` admission queue) and drained at
//! the end, so the run also exercises the full drain path. `429`
//! responses are retried after the server's `Retry-After`; retries are
//! counted and reported, not hidden.

use predsim_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    addr: Option<String>,
    concurrency: usize,
    requests: usize,
    source: String,
    machine: String,
    workers: usize,
    queue_cap: usize,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: None,
        concurrency: 8,
        requests: 64,
        source: "ge:960,32,diagonal,8".into(),
        machine: "meiko".into(),
        workers: 4,
        queue_cap: 64,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag '{flag}' needs a value"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = Some(value()?),
            "--concurrency" => {
                opts.concurrency = value()?
                    .parse()
                    .map_err(|e| format!("bad --concurrency: {e}"))?
            }
            "--requests" => {
                opts.requests = value()?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--source" => opts.source = value()?,
            "--machine" => opts.machine = value()?,
            "--workers" => {
                opts.workers = value()?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--queue-cap" => {
                opts.queue_cap = value()?
                    .parse()
                    .map_err(|e| format!("bad --queue-cap: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if opts.concurrency == 0 || opts.requests == 0 {
        return Err("--concurrency and --requests must be at least 1".into());
    }
    Ok(opts)
}

/// Read one `Content-Length`-framed HTTP response off a keep-alive
/// connection, returning the status code.
fn read_response(stream: &mut TcpStream) -> Result<(u16, Option<u64>), String> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => return Err("connection closed mid-response".into()),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(format!("reading response head: {e}")),
        }
        if head.len() > 64 * 1024 {
            return Err("response head too large".into());
        }
    }
    let head = String::from_utf8_lossy(&head);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value.trim().parse().map_err(|_| "bad content-length")?
                }
                "retry-after" => retry_after = value.trim().parse().ok(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("reading response body: {e}"))?;
    Ok((status, retry_after))
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx]
}

fn main() {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    // Start an in-process server unless pointed at a running one.
    let (addr, handle) = match &opts.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = Server::start(ServeConfig {
                workers: opts.workers,
                queue_cap: opts.queue_cap,
                ..ServeConfig::default()
            })
            .expect("starting in-process server");
            (handle.addr().to_string(), Some(handle))
        }
    };

    let body = format!(
        "{{\"source\":\"{}\",\"machine\":\"{}\"}}",
        opts.source, opts.machine
    );
    let request = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: {addr}\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );

    println!(
        "loadgen: {} requests, {} clients -> {} ({})",
        opts.requests, opts.concurrency, addr, opts.source
    );

    let issued = Arc::new(AtomicUsize::new(0));
    let retried = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let clients: Vec<_> = (0..opts.concurrency)
        .map(|_| {
            let addr = addr.clone();
            let request = request.clone();
            let issued = Arc::clone(&issued);
            let retried = Arc::clone(&retried);
            let total = opts.requests;
            std::thread::spawn(move || -> Result<Vec<Duration>, String> {
                let mut stream =
                    TcpStream::connect(&addr).map_err(|e| format!("connecting: {e}"))?;
                stream.set_nodelay(true).ok();
                let mut latencies = Vec::new();
                // Claim request slots until the shared budget is spent.
                while issued.fetch_add(1, Ordering::SeqCst) < total {
                    loop {
                        let sent = Instant::now();
                        stream
                            .write_all(request.as_bytes())
                            .map_err(|e| format!("sending request: {e}"))?;
                        let (status, retry_after) = read_response(&mut stream)?;
                        match status {
                            200 => {
                                latencies.push(sent.elapsed());
                                break;
                            }
                            429 => {
                                retried.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_millis(
                                    retry_after.unwrap_or(1) * 100,
                                ));
                            }
                            other => return Err(format!("unexpected status {other}")),
                        }
                    }
                }
                Ok(latencies)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(opts.requests);
    for client in clients {
        match client.join().expect("client panicked") {
            Ok(mut l) => latencies.append(&mut l),
            Err(e) => {
                eprintln!("client error: {e}");
                std::process::exit(1);
            }
        }
    }
    let wall = started.elapsed();

    latencies.sort();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    println!(
        "done: {} predictions in {:.2} s ({:.1} req/s), {} retries after 429",
        latencies.len(),
        wall.as_secs_f64(),
        latencies.len() as f64 / wall.as_secs_f64(),
        retried.load(Ordering::SeqCst)
    );
    println!(
        "latency ms: p50 {:.1} | p95 {:.1} | p99 {:.1} | min {:.1} | max {:.1}",
        ms(percentile(&latencies, 50.0)),
        ms(percentile(&latencies, 95.0)),
        ms(percentile(&latencies, 99.0)),
        ms(latencies[0]),
        ms(*latencies.last().expect("at least one latency")),
    );

    if let Some(handle) = handle {
        let report = handle.drain();
        let text = report.metrics.to_prometheus();
        let served: u64 = text
            .lines()
            .filter(|l| l.starts_with("serve_requests_total"))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum();
        println!("server drained; {served} responses counted in final metrics");
    }
}
