//! Load generator for predsim-serve: drive `POST /v1/predict` from N
//! concurrent keep-alive connections and report goodput, the per-tier
//! answer mix, and the latency distribution (p50/p95/p99) per tier.
//!
//! ```text
//! cargo run -p bench --release --bin loadgen -- \
//!     [--addr HOST:PORT] [--concurrency N] [--requests N] \
//!     [--source SPEC] [--machine NAME] [--deadline-ms MS] \
//!     [--retries N] [--backoff-ms MS] [--seed N] \
//!     [--workers N] [--queue-cap N] [--replay-at N] [--static-at N] \
//!     [--chaos SPEC] [--chaos-seed N]
//! ```
//!
//! Without `--addr`, an in-process server is started (honouring the
//! `--workers`/`--queue-cap`/watermark/chaos flags) and drained at the
//! end, so the run also exercises the full drain path. Retries are
//! **bounded** (`--retries`, exponential backoff with deterministic
//! jitter from `--seed`) and a request that exhausts its budget is
//! reported as given up, never hidden.

use bench::serveload::{percentile, run_load, LoadOptions};
use predsim_serve::{ChaosPlan, ChaosSpec, ServeConfig, Server};

struct Options {
    addr: Option<String>,
    load: LoadOptions,
    source: String,
    machine: String,
    deadline_ms: Option<u64>,
    workers: usize,
    queue_cap: usize,
    replay_at: Option<usize>,
    static_at: Option<usize>,
    chaos: Option<String>,
    chaos_seed: u64,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: None,
        load: LoadOptions::default(),
        source: "ge:960,32,diagonal,8".into(),
        machine: "meiko".into(),
        deadline_ms: None,
        workers: 4,
        queue_cap: 64,
        replay_at: None,
        static_at: None,
        chaos: None,
        chaos_seed: 1,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag '{flag}' needs a value"))
        };
        let parse = |what: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|e| format!("bad {what}: {e}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = Some(value()?),
            "--concurrency" => opts.load.concurrency = parse(flag, value()?)?,
            "--requests" => opts.load.requests = parse(flag, value()?)?,
            "--retries" => opts.load.attempts = 1 + parse(flag, value()?)? as u32,
            "--backoff-ms" => opts.load.backoff_ms = parse(flag, value()?)? as u64,
            "--seed" => opts.load.seed = parse(flag, value()?)? as u64,
            "--source" => opts.source = value()?,
            "--machine" => opts.machine = value()?,
            "--deadline-ms" => opts.deadline_ms = Some(parse(flag, value()?)? as u64),
            "--workers" => opts.workers = parse(flag, value()?)?,
            "--queue-cap" => opts.queue_cap = parse(flag, value()?)?,
            "--replay-at" => opts.replay_at = Some(parse(flag, value()?)?),
            "--static-at" => opts.static_at = Some(parse(flag, value()?)?),
            "--chaos" => opts.chaos = Some(value()?),
            "--chaos-seed" => opts.chaos_seed = parse(flag, value()?)? as u64,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if opts.load.concurrency == 0 || opts.load.requests == 0 {
        return Err("--concurrency and --requests must be at least 1".into());
    }
    if opts.addr.is_some() && opts.chaos.is_some() {
        return Err("--chaos only applies to the in-process server (drop --addr)".into());
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let chaos = match &opts.chaos {
        Some(spec) => match ChaosSpec::parse(spec) {
            Ok(spec) => Some(ChaosPlan::new(spec, opts.chaos_seed)),
            Err(e) => {
                eprintln!("error: bad --chaos: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    // Start an in-process server unless pointed at a running one.
    let (addr, handle) = match &opts.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = Server::start(ServeConfig {
                workers: opts.workers,
                queue_cap: opts.queue_cap,
                replay_at: opts.replay_at,
                static_at: opts.static_at,
                chaos,
                ..ServeConfig::default()
            })
            .expect("starting in-process server");
            (handle.addr().to_string(), Some(handle))
        }
    };

    let deadline = opts
        .deadline_ms
        .map(|ms| format!(",\"deadline_ms\":{ms}"))
        .unwrap_or_default();
    let body = format!(
        "{{\"source\":\"{}\",\"machine\":\"{}\"{deadline}}}",
        opts.source, opts.machine
    );

    println!(
        "loadgen: {} requests, {} clients -> {} ({}{})",
        opts.load.requests,
        opts.load.concurrency,
        addr,
        opts.source,
        opts.chaos
            .as_deref()
            .map(|c| format!(", chaos {c}"))
            .unwrap_or_default()
    );

    let report = run_load(&addr, &[body], &opts.load);
    let ok = report.ok().count();
    println!(
        "done: {ok}/{} answered 200 in {:.2} s (goodput {:.1} req/s), \
         {} retries after 429, {} reconnects, {} gave up",
        opts.load.requests,
        report.wall.as_secs_f64(),
        report.goodput_milli_rps() as f64 / 1000.0,
        report.retries_429,
        report.reconnects,
        report.gave_up(),
    );
    for (tier, count) in report.tier_counts() {
        let ms = report.latencies_ms(Some(&tier));
        println!(
            "tier {tier:<7} {count:>5} answers | latency ms: p50 {:.1} | p95 {:.1} | p99 {:.1}",
            percentile(&ms, 50.0),
            percentile(&ms, 95.0),
            percentile(&ms, 99.0),
        );
    }

    if let Some(handle) = handle {
        let report = handle.drain();
        let text = report.metrics.to_prometheus();
        let sum_of = |name: &str| -> u64 {
            text.lines()
                .filter(|l| l.starts_with(name) && !l.starts_with('#'))
                .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
                .sum()
        };
        println!(
            "server drained; {} responses, {} worker restarts, {} chaos injections",
            sum_of("serve_requests_total"),
            sum_of("serve_worker_restarts_total"),
            sum_of("serve_chaos_injections_total"),
        );
    }

    if report.gave_up() > 0 {
        std::process::exit(1);
    }
}
