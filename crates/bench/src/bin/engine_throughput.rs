//! Batch-engine throughput: wall-clock time of a realistic prediction
//! sweep under the four engine configurations (1 thread / all threads ×
//! memo on / off), verifying along the way that every configuration
//! produces bit-identical predictions.
//!
//! ```text
//! cargo run -p bench --release --bin engine_throughput
//! ```

use commsim::patterns;
use loggp::{presets, Time};
use predsim_core::report::Table;
use predsim_core::{Program, Step};
use predsim_engine::{Engine, EngineConfig, Grid, JobResult, JobSource, JobSpec, LayoutSpec};
use std::sync::Arc;
use std::time::Instant;

/// A program that repeats the same heavyweight collective step: uniform
/// computation followed by a `procs`-way all-to-all. Every iteration after
/// the first presents the identical relative readiness shape, so the memo
/// cache answers it with a shifted replay of the first.
fn collective_trace(procs: usize, steps: usize, bytes: usize) -> Arc<Program> {
    let mut prog = Program::new(procs);
    for s in 0..steps {
        prog.push(
            Step::new(format!("xchg{s}"))
                .with_comp(vec![Time::from_us(50.0); procs])
                .with_comm(patterns::all_to_all(procs, bytes)),
        );
    }
    Arc::new(prog)
}

/// The sweep: every paper block size for GE on 8 processors, long-running
/// stencil and Cannon predictions, and two repeated-collective traces —
/// a mix of memo-friendly (repeated steps) and memo-hostile (distinct
/// wavefronts) jobs, each predicted on two machines.
fn workload() -> Vec<JobSpec> {
    let n = 480;
    let mut grid = Grid::new();
    for &b in gauss::PAPER_BLOCK_SIZES.iter().filter(|b| n % **b == 0) {
        grid = grid.source(
            format!("ge B={b}"),
            JobSource::Gauss {
                n,
                block: b,
                layout: LayoutSpec::Diagonal(8),
            },
        );
    }
    grid = grid
        .source(
            "stencil 256x4x400",
            JobSource::Stencil {
                n: 256,
                procs: 4,
                iters: 400,
                ps_per_flop: 500,
            },
        )
        .source(
            "stencil 512x8x200",
            JobSource::Stencil {
                n: 512,
                procs: 8,
                iters: 200,
                ps_per_flop: 500,
            },
        )
        .source("cannon 480/4", JobSource::Cannon { n: 480, q: 4 })
        .source(
            "all-to-all 16x150",
            JobSource::Program(collective_trace(16, 150, 4096)),
        )
        .source(
            "all-to-all 32x60",
            JobSource::Program(collective_trace(32, 60, 4096)),
        );
    grid.machine("meiko", presets::meiko_cs2(8))
        .machine("myrinet", presets::myrinet_cluster(8))
        .build()
}

fn time_run(config: EngineConfig, jobs: &[JobSpec]) -> (f64, Vec<JobResult>, u64, u64) {
    let engine = Engine::new(config);
    let t0 = Instant::now();
    let results = engine.run(jobs);
    let dt = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    (dt, results, stats.hits, stats.misses)
}

fn assert_identical(a: &[JobResult], b: &[JobResult]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.prediction().total, y.prediction().total, "{}", x.label);
        assert_eq!(
            x.prediction().per_proc_finish,
            y.prediction().per_proc_finish,
            "{}",
            x.label
        );
        assert_eq!(
            x.prediction().forced_sends,
            y.prediction().forced_sends,
            "{}",
            x.label
        );
    }
}

fn main() {
    let jobs = workload();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "== Engine throughput: {} jobs, {} CPUs ==",
        jobs.len(),
        cpus
    );

    let par_no_memo = format!("{cpus} workers, no memo");
    let par_memo = format!("{cpus} workers, memo");
    let configs: [(&str, EngineConfig); 4] = [
        (
            "sequential, no memo",
            EngineConfig::default().with_jobs(1).with_memo(false),
        ),
        ("sequential, memo", EngineConfig::default().with_jobs(1)),
        (&par_no_memo, EngineConfig::default().with_memo(false)),
        (&par_memo, EngineConfig::default()),
    ];

    let mut table = Table::new([
        "configuration",
        "wall (ms)",
        "speedup",
        "memo hits",
        "memo misses",
    ]);
    let mut baseline: Option<(f64, Vec<JobResult>)> = None;
    let mut best_speedup = 0.0f64;
    for (name, config) in configs {
        let (dt, results, hits, misses) = time_run(config, &jobs);
        let speedup = match &baseline {
            None => 1.0,
            Some((t0, first)) => {
                assert_identical(first, &results);
                t0 / dt
            }
        };
        best_speedup = best_speedup.max(speedup);
        table.row([
            name.to_string(),
            format!("{:.1}", dt * 1e3),
            format!("{speedup:.2}x"),
            hits.to_string(),
            misses.to_string(),
        ]);
        if baseline.is_none() {
            baseline = Some((dt, results));
        }
    }
    println!("{}", table.render());
    println!("all four configurations produced bit-identical predictions");
    if cpus >= 4 {
        assert!(
            best_speedup >= 2.0,
            "expected >=2x speedup over the sequential no-memo baseline on a \
             {cpus}-core host, measured {best_speedup:.2}x"
        );
        println!("speedup target met: {best_speedup:.2}x >= 2x");
    } else {
        println!("(host has {cpus} CPUs; >=2x speedup is only asserted on 4+)");
    }
}
