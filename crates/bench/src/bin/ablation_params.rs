//! Ablation — LogGP parameter sensitivity. The paper's Meiko CS-2 numbers
//! were partially lost in the scan (DESIGN.md documents the
//! reconstruction); this ablation shows the *conclusions* — which layout
//! wins and which block size is optimal — are stable under ±50%
//! perturbations of every parameter.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_params
//! ```

use bench::ge::trace_for;
use commsim::SimConfig;
use loggp::{presets, LogGpParams, Time};
use predsim_core::report::Table;
use predsim_core::{simulate_program, Diagonal, RowCyclic, SimOptions};

fn optimum(params: LogGpParams, n: usize, blocks: &[usize]) -> (usize, bool) {
    let procs = params.procs;
    let cfg = SimConfig::new(params);
    let diag = Diagonal::new(procs);
    let rows = RowCyclic::new(procs);
    let mut best = (0usize, Time::MAX);
    let mut diag_wins_all = true;
    for &b in blocks {
        let d = simulate_program(&trace_for(n, b, &diag).program, &SimOptions::new(cfg)).total;
        let r = simulate_program(&trace_for(n, b, &rows).program, &SimOptions::new(cfg)).total;
        if d < best.1 {
            best = (b, d);
        }
        if d > r {
            diag_wins_all = false;
        }
    }
    (best.0, diag_wins_all)
}

fn main() {
    println!("== Ablation: LogGP parameter sensitivity (diagonal mapping, n=480, P=8) ==");
    // Half-size matrix keeps the 3x14 sweep quick while preserving shape.
    let n = 480;
    let blocks: Vec<usize> = gauss::PAPER_BLOCK_SIZES
        .iter()
        .copied()
        .filter(|b| n % b == 0)
        .collect();
    let base = presets::meiko_cs2(8);

    let mut table = Table::new(["variant", "optimal B", "diagonal wins every B?"]);
    let scale = |t: Time, pct: u64| Time::from_ps(t.as_ps() * pct / 100);
    let variants: Vec<(String, LogGpParams)> = vec![
        ("baseline (reconstructed CS-2)".into(), base),
        ("L x0.5".into(), base.with_latency(scale(base.latency, 50))),
        ("L x1.5".into(), base.with_latency(scale(base.latency, 150))),
        ("o x1.5 (g raised to match)".into(), {
            let o = scale(base.overhead, 150);
            base.with_overhead(o).with_gap(base.gap.max(o))
        }),
        (
            "g x0.5 (floor o)".into(),
            base.with_gap(scale(base.gap, 50).max(base.overhead)),
        ),
        ("g x1.5".into(), base.with_gap(scale(base.gap, 150))),
        (
            "G x0.5".into(),
            base.with_gap_per_byte(scale(base.gap_per_byte, 50)),
        ),
        (
            "G x1.5".into(),
            base.with_gap_per_byte(scale(base.gap_per_byte, 150)),
        ),
    ];
    for (name, params) in variants {
        params.validate().expect("variant valid");
        let (b, wins) = optimum(params, n, &blocks);
        table.row([
            name,
            b.to_string(),
            if wins { "yes".into() } else { "no".to_string() },
        ]);
    }
    println!("{}", table.render());
    println!("stable optimal-B and layout ordering across perturbations support the\nreconstructed parameter values (DESIGN.md, presets module).");
}
