//! Simulator performance: how many message events per second the two
//! algorithms process — what makes sweep-based optimization cheap enough
//! to be the paper's selling point.
//!
//! ```text
//! cargo run -p bench --release --bin sim_throughput
//! ```

use commsim::{patterns, standard, worstcase, SimConfig};
use loggp::presets;
use predsim_core::report::Table;
use std::time::Instant;

fn rate(msgs: usize, reps: usize, f: impl Fn()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    (msgs * reps) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    println!("== Simulator throughput (message events / second, this host) ==");
    let mut table = Table::new([
        "pattern",
        "messages",
        "standard (Mmsg/s)",
        "worst-case (Mmsg/s)",
    ]);
    let cases: Vec<(String, commsim::CommPattern)> = vec![
        ("figure3".into(), patterns::figure3()),
        ("all-to-all(32, 1KB)".into(), patterns::all_to_all(32, 1024)),
        ("all-to-all(64, 1KB)".into(), patterns::all_to_all(64, 1024)),
        (
            "random(64, 10k msgs)".into(),
            patterns::random(64, 10_000, 4096, 1),
        ),
        (
            "random(128, 50k msgs)".into(),
            patterns::random(128, 50_000, 4096, 2),
        ),
    ];
    for (name, pattern) in cases {
        let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));
        let msgs = pattern.network_messages().count();
        let reps = (200_000 / msgs.max(1)).clamp(3, 2_000);
        let std_rate = rate(msgs, reps, || {
            std::hint::black_box(standard::simulate(&pattern, &cfg));
        });
        let wc_rate = rate(msgs, reps, || {
            std::hint::black_box(worstcase::simulate(&pattern, &cfg));
        });
        table.row([
            name,
            msgs.to_string(),
            format!("{:.2}", std_rate / 1e6),
            format!("{:.2}", wc_rate / 1e6),
        ]);
    }
    println!("{}", table.render());

    // Whole-program rate on the paper's workload.
    let layout = predsim_core::Diagonal::new(8);
    let trace = bench::ge::trace_for(960, 24, &layout);
    let msgs = trace.program.total_messages();
    let cfg = SimConfig::new(presets::meiko_cs2(8));
    let t0 = Instant::now();
    let reps = 10;
    for _ in 0..reps {
        std::hint::black_box(predsim_core::simulate_program(
            &trace.program,
            &predsim_core::SimOptions::new(cfg),
        ));
    }
    let dt = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "whole-program GE n=960 B=24 ({} steps, {msgs} messages): {:.1} ms per prediction — a full 14-point sweep costs well under a second",
        trace.program.len(),
        dt * 1e3
    );

    // Aggregate rate through the batch engine: the same prediction run as
    // `jobs` copies on one worker per CPU (each copy is an independent job,
    // as in a machine-comparison sweep).
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let program = std::sync::Arc::new(trace.program.clone());
    let jobs: Vec<predsim_engine::JobSpec> = (0..cpus.max(4))
        .map(|i| {
            predsim_engine::JobSpec::new(
                format!("copy {i}"),
                predsim_engine::JobSource::Program(std::sync::Arc::clone(&program)),
                predsim_core::SimOptions::new(cfg),
            )
        })
        .collect();
    let engine = predsim_engine::Engine::new(predsim_engine::EngineConfig::default());
    let t0 = Instant::now();
    std::hint::black_box(engine.run(&jobs));
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "engine ({} jobs on {} workers): {:.2} Mmsg/s aggregate ({:.1} ms wall)",
        jobs.len(),
        cpus,
        (msgs * jobs.len()) as f64 / dt / 1e6,
        dt * 1e3
    );
}
