//! Ablation — the worst-case algorithm breaks deadlocks on cyclic
//! patterns by *randomly* chosen forced transmissions (paper §4.2). How
//! sensitive is the resulting upper bound to that randomness?
//!
//! Cannon's algorithm supplies naturally cyclic shift patterns.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_deadlock_seeds
//! ```

use blockops::AnalyticCost;
use commsim::{worstcase, SimConfig};
use loggp::{presets, Time};
use predsim_core::report::{us, Table};

fn main() {
    println!("== Ablation: deadlock-breaking seeds (worst-case algorithm) ==");
    let mut table = Table::new([
        "pattern",
        "min finish",
        "max finish",
        "spread %",
        "forced sends (min..max)",
    ]);

    let cannon = cannon::generate(64, 4, &AnalyticCost::paper_default());
    let shift = cannon.program.steps()[1].comm.clone();
    let cases = vec![
        ("cannon shift (4x4 grid)", shift),
        ("ring(8, 2KB)", commsim::patterns::ring(8, 2048)),
        ("all-to-all(6, 1KB)", commsim::patterns::all_to_all(6, 1024)),
    ];
    for (name, pattern) in cases {
        let base = SimConfig::new(presets::meiko_cs2(pattern.procs()));
        let mut lo = Time::MAX;
        let mut hi = Time::ZERO;
        let mut fmin = usize::MAX;
        let mut fmax = 0usize;
        for seed in 0..32 {
            let r = worstcase::simulate(&pattern, &base.with_seed(seed));
            lo = lo.min(r.finish);
            hi = hi.max(r.finish);
            fmin = fmin.min(r.forced_sends);
            fmax = fmax.max(r.forced_sends);
        }
        table.row([
            name.to_string(),
            us(lo),
            us(hi),
            format!("{:.2}", (hi.as_us_f64() / lo.as_us_f64() - 1.0) * 100.0),
            format!("{fmin}..{fmax}"),
        ]);
    }
    println!("{}", table.render());
}
