//! Ablation — data-layout extension: beyond the paper's two layouts
//! (row-stripped cyclic and diagonal), how do column-cyclic and 2-D
//! block-cyclic mappings fare on the same sweep?
//!
//! ```text
//! cargo run -p bench --release --bin ablation_layouts
//! ```

use bench::ge::trace_for;
use commsim::SimConfig;
use loggp::presets;
use predsim_core::report::{secs, Table};
use predsim_core::{
    simulate_program, BlockCyclic2D, ColCyclic, Diagonal, Layout, RowCyclic, SimOptions,
};

fn main() {
    println!("== Ablation: layouts (simulated standard, n=960, P=8) ==");
    let cfg = SimConfig::new(presets::meiko_cs2(8));
    let layouts: Vec<Box<dyn Layout>> = vec![
        Box::new(RowCyclic::new(8)),
        Box::new(ColCyclic::new(8)),
        Box::new(Diagonal::new(8)),
        Box::new(BlockCyclic2D::new(2, 4)),
        Box::new(BlockCyclic2D::new(4, 2)),
    ];
    let blocks = [10, 20, 40, 80, 160];
    let mut header = vec!["layout".to_string()];
    header.extend(blocks.iter().map(|b| format!("B={b}")));
    let mut table = Table::new(header);
    let mut best_at_large: (String, f64) = (String::new(), f64::MAX);
    for l in &layouts {
        let mut row = vec![l.name()];
        for &b in &blocks {
            let t = simulate_program(
                &trace_for(960, b, l.as_ref()).program,
                &SimOptions::new(cfg),
            )
            .total;
            if b == 160 && t.as_secs_f64() < best_at_large.1 {
                best_at_large = (l.name(), t.as_secs_f64());
            }
            row.push(secs(t));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("best layout at B=160: {}", best_at_large.0);
}
