//! Figure 7 — total running time vs. block size, for the diagonal mapping
//! (top panel) and the row-stripped-cyclic mapping (bottom panel).
//!
//! Series, in the paper's legend order: measured w/o caching, measured
//! w. caching, simulated standard, simulated worst case. Times in seconds.
//!
//! ```text
//! cargo run -p bench --release --bin fig7_total_time
//! ```

use bench::ge::{argmin_b, sweep, SweepConfig};
use predsim_core::report::{secs, Table};
use predsim_core::{Diagonal, Layout, RowCyclic};

fn panel(layout: &dyn Layout, cfg: &SweepConfig) {
    println!(
        "== Figure 7 ({} mapping): total running time (s), n={}, P={} ==",
        layout.name(),
        cfg.n,
        cfg.procs
    );
    let rows = sweep(layout, cfg);
    let mut table = Table::new([
        "block",
        "measured w/o caching",
        "measured w. caching",
        "simulated standard",
        "simulated worst case",
    ]);
    for r in &rows {
        let [m0, m1, s0, s1] = r.fig7();
        table.row([r.b.to_string(), secs(m0), secs(m1), secs(s0), secs(s1)]);
    }
    println!("{}", table.render());
    println!(
        "optimal block size: simulated(std) B={}, simulated(worst) B={}, measured(w cache) B={}, measured(w/o cache) B={}",
        argmin_b(&rows, |r| r.sim_std.total),
        argmin_b(&rows, |r| r.sim_wc.total),
        argmin_b(&rows, |r| r.meas_cache.prediction.total),
        argmin_b(&rows, |r| r.meas_nocache.prediction.total),
    );
    // The paper's headline use: how far from optimal do you land if you
    // pick the *predicted* best block size?
    let b_pred = argmin_b(&rows, |r| r.sim_wc.total);
    let t_at_pred = rows
        .iter()
        .find(|r| r.b == b_pred)
        .map(|r| r.meas_cache.prediction.total)
        .unwrap();
    let t_best = rows
        .iter()
        .map(|r| r.meas_cache.prediction.total)
        .min()
        .unwrap();
    println!(
        "picking the predicted B={} costs {} s vs true optimum {} s ({:+.1}%)\n",
        b_pred,
        secs(t_at_pred),
        secs(t_best),
        (t_at_pred.as_secs_f64() / t_best.as_secs_f64() - 1.0) * 100.0
    );
}

fn main() {
    let cfg = SweepConfig::default();
    panel(&Diagonal::new(cfg.procs), &cfg);
    panel(&RowCyclic::new(cfg.procs), &cfg);
}
