//! Speedup sweep on the acceptance DAG workload: a 32-wide single-stage
//! fork-join (1 Mflop tasks, 8 KiB edges) scheduled by HEFT on the
//! meiko preset, swept over 1..16 processors.
//!
//! Writes `BENCH_DAG.json` — exactly the strict-JSON document
//! `predsim dag-sweep --json` prints for the same workload (pretty
//! rendered) — and prints the curve as a table.
//!
//! ```text
//! cargo run -p bench --release --bin dag_report
//! ```

use loggp::MachineSpec;
use predsim_dag::{generate, sweep, SchedulerKind};

const WIDTH: usize = 32;
const STAGES: usize = 1;
const FLOPS: u64 = 1_000_000;
const BYTES: usize = 8192;
const MAX_PROCS: usize = 16;

fn main() {
    let dag = generate::fork_join(WIDTH, STAGES, FLOPS, BYTES);
    let spec = MachineSpec::uniform(loggp::presets::meiko_cs2(MAX_PROCS));
    let procs: Vec<usize> = (1..=MAX_PROCS).collect();
    let report = sweep(&dag, SchedulerKind::Heft, "meiko", &spec, &procs).expect("sweep runs");

    println!(
        "== dag-sweep: forkjoin:{WIDTH},{STAGES},{FLOPS},{BYTES} ({} tasks, {} edges) ==",
        report.tasks, report.edges
    );
    println!("scheduler {}  machine {}", report.scheduler, report.machine);
    println!(
        "{:>5} {:>12} {:>9} {:>11}",
        "procs", "total (s)", "speedup", "efficiency"
    );
    for p in &report.points {
        println!(
            "{:>5} {:>12.6} {:>8.2}x {:>10.1}%",
            p.procs,
            p.total.as_secs_f64(),
            p.speedup_permille as f64 / 1000.0,
            p.efficiency_permille as f64 / 10.0
        );
    }
    println!(
        "T(1) = {:.6} s; knee at P={} (last point at >= 50% efficiency)",
        report.t1.as_secs_f64(),
        report.knee
    );

    std::fs::write("BENCH_DAG.json", report.to_value().to_pretty() + "\n")
        .expect("write BENCH_DAG.json");
    println!("wrote BENCH_DAG.json");
}
