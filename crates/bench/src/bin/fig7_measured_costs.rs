//! Figure 7 variant — the paper's *actual* methodology end to end: measure
//! the basic-operation running times on the host (as the authors measured
//! theirs on a CS-2 node), feed those measured costs into the trace
//! generator, and predict. Host-dependent by design; the deterministic
//! analytic variant lives in `fig7_total_time`.
//!
//! This is also where a *sawtooth* can reappear: host-measured op costs
//! carry real cache-step nonlinearities that the smooth analytic
//! polynomial does not.
//!
//! ```text
//! cargo run -p bench --release --bin fig7_measured_costs
//! ```

use blockops::MeasuredCost;
use commsim::SimConfig;
use loggp::presets;
use predsim_core::report::{secs, Table};
use predsim_core::{simulate_program, Diagonal, Layout, RowCyclic, SimOptions};

fn panel(layout: &dyn Layout, cost: &MeasuredCost, blocks: &[usize]) {
    let procs = layout.procs();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    println!(
        "== {} mapping, n=960, host-measured op costs ==",
        layout.name()
    );
    let mut table = Table::new(["block", "predicted total (s)", "delta vs prev %"]);
    let mut prev: Option<f64> = None;
    let mut best = (0usize, f64::MAX);
    let mut sign_changes = 0usize;
    let mut last_delta = 0.0f64;
    for &b in blocks {
        let trace = gauss::generate(960, b, layout, cost);
        let t = simulate_program(&trace.program, &SimOptions::new(cfg))
            .total
            .as_secs_f64();
        let delta = prev.map(|p| (t / p - 1.0) * 100.0).unwrap_or(0.0);
        if prev.is_some() && last_delta != 0.0 && delta.signum() != last_delta.signum() {
            sign_changes += 1;
        }
        if prev.is_some() {
            last_delta = delta;
        }
        if t < best.1 {
            best = (b, t);
        }
        table.row([
            b.to_string(),
            format!("{t:.4}"),
            if prev.is_some() {
                format!("{delta:+.1}")
            } else {
                "-".into()
            },
        ]);
        prev = Some(t);
    }
    println!("{}", table.render());
    println!(
        "optimal B = {} at {} s; direction changes along the sweep: {} (≥1 indicates non-monotone/sawtooth structure)\n",
        best.0,
        secs(loggp::Time::from_secs(best.1)),
        sign_changes
    );
}

fn main() {
    let blocks = gauss::PAPER_BLOCK_SIZES;
    println!(
        "calibrating the four basic operations at {} block sizes on this host...",
        blocks.len()
    );
    let cost = MeasuredCost::new(5);
    cost.precalibrate(&blocks);
    panel(&Diagonal::new(8), &cost, &blocks);
    panel(&RowCyclic::new(8), &cost, &blocks);
}
