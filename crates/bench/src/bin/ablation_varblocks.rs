//! Extension (§7 future work): variable-sized blocks. Does grading the
//! block widths — small blocks while the trailing submatrix is large and
//! parallelism plentiful, larger blocks as it shrinks (or the reverse) —
//! beat the best uniform block size?
//!
//! ```text
//! cargo run -p bench --release --bin ablation_varblocks
//! ```

use blockops::AnalyticCost;
use commsim::SimConfig;
use gauss::varblock::{generate_var, graded_partition, uniform_partition};
use loggp::{presets, Time};
use predsim_core::report::{secs, Table};
use predsim_core::{simulate_program, Diagonal, SimOptions};

fn main() {
    let n = 960;
    let procs = 8;
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));

    println!("== Variable-sized blocks, n={n}, diagonal layout, P={procs} ==");
    let mut table = Table::new(["partition", "blocks", "predicted (s)"]);

    let mut best_uniform = (0usize, Time::MAX);
    for b in [20usize, 24, 30, 40] {
        let part = uniform_partition(b, n / b);
        let g = generate_var(n, &part, &layout, &cost);
        let t = simulate_program(&g.program, &SimOptions::new(cfg)).total;
        if t < best_uniform.1 {
            best_uniform = (b, t);
        }
        table.row([format!("uniform B={b}"), part.len().to_string(), secs(t)]);
    }

    let candidates: Vec<(String, Vec<usize>)> = vec![
        (
            "graded 12 -> x1.15 (grow)".into(),
            graded_partition(n, 12, 1.15, 12),
        ),
        (
            "graded 16 -> x1.10 (grow)".into(),
            graded_partition(n, 16, 1.10, 16),
        ),
        (
            "graded 48 -> x0.95, floor 20".into(),
            graded_partition(n, 48, 0.95, 20),
        ),
        (
            "graded 64 -> x0.90, floor 24".into(),
            graded_partition(n, 64, 0.90, 24),
        ),
    ];
    let mut best_var = (String::new(), Time::MAX);
    for (name, part) in candidates {
        let g = generate_var(n, &part, &layout, &cost);
        let t = simulate_program(&g.program, &SimOptions::new(cfg)).total;
        if t < best_var.1 {
            best_var = (name.clone(), t);
        }
        table.row([name, part.len().to_string(), secs(t)]);
    }
    println!("{}", table.render());
    println!(
        "best uniform: B={} at {} s; best graded: {} at {} s ({:+.2}% vs uniform)",
        best_uniform.0,
        secs(best_uniform.1),
        best_var.0,
        secs(best_var.1),
        (best_var.1.as_secs_f64() / best_uniform.1.as_secs_f64() - 1.0) * 100.0
    );
}
