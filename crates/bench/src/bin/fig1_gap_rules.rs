//! Figure 1 — the extended gap rule: the minimum separation between the
//! starts of consecutive operations at one processor, for all four
//! send/receive pairings (the paper extends LogGP's same-kind gap to the
//! mixed pairings).
//!
//! ```text
//! cargo run -p bench --release --bin fig1_gap_rules
//! ```

use loggp::{gap, presets, GapRule};
use predsim_core::report::{us, Table};

fn main() {
    let params = presets::meiko_cs2(8);
    println!("== Figure 1: gap between consecutive operations on {params} ==");
    let mut table = Table::new([
        "first op",
        "second op",
        "extended rule (paper)",
        "classic LogGP rule",
    ]);
    let classic = gap::figure1_pairings_ruled(&params, GapRule::SameKindOnly);
    for ((a, b, sep_ext), (_, _, sep_classic)) in
        gap::figure1_pairings(&params).into_iter().zip(classic)
    {
        let tag = |sep: loggp::Time| {
            if sep == params.gap {
                format!("{} (= g)", us(sep))
            } else if sep == params.overhead {
                format!("{} (= o)", us(sep))
            } else {
                us(sep)
            }
        };
        table.row([
            format!("{a:?}"),
            format!("{b:?}"),
            tag(sep_ext),
            tag(sep_classic),
        ]);
    }
    println!("{}", table.render());
    println!(
        "every pairing is separated by max(g, o) = {}; with the CS-2's g > o this is exactly g,\n\
         matching the paper's Figure 1 (gap drawn between all four pairings).",
        us(params.op_separation())
    );
}
