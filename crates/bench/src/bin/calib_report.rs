//! The calibration closed loop on the paper's headline workload:
//! emulate GE 960/32 (diagonal, 8 processors), fit a LogGP preset to
//! the measured runs, and score the fitted preset by the paper's own
//! bracketing criterion on held-out runs — `standard ≤ measured ≤
//! worst-case`.
//!
//! Writes `BENCH_CALIB.json` (strict JSON, integer picoseconds and
//! permille) recording the fitted parameters, the residual RMSE, and
//! the bracket hit rate, and prints the same numbers as a table.
//!
//! ```text
//! cargo run -p bench --release --bin calib_report
//! ```

use loggp::presets;
use predsim_calib::{bracket, calibrate, measure, FitConfig, MeasureConfig};
use predsim_engine::{Engine, EngineConfig, JobSource};
use predsim_lint::json::Value;

const SOURCE: &str = "ge:960,32,diagonal,8";
const RUNS: usize = 10;
const HOLDOUT: usize = 4;

fn main() {
    let source = JobSource::parse_spec(SOURCE)
        .expect("spec parses")
        .expect("spec has a generator prefix");
    let (prog, loads) = source.build_loaded();
    let procs = prog.procs();
    let truth = presets::meiko_cs2(procs);

    println!("== calibration closed loop: {SOURCE} ==");
    println!("emulating {RUNS} runs on the meiko-like emulator...");
    let mcfg = MeasureConfig {
        ecfg: machine::EmulatorConfig::meiko_like(commsim::SimConfig::new(truth)),
        base_seed: 0,
        runs: RUNS,
        faults: None,
    };
    let set = measure(&prog, &loads, SOURCE, "meiko-emulated", &mcfg);

    let engine = Engine::new(EngineConfig::default());
    let mut fcfg = FitConfig::new(truth);
    fcfg.holdout = HOLDOUT;
    println!(
        "fitting from {} training runs ({} held out)...",
        RUNS - HOLDOUT,
        HOLDOUT
    );
    let report = calibrate(&prog, &set, &engine, &fcfg).expect("calibration runs");
    let p = report.params;

    // The same fit scored against the *initial* preset's bracket, to
    // show what calibration bought: the uncalibrated meiko numbers
    // bracket the emulator too (its jitter is centred on meiko), so the
    // interesting deltas are the fit RMSE and the bracket width.
    let holdout_runs = &set.runs[set.runs.len() - HOLDOUT..];
    let initial_bracket = bracket(&prog, truth, holdout_runs, &engine);

    println!();
    println!(
        "fitted (us):   L={} o={} g={} G={}",
        p.latency, p.overhead, p.gap, p.gap_per_byte
    );
    println!(
        "initial (us):  L={} o={} g={} G={}",
        truth.latency, truth.overhead, truth.gap, truth.gap_per_byte
    );
    println!(
        "rmse={}  objective={}  rounds={}  evaluations={} ({} unique)",
        report.rmse, report.objective, report.rounds, report.evaluations, report.unique_evaluations
    );
    println!(
        "bracket (fitted):  {}/{} held-out runs inside [std={}, wc={}]",
        report.bracket.hits,
        report.bracket.total,
        report.bracket.std_total,
        report.bracket.wc_total
    );
    println!(
        "bracket (initial): {}/{} held-out runs inside [std={}, wc={}]",
        initial_bracket.hits,
        initial_bracket.total,
        initial_bracket.std_total,
        initial_bracket.wc_total
    );
    assert!(report.converged, "the closed loop must converge");
    assert!(
        report.bracket.hit_permille() >= 900,
        "fitted preset must bracket >= 90% of held-out runs, got {}",
        report.bracket.hit_permille()
    );

    let int = |t: loggp::Time| Value::Int(t.as_ps() as i64);
    let bracket_obj = |b: &predsim_calib::BracketReport| {
        Value::Object(vec![
            ("hits".into(), Value::Int(b.hits as i64)),
            ("total".into(), Value::Int(b.total as i64)),
            ("hit_permille".into(), Value::Int(b.hit_permille() as i64)),
            ("std_total_ps".into(), int(b.std_total)),
            ("wc_total_ps".into(), int(b.wc_total)),
        ])
    };
    let doc = Value::Object(vec![
        ("version".into(), Value::Int(1)),
        ("source".into(), Value::Str(SOURCE.into())),
        ("emulated_machine".into(), Value::Str("meiko".into())),
        ("runs".into(), Value::Int(RUNS as i64)),
        ("holdout".into(), Value::Int(HOLDOUT as i64)),
        (
            "fitted".into(),
            Value::Object(vec![
                ("latency_ps".into(), int(p.latency)),
                ("overhead_ps".into(), int(p.overhead)),
                ("gap_ps".into(), int(p.gap)),
                ("gap_per_byte_ps".into(), int(p.gap_per_byte)),
                ("procs".into(), Value::Int(p.procs as i64)),
            ]),
        ),
        ("rmse_ps".into(), int(report.rmse)),
        ("objective_ps".into(), int(report.objective)),
        ("converged".into(), Value::Bool(report.converged)),
        ("rounds".into(), Value::Int(report.rounds as i64)),
        ("evaluations".into(), Value::Int(report.evaluations as i64)),
        (
            "unique_evaluations".into(),
            Value::Int(report.unique_evaluations as i64),
        ),
        ("bracket".into(), bracket_obj(&report.bracket)),
        ("bracket_initial".into(), bracket_obj(&initial_bracket)),
    ]);
    std::fs::write("BENCH_CALIB.json", doc.to_pretty() + "\n").expect("write BENCH_CALIB.json");
    println!();
    println!("wrote BENCH_CALIB.json");
}
