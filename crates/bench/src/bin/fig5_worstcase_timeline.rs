//! Figure 5 — the send/receive sequence under the *overestimation*
//! algorithm for the same Figure 3 pattern: every processor consumes all
//! of its receives before sending, so the step stretches well beyond the
//! standard schedule's completion (the paper's upper bound).
//!
//! ```text
//! cargo run -p bench --release --bin fig5_worstcase_timeline
//! ```

use commsim::{gantt, patterns, standard, worstcase, SimConfig};
use loggp::presets;

fn main() {
    let pattern = patterns::figure3();
    let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));
    let wc = worstcase::simulate(&pattern, &cfg);
    let st = standard::simulate(&pattern, &cfg);

    println!("== Figure 5: overestimation algorithm on the Figure 3 pattern ==");
    println!("machine: {}\n", cfg.params);
    print!("{}", gantt::render(&wc.timeline, 100));
    println!(
        "\nstandard completion: {}   worst-case completion: {}   ratio: {:.2}",
        st.finish,
        wc.finish,
        wc.finish.as_us_f64() / st.finish.as_us_f64()
    );
    println!(
        "forced sends (deadlock breaking): {} (pattern is acyclic)",
        wc.forced_sends
    );
    println!(
        "last processor(s): {:?}",
        wc.timeline
            .critical_procs()
            .iter()
            .map(|p| format!("P{p}"))
            .collect::<Vec<_>>()
    );
    println!("\nevent table:\n{}", gantt::event_table(&wc.timeline));
}
