//! In-text claim (§6.3 + §7): the predicted optimal block size, fed back
//! into the real system, yields a running time close to the true optimum —
//! and the search for it can be automated (the paper's future work,
//! implemented in `predsim_core::search`).
//!
//! ```text
//! cargo run -p bench --release --bin claim_optimal_block
//! ```

use bench::ge::{sweep, trace_for, SweepConfig};
use loggp::presets;
use predsim_core::report::secs;
use predsim_core::search::{hill_climb, sweep as search_sweep};
use predsim_core::{simulate_program, Diagonal, Layout, RowCyclic, SimOptions};

fn panel(layout: &dyn Layout, cfg: &SweepConfig) {
    println!("-- {} mapping --", layout.name());
    let rows = sweep(layout, cfg);

    // Ground truth on the emulated machine (with caches).
    let best_real = rows
        .iter()
        .min_by_key(|r| r.meas_cache.prediction.total)
        .expect("rows");
    // Prediction-driven choices.
    let best_pred_std = rows.iter().min_by_key(|r| r.sim_std.total).unwrap();
    let best_pred_wc = rows.iter().min_by_key(|r| r.sim_wc.total).unwrap();

    let real = |b: usize| {
        rows.iter()
            .find(|r| r.b == b)
            .unwrap()
            .meas_cache
            .prediction
            .total
    };
    for (name, pick) in [
        ("standard", best_pred_std.b),
        ("worst-case", best_pred_wc.b),
    ] {
        let t = real(pick);
        println!(
            "predicted optimum ({name}): B={pick}; real time there {} s vs true optimum {} s at B={} ({:+.2}%)",
            secs(t),
            secs(best_real.meas_cache.prediction.total),
            best_real.b,
            (t.as_secs_f64() / best_real.meas_cache.prediction.total.as_secs_f64() - 1.0) * 100.0
        );
    }

    // Automated search (§7 future work): hill-climb over the candidate
    // list, each evaluation being one full program prediction.
    let sim_cfg = commsim::SimConfig::new(presets::meiko_cs2(cfg.procs));
    let mut evals_full = 0usize;
    let full = search_sweep(&cfg.blocks, |b| {
        evals_full += 1;
        simulate_program(
            &trace_for(cfg.n, b, layout).program,
            &SimOptions::new(sim_cfg),
        )
        .total
    });
    let hc = hill_climb(&cfg.blocks, 4, |b| {
        simulate_program(
            &trace_for(cfg.n, b, layout).program,
            &SimOptions::new(sim_cfg),
        )
        .total
    });
    println!(
        "automatic search: exhaustive B={} ({} evals) vs hill-climb B={} ({} evals, {:+.2}% time)\n",
        full.best,
        full.evals(),
        hc.best,
        hc.evals(),
        (hc.best_time.as_secs_f64() / full.best_time.as_secs_f64() - 1.0) * 100.0
    );
}

fn main() {
    println!("== Claim: predicted optima land near the true optimum ==");
    let cfg = SweepConfig::default();
    panel(&Diagonal::new(cfg.procs), &cfg);
    panel(&RowCyclic::new(cfg.procs), &cfg);
}
