//! The restructured communication-simulator hot loop against the
//! straightforward reference encoding it replaced, plus the incremental
//! re-simulation fast path against full re-simulation.
//!
//! Two families of measurements, all in release mode, best-of-rounds:
//!
//! * **hot loop** — whole-program prediction (std + worst-case pair)
//!   through the optimized loops (`DirectStepSimulator`: flat SoA
//!   processor state, arena-backed send queues, indexed min-time
//!   frontier, reused scratch) versus the same fold driven by
//!   `commsim::reference` (per-simulation `Vec<VecDeque>` rebuilds,
//!   O(P) min-scans, per-operation tie allocations). The headline row
//!   is the paper's GE 960/32 diagonal/8 workload; stencil, Cannon and
//!   APSP rows show the same loops on the other program generators.
//!   Both sides produce bit-identical predictions (asserted here; the
//!   proptest suite in `commsim/tests/equiv.rs` pins it exhaustively).
//! * **incremental sweep** — one recorded simulation of the GE program
//!   on the base preset, then further sweep points re-timed from the
//!   recorded commit orders (`predsim_core::replay`). Two populations,
//!   both asserted bit-identical to full simulation:
//!
//!   - *parameter-family points* (uniform L/o/g/G scalings of the base
//!     machine — the calibration/sensitivity-sweep shape): nearly every
//!     comm step re-times (non-integer scalings floor-round, so a few
//!     steps may reorder and fall back), making the point near-free.
//!     This is the asserted `< 25%` metric, measured against what a
//!     standalone sweep point costs (program build + full simulation —
//!     the per-job cost of the batch path that a sweep otherwise pays).
//!   - *machine presets* (paragon/myrinet/ethernet/ideal): reported
//!     per-preset with replayed-step counts but not asserted. Far
//!     presets legitimately reorder most traffic — the steps that
//!     refuse re-timing carry ~93% of the messages — so their cost is
//!     dominated by honest per-step fallback to full simulation.
//!
//! Writes `BENCH_SIM.json` (strict JSON, integer nanoseconds, ratios
//! as x100 integers) and prints the numbers as a table.
//!
//! ```text
//! cargo run -p bench --release --bin bench_sim            # measure + write
//! cargo run -p bench --release --bin bench_sim -- --check # compare vs JSON
//! ```
//!
//! `--check` re-measures and compares the machine-independent *ratios*
//! (speedups, incremental cost fraction) against the recorded baseline,
//! failing on a >20% regression — absolute nanoseconds vary across
//! hosts, the ratios should not.

use predsim_core::{
    record_program, simulate_program, simulate_program_with, SimOptions, StepSimulator,
};
use predsim_engine::JobSource;
use predsim_lint::json::{self, Value};
use std::time::{Duration, Instant};

const ROUNDS: u32 = 7;
const BASELINE: &str = "BENCH_SIM.json";
/// `--check` fails when a ratio regresses by more than this fraction.
const TOLERANCE: f64 = 0.20;

/// The measured workloads: `(json key prefix, source spec, timing iters)`.
const WORKLOADS: [(&str, &str, u32); 4] = [
    ("ge", "ge:960,32,diagonal,8", 8),
    ("stencil", "stencil:512,8,10", 8),
    ("cannon", "cannon:240,4", 8),
    ("apsp", "apsp:240,24,diagonal,8", 4),
];

/// Machine presets swept by the incremental-replay measurement; the first
/// is the recording preset.
const SWEEP_MACHINES: [&str; 5] = ["meiko", "paragon", "myrinet", "ethernet", "ideal"];

/// Best-of-`ROUNDS` mean wall time of `iters` calls.
fn wall(iters: u32, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed() / iters);
    }
    best
}

/// [`wall`] for two sides of a comparison, alternating them within each
/// round so host-load drift lands on both sides rather than whichever
/// happened to be measured second.
fn wall_pair(iters: u32, mut a: impl FnMut(), mut b: impl FnMut()) -> (Duration, Duration) {
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..iters {
            a();
        }
        best_a = best_a.min(t.elapsed() / iters);
        let t = Instant::now();
        for _ in 0..iters {
            b();
        }
        best_b = best_b.min(t.elapsed() / iters);
    }
    (best_a, best_b)
}

/// The pre-PR comm loop as a program backend: the verbatim reference
/// algorithms, exactly what `DirectStepSimulator` called before the
/// restructuring (fresh per-simulation state, O(P) scans).
struct ReferenceStepSimulator;

impl StepSimulator for ReferenceStepSimulator {
    fn simulate_comm(
        &mut self,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[loggp::Time],
    ) -> commsim::SimResult {
        match opts.algo {
            predsim_core::CommAlgo::Standard => {
                commsim::reference::standard_simulate_from(comm, &opts.cfg, ready)
            }
            predsim_core::CommAlgo::WorstCase => {
                commsim::reference::worstcase_simulate_from(comm, &opts.cfg, ready)
            }
        }
    }
}

fn build(spec: &str) -> std::sync::Arc<predsim_core::Program> {
    JobSource::parse_spec(spec)
        .expect("spec parses")
        .expect("spec has a generator prefix")
        .build()
}

fn opts_for(machine: &str, procs: usize, worst_case: bool) -> SimOptions {
    let params = loggp::presets::by_name(machine, procs).expect("known preset");
    let mut opts = SimOptions::new(commsim::SimConfig::new(params));
    if worst_case {
        opts = opts.worst_case();
    }
    opts
}

struct Row {
    prefix: &'static str,
    source: &'static str,
    steps: usize,
    messages: usize,
    new_pair: Duration,
    reference_pair: Duration,
    speedup: f64,
}

fn measure_row(prefix: &'static str, source: &'static str, iters: u32) -> Row {
    let program = build(source);
    let procs = program.procs();
    let std_opts = opts_for("meiko", procs, false);
    let wc_opts = opts_for("meiko", procs, true);
    let messages: usize = program
        .steps()
        .iter()
        .map(|s| s.comm.messages().len())
        .sum();

    // Equivalence: the optimized loops and the reference produce the same
    // prediction, bit for bit.
    for o in [&std_opts, &wc_opts] {
        let new = simulate_program(&program, o);
        let old = simulate_program_with(&program, o, &mut ReferenceStepSimulator);
        assert_eq!(new, old, "{source}: optimized loop diverged from reference");
    }

    let (new_pair, reference_pair) = wall_pair(
        iters,
        || {
            std::hint::black_box(simulate_program(&program, &std_opts));
            std::hint::black_box(simulate_program(&program, &wc_opts));
        },
        || {
            std::hint::black_box(simulate_program_with(
                &program,
                &std_opts,
                &mut ReferenceStepSimulator,
            ));
            std::hint::black_box(simulate_program_with(
                &program,
                &wc_opts,
                &mut ReferenceStepSimulator,
            ));
        },
    );
    Row {
        prefix,
        source,
        steps: program.len(),
        messages,
        new_pair,
        reference_pair,
        speedup: reference_pair.as_nanos() as f64 / new_pair.as_nanos() as f64,
    }
}

/// One machine-preset sweep point, reported transparently (no assert on
/// its cost: far presets reorder traffic and fall back per step).
struct PresetPoint {
    name: &'static str,
    predict: Duration,
    full: Duration,
    replayed: usize,
    total: usize,
}

struct Sweep {
    /// Asserted metric: average cost of a parameter-family (uniform
    /// L/o/g/G scaling) incremental point.
    incremental_point: Duration,
    /// What a standalone sweep point costs: program build + full
    /// simulation — the per-job cost of the batch path.
    full_point: Duration,
    build_point: Duration,
    sim_point: Duration,
    fraction: f64,
    family_points: usize,
    family_replayed: usize,
    family_total: usize,
    /// Transparency rows: the machine-preset points.
    presets: Vec<PresetPoint>,
    /// Worst-case re-timing is order-independent: every preset replays.
    wc_point: Duration,
    wc_sim_point: Duration,
}

/// Uniform scaling of every LogGP time parameter by `num/den` — the
/// shape of a calibration or sensitivity-sweep point ("only L/o/g/G
/// change").
fn scaled(p: loggp::LogGpParams, num: u64, den: u64) -> loggp::LogGpParams {
    let s = |t: loggp::Time| loggp::Time::from_ps(t.as_ps() * num / den);
    loggp::LogGpParams {
        latency: s(p.latency),
        overhead: s(p.overhead),
        gap: s(p.gap),
        gap_per_byte: s(p.gap_per_byte),
        procs: p.procs,
    }
}

/// The GE incremental sweep: parameter-family points (asserted), machine
/// presets and the worst-case algorithm (reported).
fn measure_sweep() -> Sweep {
    let spec = WORKLOADS[0].1;
    let program = build(spec);
    let procs = program.procs();
    let base = opts_for(SWEEP_MACHINES[0], procs, false);
    let (_, recording) = record_program(&program, &base);

    // Parameter-family sweep points: uniform scalings of the base machine.
    let family: Vec<SimOptions> = [(1u64, 2u64), (9, 10), (11, 10), (2, 1)]
        .iter()
        .map(|&(num, den)| {
            let mut o = base;
            o.cfg.params = scaled(base.cfg.params, num, den);
            o
        })
        .collect();
    let mut family_replayed = 0usize;
    let mut family_total = 0usize;
    for o in &family {
        let (pred, stats) = recording.predict(&program, o);
        assert_eq!(
            pred,
            simulate_program(&program, o),
            "incremental sweep point diverged from full simulation"
        );
        family_replayed += stats.replayed;
        family_total += stats.replayed + stats.resimulated;
    }
    // The standalone sweep point the replay path replaces: build the
    // program from its spec and simulate it in full, interleaved with the
    // incremental side so host drift hits both.
    let source = JobSource::parse_spec(spec).unwrap().unwrap();
    let (incremental_total, full_point) = wall_pair(
        4,
        || {
            for o in &family {
                std::hint::black_box(recording.predict(&program, o));
            }
        },
        || {
            let built = std::hint::black_box(source.build());
            std::hint::black_box(simulate_program(&built, &base));
        },
    );
    let incremental_point = incremental_total / family.len() as u32;
    // The standalone point's build/simulate split, for the record.
    let build_point = wall(4, || {
        std::hint::black_box(source.build());
    });
    let sim_point = wall(4, || {
        std::hint::black_box(simulate_program(&program, &base));
    });

    // Machine presets: predict vs full per preset, replay counts shown.
    let presets: Vec<PresetPoint> = SWEEP_MACHINES[1..]
        .iter()
        .map(|&name| {
            let o = opts_for(name, procs, false);
            let (pred, stats) = recording.predict(&program, &o);
            assert_eq!(
                pred,
                simulate_program(&program, &o),
                "incremental sweep point diverged from full simulation"
            );
            let (predict, full) = wall_pair(
                4,
                || {
                    std::hint::black_box(recording.predict(&program, &o));
                },
                || {
                    std::hint::black_box(simulate_program(&program, &o));
                },
            );
            PresetPoint {
                name,
                predict,
                full,
                replayed: stats.replayed,
                total: stats.replayed + stats.resimulated,
            }
        })
        .collect();

    // Worst-case algorithm: its re-timing is order-independent, so every
    // preset replays in full.
    let wc_base = opts_for(SWEEP_MACHINES[0], procs, true);
    let (_, wc_recording) = record_program(&program, &wc_base);
    let wc_rest: Vec<SimOptions> = SWEEP_MACHINES[1..]
        .iter()
        .map(|m| opts_for(m, procs, true))
        .collect();
    for o in &wc_rest {
        let (pred, stats) = wc_recording.predict(&program, o);
        assert_eq!(
            pred,
            simulate_program(&program, o),
            "wc sweep point diverged"
        );
        assert_eq!(stats.resimulated, 0, "wc re-timing should be unconditional");
    }
    let (wc_total, wc_sim_total) = wall_pair(
        4,
        || {
            for o in &wc_rest {
                std::hint::black_box(wc_recording.predict(&program, o));
            }
        },
        || {
            for o in &wc_rest {
                std::hint::black_box(simulate_program(&program, o));
            }
        },
    );
    let wc_point = wc_total / wc_rest.len() as u32;
    let wc_sim_point = wc_sim_total / wc_rest.len() as u32;

    Sweep {
        incremental_point,
        full_point,
        build_point,
        sim_point,
        fraction: incremental_point.as_nanos() as f64 / full_point.as_nanos() as f64,
        family_points: family.len(),
        family_replayed,
        family_total,
        presets,
        wc_point,
        wc_sim_point,
    }
}

fn check(rows: &[Row], sweep: &Sweep) -> Result<(), String> {
    let text = std::fs::read_to_string(BASELINE)
        .map_err(|e| format!("--check needs a recorded {BASELINE}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{BASELINE}: {e}"))?;
    let ratio = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Value::as_int)
            .map(|x| x as f64 / 100.0)
            .ok_or_else(|| format!("{BASELINE}: missing integer '{key}'"))
    };
    let mut failures = Vec::new();
    for row in rows {
        let recorded = ratio(&format!("{}_speedup_x100", row.prefix))?;
        // Lower speedup than recorded = the optimized loop regressed.
        if row.speedup < recorded * (1.0 - TOLERANCE) {
            failures.push(format!(
                "{}: speedup {:.2}x is >{:.0}% below the recorded {:.2}x",
                row.source,
                row.speedup,
                TOLERANCE * 100.0,
                recorded
            ));
        }
    }
    let recorded = ratio("ge_incremental_fraction_x100")?;
    // A *larger* fraction of the full cost = the replay path regressed.
    if sweep.fraction > recorded * (1.0 + TOLERANCE) {
        failures.push(format!(
            "incremental sweep point costs {:.0}% of a full simulation, >{:.0}% above the \
             recorded {:.0}%",
            sweep.fraction * 100.0,
            TOLERANCE * 100.0,
            recorded * 100.0
        ));
    }
    if failures.is_empty() {
        println!(
            "check passed: all ratios within {:.0}% of {BASELINE}",
            TOLERANCE * 100.0
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let check_mode = std::env::args().any(|a| a == "--check");

    println!("== comm-simulator hot loop vs reference (std+wc pair, meiko) ==");
    let rows: Vec<Row> = WORKLOADS
        .iter()
        .map(|&(prefix, source, iters)| {
            let row = measure_row(prefix, source, iters);
            println!(
                "{:>28}: new {:>10.2?}  reference {:>10.2?}  ({:.2}x)",
                row.source, row.new_pair, row.reference_pair, row.speedup
            );
            row
        })
        .collect();

    println!();
    println!(
        "== incremental GE sweep (recorded on {}) ==",
        SWEEP_MACHINES[0]
    );
    let sweep = measure_sweep();
    println!(
        "parameter-family point: {:.2?} ({} points, {}/{} steps re-timed) vs standalone \
         point {:.2?} (build {:.2?} + simulate {:.2?}) = {:.0}% of full cost",
        sweep.incremental_point,
        sweep.family_points,
        sweep.family_replayed,
        sweep.family_total,
        sweep.full_point,
        sweep.build_point,
        sweep.sim_point,
        sweep.fraction * 100.0
    );
    for p in &sweep.presets {
        println!(
            "{:>28}: predict {:>10.2?}  full sim {:>10.2?}  ({}/{} steps re-timed)",
            p.name, p.predict, p.full, p.replayed, p.total
        );
    }
    println!(
        "{:>28}: predict {:>10.2?}  full sim {:>10.2?}  (all steps re-timed)",
        "worst-case (all presets)", sweep.wc_point, sweep.wc_sim_point
    );

    if check_mode {
        if let Err(e) = check(&rows, &sweep) {
            eprintln!("bench_sim --check failed:\n{e}");
            std::process::exit(1);
        }
        return;
    }

    // Honesty floors on the freshly recorded baseline: the restructured
    // loop must clearly beat the reference on the headline pair, and an
    // incremental sweep point must cost a fraction of a full simulation.
    let headline = &rows[0];
    assert!(
        headline.speedup >= 2.0,
        "headline GE pair should be at least 2x the reference loop, got {:.2}x",
        headline.speedup
    );
    assert!(
        sweep.fraction < 0.25,
        "incremental sweep point should cost <25% of a full simulation, got {:.0}%",
        sweep.fraction * 100.0
    );
    // Non-integer scalings floor-round each parameter, so a handful of
    // steps can legitimately reorder and fall back; the family should
    // still re-time the overwhelming majority.
    assert!(
        sweep.family_replayed * 4 >= sweep.family_total * 3,
        "parameter-family points should re-time most comm steps, got {}/{}",
        sweep.family_replayed,
        sweep.family_total
    );

    let ns = |d: Duration| Value::Int(d.as_nanos().min(i64::MAX as u128) as i64);
    let x100 = |r: f64| Value::Int((r * 100.0) as i64);
    let mut fields = vec![
        ("version".into(), Value::Int(1)),
        ("machine".into(), Value::Str(SWEEP_MACHINES[0].into())),
    ];
    for row in &rows {
        let p = row.prefix;
        fields.push((format!("{p}_source"), Value::Str(row.source.into())));
        fields.push((format!("{p}_steps"), Value::Int(row.steps as i64)));
        fields.push((format!("{p}_messages"), Value::Int(row.messages as i64)));
        fields.push((format!("{p}_new_pair_ns"), ns(row.new_pair)));
        fields.push((format!("{p}_reference_pair_ns"), ns(row.reference_pair)));
        fields.push((format!("{p}_speedup_x100"), x100(row.speedup)));
    }
    fields.push((
        "sweep_machines".into(),
        Value::Str(SWEEP_MACHINES.join(",")),
    ));
    fields.push((
        "ge_family_points".into(),
        Value::Int(sweep.family_points as i64),
    ));
    fields.push((
        "ge_family_replayed_steps".into(),
        Value::Int(sweep.family_replayed as i64),
    ));
    fields.push((
        "ge_family_total_steps".into(),
        Value::Int(sweep.family_total as i64),
    ));
    fields.push((
        "ge_incremental_point_ns".into(),
        ns(sweep.incremental_point),
    ));
    fields.push(("ge_full_point_ns".into(), ns(sweep.full_point)));
    fields.push(("ge_point_build_ns".into(), ns(sweep.build_point)));
    fields.push(("ge_point_sim_ns".into(), ns(sweep.sim_point)));
    fields.push(("ge_incremental_fraction_x100".into(), x100(sweep.fraction)));
    for p in &sweep.presets {
        fields.push((format!("ge_preset_{}_predict_ns", p.name), ns(p.predict)));
        fields.push((format!("ge_preset_{}_full_ns", p.name), ns(p.full)));
        fields.push((
            format!("ge_preset_{}_replayed_steps", p.name),
            Value::Int(p.replayed as i64),
        ));
        fields.push((
            format!("ge_preset_{}_total_steps", p.name),
            Value::Int(p.total as i64),
        ));
    }
    fields.push(("ge_wc_incremental_point_ns".into(), ns(sweep.wc_point)));
    fields.push(("ge_wc_full_point_ns".into(), ns(sweep.wc_sim_point)));
    let doc = Value::Object(fields);
    std::fs::write(BASELINE, doc.to_pretty() + "\n").expect("write BENCH_SIM.json");
    println!();
    println!("wrote {BASELINE}");
}
