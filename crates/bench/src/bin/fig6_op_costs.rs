//! Figure 6 — running time of the four basic block operations vs. block
//! size: nonlinear curves whose order *flips* (Op1 dearest for small
//! blocks, the multiply-update dearest for large ones).
//!
//! Two tables are printed: the deterministic analytic model used by the
//! predictions, and real host measurements of the Rust implementations
//! (the paper's own methodology — absolute values are host-specific, the
//! crossing shape is what matters).
//!
//! ```text
//! cargo run -p bench --release --bin fig6_op_costs
//! ```

use blockops::{AnalyticCost, CostModel, MeasuredCost, OpClass};
use predsim_core::report::{us, Table};

fn print_model(name: &str, model: &dyn CostModel, blocks: &[usize]) {
    println!("== Figure 6 ({name}): basic-operation running time (us) ==");
    let mut table = Table::new(["block", "Op1", "Op2", "Op3", "Op4", "most expensive"]);
    for &b in blocks {
        let costs: Vec<_> = OpClass::ALL
            .iter()
            .map(|&op| model.op_cost(op, b))
            .collect();
        let dearest = OpClass::ALL
            .iter()
            .zip(&costs)
            .max_by_key(|(_, c)| **c)
            .map(|(op, _)| op.name())
            .unwrap();
        table.row([
            b.to_string(),
            us(costs[0]),
            us(costs[1]),
            us(costs[2]),
            us(costs[3]),
            dearest.into(),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let blocks = gauss::PAPER_BLOCK_SIZES;
    print_model("analytic", &AnalyticCost::paper_default(), &blocks);

    let measured = MeasuredCost::new(5);
    measured.precalibrate(&blocks);
    print_model("measured on this host", &measured, &blocks);

    println!(
        "paper's observations to check: Op1 dominates small blocks; the curves cross; the\n\
         multiply-update costs ~2x Op1 at the largest block sizes."
    );
}
