//! Ablation — cache-model geometry: how the emulated "measured w. caching"
//! series responds to cache size, miss penalty and a second level. The
//! paper's future-work point is that a cache model must join the
//! simulation; this ablation shows which cache parameters actually move
//! the predictions.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_cache
//! ```

use bench::ge::trace_for;
use commsim::SimConfig;
use loggp::{presets, Time};
use machine::{emulate, CacheConfig, EmulatorConfig};
use predsim_core::report::{secs, Table};
use predsim_core::Diagonal;

fn main() {
    let procs = 8;
    let layout = Diagonal::new(procs);
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    println!("== Cache-model sensitivity (diagonal mapping, n=960) ==");

    let variants: Vec<(&str, EmulatorConfig)> = vec![
        (
            "no cache model",
            EmulatorConfig::meiko_like(cfg).without_cache(),
        ),
        ("L1 128K/500ns (default)", EmulatorConfig::meiko_like(cfg)),
        ("L1 32K/500ns", {
            let mut e = EmulatorConfig::meiko_like(cfg);
            e.cache = Some(CacheConfig {
                size_bytes: 32 * 1024,
                ..CacheConfig::workstation()
            });
            e
        }),
        ("L1 512K/500ns", {
            let mut e = EmulatorConfig::meiko_like(cfg);
            e.cache = Some(CacheConfig {
                size_bytes: 512 * 1024,
                ..CacheConfig::workstation()
            });
            e
        }),
        ("L1 128K/1500ns", {
            let mut e = EmulatorConfig::meiko_like(cfg);
            e.cache = Some(CacheConfig {
                miss_penalty: Time::from_ns(1500),
                ..CacheConfig::workstation()
            });
            e
        }),
        (
            "L1 128K + L2 1M/1500ns",
            EmulatorConfig::meiko_like(cfg).with_l2(1024 * 1024, Time::from_ns(1500)),
        ),
    ];

    let blocks = [10usize, 24, 60, 160];
    let mut header = vec!["cache model".to_string()];
    header.extend(blocks.iter().map(|b| format!("B={b} (s)")));
    let mut table = Table::new(header);
    for (name, ecfg) in &variants {
        let mut row = vec![name.to_string()];
        for &b in &blocks {
            let trace = trace_for(960, b, &layout);
            let m = emulate(&trace.program, &trace.loads, ecfg);
            row.push(secs(m.prediction.total));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "small blocks are the cache-sensitive regime (the paper's observation); an L2 that\n\
         holds the per-wave working set pulls the small-block series back toward the\n\
         cacheless one."
    );
}
