//! Ablation — the paper's §3 modelling choice: extend the gap `g` to all
//! four send/receive pairings (Figure 1) versus classic LogGP's
//! same-kind-only gaps. How much does the extension change predictions?
//!
//! ```text
//! cargo run -p bench --release --bin ablation_gap_rule
//! ```

use bench::ge::trace_for;
use commsim::{patterns, standard, SimConfig};
use loggp::presets;
use predsim_core::report::{secs, us, Table};
use predsim_core::{simulate_program, Diagonal, SimOptions};

fn main() {
    println!("== Ablation: extended vs same-kind-only gap rule ==");

    println!("-- single communication steps (standard algorithm, us) --");
    let mut table = Table::new(["pattern", "extended (paper)", "classic", "extension adds %"]);
    let cases: Vec<(&str, commsim::CommPattern)> = vec![
        ("figure3", patterns::figure3()),
        ("gather(8->0, 1KB)", patterns::gather(8, 0, 1024)),
        ("all-to-all(8, 1KB)", patterns::all_to_all(8, 1024)),
        ("random(10, 40 msgs)", patterns::random(10, 40, 2048, 5)),
    ];
    for (name, pattern) in cases {
        let ext = SimConfig::new(presets::meiko_cs2(pattern.procs()));
        let classic = ext.with_classic_gap_rule();
        let te = standard::simulate(&pattern, &ext).finish;
        let tc = standard::simulate(&pattern, &classic).finish;
        table.row([
            name.to_string(),
            us(te),
            us(tc),
            format!("{:+.1}", (te.as_us_f64() / tc.as_us_f64() - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());

    println!("-- whole-program GE (diagonal, n=960, P=8, seconds) --");
    let layout = Diagonal::new(8);
    let mut table = Table::new(["block", "extended (paper)", "classic", "extension adds %"]);
    for b in [10usize, 24, 60, 160] {
        let trace = trace_for(960, b, &layout);
        let ext = SimConfig::new(presets::meiko_cs2(8));
        let te = simulate_program(&trace.program, &SimOptions::new(ext)).total;
        let tc = simulate_program(
            &trace.program,
            &SimOptions::new(ext.with_classic_gap_rule()),
        )
        .total;
        table.row([
            b.to_string(),
            secs(te),
            secs(tc),
            format!(
                "{:+.2}",
                (te.as_secs_f64() / tc.as_secs_f64() - 1.0) * 100.0
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the extension matters where one processor alternates sends and receives\n\
         back-to-back (fan-in/fan-out waves at small blocks); it is free when phases\n\
         are kind-homogeneous."
    );
}
