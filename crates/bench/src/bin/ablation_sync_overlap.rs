//! Ablation — step synchronization and the overlap extension.
//!
//! The paper's program class alternates computation and communication
//! without overlap, with each processor proceeding at its own pace
//! (systolic). This ablation quantifies (a) what a BSP-style barrier
//! between steps would cost, and (b) what the §7 future-work overlap of
//! communication and computation would buy.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_sync_overlap
//! ```

use bench::ge::trace_for;
use commsim::SimConfig;
use loggp::presets;
use predsim_core::report::{secs, Table};
use predsim_core::{simulate_program, Diagonal, SimOptions};

fn main() {
    println!("== Ablation: synchronization & overlap (diagonal mapping, n=960, P=8) ==");
    let cfg = SimConfig::new(presets::meiko_cs2(8));
    let layout = Diagonal::new(8);
    let mut table = Table::new([
        "block",
        "per-processor (paper)",
        "BSP barrier",
        "overlap (recv-only)",
        "barrier cost %",
        "overlap gain %",
    ]);
    for b in [10, 24, 48, 96, 160] {
        let trace = trace_for(960, b, &layout);
        let base = simulate_program(&trace.program, &SimOptions::new(cfg));
        let barrier = simulate_program(&trace.program, &SimOptions::new(cfg).with_barrier());
        let overlap = simulate_program(&trace.program, &SimOptions::new(cfg).with_overlap());
        table.row([
            b.to_string(),
            secs(base.total),
            secs(barrier.total),
            secs(overlap.total),
            format!(
                "{:+.2}",
                (barrier.total.as_secs_f64() / base.total.as_secs_f64() - 1.0) * 100.0
            ),
            format!(
                "{:+.2}",
                (overlap.total.as_secs_f64() / base.total.as_secs_f64() - 1.0) * 100.0
            ),
        ]);
    }
    println!("{}", table.render());
}
