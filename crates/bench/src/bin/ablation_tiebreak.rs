//! Ablation — the paper breaks min-`ctime` ties *randomly*; this repo
//! defaults to lowest-processor-id for reproducibility. How much does the
//! choice matter?
//!
//! ```text
//! cargo run -p bench --release --bin ablation_tiebreak
//! ```

use commsim::{patterns, standard, SimConfig};
use loggp::{presets, Time};
use predsim_core::report::{us, Table};

fn main() {
    println!("== Ablation: tie-breaking policy in the standard algorithm ==");
    let mut table = Table::new([
        "pattern",
        "lowest-id",
        "random min",
        "random max",
        "spread %",
    ]);
    let cases: Vec<(&str, commsim::CommPattern)> = vec![
        ("figure3", patterns::figure3()),
        ("all-to-all(8, 1KB)", patterns::all_to_all(8, 1024)),
        ("gather(8->0, 4KB)", patterns::gather(8, 0, 4096)),
        ("random(8, 40 msgs)", patterns::random(8, 40, 2048, 7)),
        ("binomial bcast(16)", patterns::binomial_broadcast(16, 512)),
    ];
    for (name, pattern) in cases {
        let base = SimConfig::new(presets::meiko_cs2(pattern.procs()));
        let fixed = standard::simulate(&pattern, &base).finish;
        let mut lo = Time::MAX;
        let mut hi = Time::ZERO;
        for seed in 0..32 {
            let f = standard::simulate(&pattern, &base.with_random_ties(seed)).finish;
            lo = lo.min(f);
            hi = hi.max(f);
        }
        table.row([
            name.to_string(),
            us(fixed),
            us(lo),
            us(hi),
            format!("{:.2}", (hi.as_us_f64() / lo.as_us_f64() - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("small spreads justify the deterministic default; the paper's random policy is\navailable via SimConfig::with_random_ties(seed).");
}
