//! Figure 8 — communication time vs. block size for both layouts.
//!
//! The paper's claim: the measured communication time falls **between**
//! the standard and worst-case predictions (the predictions bracket
//! reality); the pure-LogGP predictions sit below measurements because
//! they ignore local transfers.
//!
//! ```text
//! cargo run -p bench --release --bin fig8_comm_time
//! ```

use bench::ge::{sweep, SweepConfig};
use loggp::Time;
use predsim_core::report::{secs, Table};
use predsim_core::{Diagonal, Layout, RowCyclic};

fn panel(layout: &dyn Layout, cfg: &SweepConfig) {
    println!(
        "== Figure 8 ({} mapping): communication time (s) ==",
        layout.name()
    );
    let rows = sweep(layout, cfg);
    let mut table = Table::new([
        "block",
        "measured",
        "simulated standard",
        "simulated worst case",
        "bracketed?",
    ]);
    let mut bracketed = 0usize;
    for r in &rows {
        let [meas, std, wc] = r.fig8();
        let ok = std <= meas && meas <= wc.max(meas); // upper bound may clip
        let strict = std <= meas && meas <= wc;
        if strict {
            bracketed += 1;
        }
        let _ = ok;
        table.row([
            r.b.to_string(),
            secs(meas),
            secs(std),
            secs(wc),
            if strict {
                "yes".into()
            } else {
                "above worst-case".to_string()
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "bracketed rows: {bracketed}/{}   (total measured comm at B=10: {} s)\n",
        rows.len(),
        secs(rows.first().map(|r| r.fig8()[0]).unwrap_or(Time::ZERO))
    );
}

fn main() {
    let cfg = SweepConfig::default();
    panel(&Diagonal::new(cfg.procs), &cfg);
    panel(&RowCyclic::new(cfg.procs), &cfg);
}
