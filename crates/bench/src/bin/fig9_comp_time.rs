//! Figure 9 — computation time vs. block size for both layouts.
//!
//! The paper's claim: predicted computation times are very close to the
//! measured ones, with the measurement slightly higher at small block
//! sizes because of the per-block iteration overhead the simple
//! simulation ignores.
//!
//! ```text
//! cargo run -p bench --release --bin fig9_comp_time
//! ```

use bench::ge::{sweep, SweepConfig};
use predsim_core::report::{secs, Table};
use predsim_core::{Diagonal, Layout, RowCyclic};

fn panel(layout: &dyn Layout, cfg: &SweepConfig) {
    println!(
        "== Figure 9 ({} mapping): computation time (s) ==",
        layout.name()
    );
    let rows = sweep(layout, cfg);
    let mut table = Table::new(["block", "measured", "simulated", "measured/simulated"]);
    for r in &rows {
        let [meas, sim] = r.fig9();
        table.row([
            r.b.to_string(),
            secs(meas),
            secs(sim),
            format!("{:.3}", meas.as_secs_f64() / sim.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    let small = rows.first().unwrap();
    let large = rows.last().unwrap();
    let ratio = |r: &bench::ge::GeRow| {
        let [m, s] = r.fig9();
        m.as_secs_f64() / s.as_secs_f64()
    };
    println!(
        "iteration-overhead gap: {:.1}% at B={} vs {:.1}% at B={} (paper: larger for small blocks)\n",
        (ratio(small) - 1.0) * 100.0,
        small.b,
        (ratio(large) - 1.0) * 100.0,
        large.b
    );
}

fn main() {
    let cfg = SweepConfig::default();
    panel(&Diagonal::new(cfg.procs), &cfg);
    panel(&RowCyclic::new(cfg.procs), &cfg);
}
