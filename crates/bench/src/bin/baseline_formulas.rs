//! Baseline — explicit LogGP formulas for regular patterns (the prior-work
//! approach the paper replaces) checked against the simulator, plus the
//! *irregular* patterns where no such formula exists and the simulation is
//! the only option — the paper's core argument made quantitative.
//!
//! ```text
//! cargo run -p bench --release --bin baseline_formulas
//! ```

use commsim::formulas;
use commsim::{patterns, standard, stats, SimConfig};
use loggp::presets;
use predsim_core::report::{us, Table};

fn main() {
    let params = presets::meiko_cs2(16);
    println!("== Regular patterns: explicit formulas vs simulation ({params}) ==");
    let mut table = Table::new(["pattern", "formula (us)", "simulated (us)", "match"]);
    let cases: Vec<(String, loggp::Time, commsim::CommPattern)> = vec![
        (
            "point-to-point 1100B".into(),
            formulas::point_to_point(&params, 1100),
            {
                let mut p = commsim::CommPattern::new(2);
                p.add(0, 1, 1100);
                p
            },
        ),
        (
            "linear broadcast p=16, 64B".into(),
            formulas::linear_broadcast(&params, 16, 64),
            patterns::linear_broadcast(16, 0, 64),
        ),
        (
            "gather p=16, 4KB".into(),
            formulas::gather(&params, 16, 4096),
            patterns::gather(16, 0, 4096),
        ),
        (
            "shift p=16, 2KB".into(),
            formulas::shift(&params, 2048),
            patterns::shift(16, 1, 2048),
        ),
    ];
    for (name, formula, pattern) in cases {
        let sim = formulas::simulated(&params, &pattern);
        table.row([
            name,
            us(formula),
            us(sim),
            if formula == sim {
                "exact".into()
            } else {
                "DIFFERS".to_string()
            },
        ]);
    }
    println!("{}", table.render());

    println!("== Irregular patterns: no closed form; simulation vs crude lower bound ==");
    let mut table = Table::new(["pattern", "lower bound (us)", "simulated (us)", "slack %"]);
    for (name, pattern) in [
        ("figure3 (GE wave)", patterns::figure3()),
        ("random(12, 40 msgs)", patterns::random(12, 40, 4096, 3)),
        ("random dag(12, 40)", patterns::random_dag(12, 40, 4096, 4)),
        ("all-to-all(12, 1KB)", patterns::all_to_all(12, 1024)),
    ] {
        let lb = formulas::lower_bound(&params, &pattern);
        let sim = formulas::simulated(&params, &pattern);
        table.row([
            name.to_string(),
            us(lb),
            us(sim),
            format!("{:+.1}", (sim.as_us_f64() / lb.as_us_f64() - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("the slack between bound and simulation is queueing/contention no formula captures;");

    // Show the queueing decomposition the simulator provides for one case.
    let pattern = patterns::figure3();
    let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));
    let run = standard::simulate(&pattern, &cfg);
    let st = stats::analyze(&pattern, &cfg, &run.timeline);
    println!(
        "figure3 decomposition: completion {}, total queueing {}, max queueing {}, mean port utilization {:.0}%",
        st.completion,
        st.total_queueing(),
        st.max_queueing(),
        st.mean_utilization() * 100.0
    );
}
