//! The static cost-interval interpreter against the simulators it
//! brackets, on the paper's headline workload (GE 960/32, diagonal
//! layout, 8 processors, Meiko CS-2 parameters).
//!
//! Three comparisons, all memo-cold:
//!
//! * **interpreter vs bracket** — one `analyze` pass against the
//!   standard + worst-case simulation pair it replaces (a bracket needs
//!   both runs), on a pre-built program;
//! * **estimate vs engine** — `static_bounds` (program build included)
//!   against a fresh engine running the same std/wc pair through its
//!   full path (lint gate, build, simulate);
//! * **soundness spot check** — the interval must bracket both
//!   simulated totals, same as the proptest suite asserts.
//!
//! Both the interpreter and the simulators are linear in the message
//! count, so the speedup is a constant factor, not an asymptotic one:
//! the interpreter wins by skipping the event-driven machinery (~40ns
//! vs ~290ns per message here), not by visiting fewer messages. The
//! measured ratios land around an order of magnitude, far from the
//! hundredfold a per-message-free estimate would give — recorded
//! honestly below rather than asserted away.
//!
//! Writes `BENCH_ANALYZE.json` (strict JSON, integer nanoseconds and
//! picosecond totals) and prints the same numbers as a table.
//!
//! ```text
//! cargo run -p bench --release --bin estimate_vs_simulate
//! ```

use predsim_engine::{Engine, EngineConfig, JobSource, JobSpec};
use predsim_lint::json::Value;
use predsim_lint::{analyze, BoundsConfig, ProgramView};
use std::time::{Duration, Instant};

const SOURCE: &str = "ge:960,32,diagonal,8";
const MACHINE: &str = "meiko";
const ROUNDS: u32 = 5;
const ITERS: u32 = 20;

/// Best-of-`ROUNDS` mean wall time of `ITERS` calls.
fn wall(mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        best = best.min(t.elapsed() / ITERS);
    }
    best
}

fn spec(worst_case: bool) -> JobSpec {
    let source = JobSource::parse_spec(SOURCE)
        .expect("spec parses")
        .expect("spec has a generator prefix");
    let params = loggp::presets::meiko_cs2(8);
    let mut opts = predsim_core::SimOptions::new(commsim::SimConfig::new(params));
    if worst_case {
        opts = opts.worst_case();
    }
    JobSpec::new(format!("{SOURCE} wc={worst_case}"), source, opts)
}

fn main() {
    let std_spec = spec(false);
    let program = std_spec.source.build();
    let msgs: usize = program
        .steps()
        .iter()
        .map(|s| s.comm.messages().len())
        .sum();
    let params = std_spec.opts.cfg.params;
    let cfg = BoundsConfig::new(params);
    let view = ProgramView::of(&program);

    println!("== static estimate vs simulation: {SOURCE} on {MACHINE} ==");
    println!("{} steps, {msgs} messages", program.len());

    // Soundness first: the interval must bracket both simulated totals.
    let bounds = analyze(&view, &cfg).expect("generator program analyzes");
    let std_run = predsim_core::simulate_program(&program, &std_spec.opts);
    let wc_run = predsim_core::simulate_program(&program, &spec(true).opts);
    assert!(
        bounds.lo <= std_run.total && std_run.total <= bounds.hi,
        "floor must hold: lo={} std={} hi={}",
        bounds.lo,
        std_run.total,
        bounds.hi
    );
    assert!(
        bounds.lo <= wc_run.total && wc_run.total <= bounds.hi,
        "ceiling must hold: lo={} wc={} hi={}",
        bounds.lo,
        wc_run.total,
        bounds.hi
    );
    println!(
        "bracket: [{}, {}] contains std={} and wc={}",
        bounds.lo, bounds.hi, std_run.total, wc_run.total
    );

    let t_build = wall(|| {
        std::hint::black_box(std_spec.source.build());
    });
    let t_analyze = wall(|| {
        std::hint::black_box(analyze(&view, &cfg));
    });
    let wc_opts = spec(true).opts;
    let t_sim_pair = wall(|| {
        std::hint::black_box(predsim_core::simulate_program(&program, &std_spec.opts));
        std::hint::black_box(predsim_core::simulate_program(&program, &wc_opts));
    });
    let t_estimate = wall(|| {
        std::hint::black_box(predsim_engine::static_bounds(&spec(false)));
    });
    let t_engine_pair = wall(|| {
        let engine = Engine::new(EngineConfig::default().with_jobs(1));
        std::hint::black_box(engine.run(&[spec(false), spec(true)]));
    });

    let ratio = |num: Duration, den: Duration| num.as_nanos() as f64 / den.as_nanos() as f64;
    let interp_speedup = ratio(t_sim_pair, t_analyze);
    let engine_speedup = ratio(t_engine_pair, t_estimate);

    println!();
    println!("program build:           {t_build:>12.2?}");
    println!("interpreter (analyze):   {t_analyze:>12.2?}");
    println!("simulate std+wc:         {t_sim_pair:>12.2?}   ({interp_speedup:.1}x interpreter)");
    println!("estimate (build+analyze):{t_estimate:>12.2?}");
    println!("engine cold std+wc:      {t_engine_pair:>12.2?}   ({engine_speedup:.1}x estimate)");

    // The interpreter must beat the simulation pair it substitutes for —
    // a loose floor so scheduler noise cannot flake the run; the real
    // measured ratio is what lands in the JSON.
    assert!(
        interp_speedup >= 2.0,
        "interpreter should be at least 2x faster than the std+wc pair, got {interp_speedup:.1}x"
    );

    let ns = |d: Duration| Value::Int(d.as_nanos().min(i64::MAX as u128) as i64);
    let ps = |t: loggp::Time| Value::Int(t.as_ps().min(i64::MAX as u64) as i64);
    let doc = Value::Object(vec![
        ("version".into(), Value::Int(1)),
        ("source".into(), Value::Str(SOURCE.into())),
        ("machine".into(), Value::Str(MACHINE.into())),
        ("steps".into(), Value::Int(program.len() as i64)),
        ("messages".into(), Value::Int(msgs as i64)),
        ("static_lo_ps".into(), ps(bounds.lo)),
        ("static_hi_ps".into(), ps(bounds.hi)),
        ("simulated_std_ps".into(), ps(std_run.total)),
        ("simulated_wc_ps".into(), ps(wc_run.total)),
        ("build_ns".into(), ns(t_build)),
        ("analyze_ns".into(), ns(t_analyze)),
        ("simulate_pair_ns".into(), ns(t_sim_pair)),
        ("estimate_ns".into(), ns(t_estimate)),
        ("engine_pair_ns".into(), ns(t_engine_pair)),
        (
            "interpreter_speedup_x100".into(),
            Value::Int((interp_speedup * 100.0) as i64),
        ),
        (
            "engine_speedup_x100".into(),
            Value::Int((engine_speedup * 100.0) as i64),
        ),
    ]);
    std::fs::write("BENCH_ANALYZE.json", doc.to_pretty() + "\n").expect("write BENCH_ANALYZE.json");
    println!();
    println!("wrote BENCH_ANALYZE.json");
}
