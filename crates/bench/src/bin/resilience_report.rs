//! The chaos soak: prove the serving invariants under injected failure
//! and record the evidence in `BENCH_RESILIENCE.json`.
//!
//! Two identical in-process servers run the same request mix:
//!
//! 1. **baseline** — fault-free, moderate concurrency;
//! 2. **chaos** — the same server with ≥5% worker panics plus stalls,
//!    accept hiccups and connection drops injected deterministically,
//!    under 2× the client concurrency (overload).
//!
//! Checked invariants (the run exits non-zero if any fails):
//!
//! * **admitted ⇒ answered**: no request gives up its bounded retry
//!   budget, and every final answer is a 200;
//! * **replay is exact**: every full- or replay-tier total equals the
//!   in-process ground-truth simulation of the same job;
//! * **degraded answers bracket the truth**: every static-tier response
//!   satisfies `lo ≤ truth ≤ hi`;
//! * **drain terminates** on both servers with an empty queue;
//! * **goodput under chaos ≥ 70%** of the fault-free baseline.
//!
//! ```text
//! cargo run -p bench --release --bin resilience_report -- \
//!     [--out BENCH_RESILIENCE.json] [--requests N] [--chaos-seed N]
//! ```

use bench::serveload::{run_load, Completion, LoadOptions, LoadReport};
use predsim_engine::{Engine, EngineConfig, JobOutcome};
use predsim_lint::json::Value;
use predsim_serve::{api, ChaosPlan, ChaosSpec, ServeConfig, Server};
use std::time::Duration;

/// The request mix: clean generator jobs every tier can serve, plus one
/// heavy job with a hopeless deadline so the deadline-admission path
/// (instant static answer) is exercised whenever the cost model rates
/// it as unmeetable.
const BODIES: [&str; 5] = [
    r#"{"source":"cannon:96,4"}"#,
    r#"{"source":"stencil:96,8,3"}"#,
    r#"{"source":"ge:240,24,diagonal,8"}"#,
    r#"{"source":"apsp:120,24,row,6"}"#,
    r#"{"source":"ge:960,32,diagonal,8","deadline_ms":1}"#,
];

/// The injected failure mix: ≥5% worker panics, plus stalls, accept
/// hiccups, and mid-request connection drops.
const CHAOS: &str = "panic:0.05,stall:0.02:150,hiccup:0.05:20,drop-conn:0.05";

const WORKERS: usize = 2;
const QUEUE_CAP: usize = 8;

fn config(chaos: Option<ChaosPlan>) -> ServeConfig {
    ServeConfig {
        workers: WORKERS,
        queue_cap: QUEUE_CAP,
        request_timeout: Duration::from_secs(30),
        // Low watermarks so the degraded tiers actually engage under
        // this machine's load.
        replay_at: Some(1),
        static_at: Some(2),
        stall_timeout: Duration::from_millis(200),
        chaos,
        ..ServeConfig::default()
    }
}

/// Ground truth per body: the in-process full simulation of the job.
fn truths() -> Vec<i64> {
    let engine = Engine::new(EngineConfig::default().with_jobs(1));
    BODIES
        .iter()
        .map(|body| {
            let spec = api::parse_predict(body).expect("body parses").spec;
            let result = &engine.run(std::slice::from_ref(&spec))[0];
            match &result.outcome {
                JobOutcome::Done { prediction, .. } => prediction.total.as_ps() as i64,
                other => panic!("ground-truth job did not finish: {other:?}"),
            }
        })
        .collect()
}

/// Check the answer invariants over one load report. Returns
/// (all_answered_200, exact_totals_ok, brackets_ok, crashed_count).
fn check(
    report: &LoadReport,
    truths: &[i64],
    violations: &mut Vec<String>,
) -> (bool, bool, bool, u64) {
    let mut all_ok = report.gave_up() == 0;
    if !all_ok {
        violations.push(format!(
            "{} requests gave up their retry budget",
            report.gave_up()
        ));
    }
    let mut exact = true;
    let mut brackets = true;
    let mut crashed = 0;
    for completion in &report.completions {
        let outcome = match completion {
            Completion::Answered(o) => o,
            Completion::GaveUp { .. } => continue,
        };
        if outcome.status != 200 {
            all_ok = false;
            violations.push(format!(
                "body {} answered {}",
                outcome.body_index, outcome.status
            ));
            continue;
        }
        let truth = truths[outcome.body_index];
        match outcome.tier.as_deref() {
            Some("full") | Some("replay") => {
                if outcome.outcome.as_deref() == Some("crashed") {
                    // A job whose worker died twice: answered honestly,
                    // counted separately, carries no totals to check.
                    crashed += 1;
                } else if outcome.total_ps != Some(truth) {
                    exact = false;
                    violations.push(format!(
                        "body {} tier {:?}: total {:?} != truth {truth}",
                        outcome.body_index, outcome.tier, outcome.total_ps
                    ));
                }
            }
            Some("static") => {
                let lo = outcome.static_lo_ps.unwrap_or(i64::MAX);
                let hi = outcome.static_hi_ps.unwrap_or(i64::MIN);
                if !(lo <= truth && truth <= hi) {
                    brackets = false;
                    violations.push(format!(
                        "body {}: static bracket [{lo}, {hi}] misses truth {truth}",
                        outcome.body_index
                    ));
                }
            }
            other => {
                all_ok = false;
                violations.push(format!(
                    "body {}: unexpected tier {other:?}",
                    outcome.body_index
                ));
            }
        }
    }
    (all_ok, exact, brackets, crashed)
}

/// Render one load run as a strict-JSON object.
fn run_value(report: &LoadReport, extra: Vec<(String, Value)>) -> Value {
    let mut fields = vec![
        (
            "answered_200".into(),
            Value::Int(report.ok().count() as i64),
        ),
        ("gave_up".into(), Value::Int(report.gave_up() as i64)),
        ("wall_ms".into(), Value::Int(report.wall.as_millis() as i64)),
        (
            "goodput_milli_rps".into(),
            Value::Int(report.goodput_milli_rps() as i64),
        ),
        ("retries_429".into(), Value::Int(report.retries_429 as i64)),
        ("reconnects".into(), Value::Int(report.reconnects as i64)),
        (
            "tiers".into(),
            Value::Object(
                report
                    .tier_counts()
                    .into_iter()
                    .map(|(tier, n)| (tier, Value::Int(n as i64)))
                    .collect(),
            ),
        ),
    ];
    fields.extend(extra);
    Value::Object(fields)
}

fn main() {
    let mut out = "BENCH_RESILIENCE.json".to_string();
    let mut requests = 120usize;
    let mut chaos_seed = 42u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag '{flag}' needs a value"))
        };
        let result = match flag.as_str() {
            "--out" => value().map(|v| out = v),
            "--requests" => value().and_then(|v| {
                v.parse()
                    .map(|n| requests = n)
                    .map_err(|e| format!("bad --requests: {e}"))
            }),
            "--chaos-seed" => value().and_then(|v| {
                v.parse()
                    .map(|n| chaos_seed = n)
                    .map_err(|e| format!("bad --chaos-seed: {e}"))
            }),
            other => Err(format!("unknown flag '{other}'")),
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }

    eprintln!(
        "resilience: computing ground truth for {} jobs",
        BODIES.len()
    );
    let truths = truths();
    let bodies: Vec<String> = BODIES.iter().map(|b| b.to_string()).collect();
    let mut violations = Vec::new();

    // Fault-free baseline.
    let baseline_opts = LoadOptions {
        concurrency: WORKERS * 2,
        requests,
        attempts: 10,
        backoff_ms: 20,
        seed: 7,
    };
    eprintln!(
        "resilience: baseline run ({} requests, {} clients)",
        requests, baseline_opts.concurrency
    );
    let handle = Server::start(config(None)).expect("baseline server starts");
    let baseline = run_load(&handle.addr().to_string(), &bodies, &baseline_opts);
    let baseline_drain = handle.drain();
    let baseline_drained = baseline_drain.metrics.scalar("serve_queue_depth", &[]) == Some(0);
    let (b_answered, b_exact, b_brackets, _) = check(&baseline, &truths, &mut violations);

    // The same server under chaos and 2× the concurrency.
    let chaos_opts = LoadOptions {
        concurrency: baseline_opts.concurrency * 2,
        ..baseline_opts.clone()
    };
    eprintln!(
        "resilience: chaos run ({CHAOS} seed {chaos_seed}, {} clients)",
        chaos_opts.concurrency
    );
    let plan = ChaosPlan::new(ChaosSpec::parse(CHAOS).expect("chaos spec"), chaos_seed);
    let handle = Server::start(config(Some(plan))).expect("chaos server starts");
    let chaos = run_load(&handle.addr().to_string(), &bodies, &chaos_opts);
    let chaos_drain = handle.drain();
    let chaos_drained = chaos_drain.metrics.scalar("serve_queue_depth", &[]) == Some(0);
    let (c_answered, c_exact, c_brackets, crashed) = check(&chaos, &truths, &mut violations);

    if !baseline_drained || !chaos_drained {
        violations.push("a drain left jobs in the queue".into());
    }
    let goodput_permille = if baseline.goodput_milli_rps() == 0 {
        0
    } else {
        chaos.goodput_milli_rps() * 1000 / baseline.goodput_milli_rps()
    };
    if goodput_permille < 700 {
        violations.push(format!(
            "chaos goodput is {goodput_permille} permille of baseline (< 700)"
        ));
    }

    let metric = |name: &str, labels: &[(&str, &str)]| {
        Value::Int(chaos_drain.metrics.scalar(name, labels).unwrap_or(0) as i64)
    };
    let doc = Value::Object(vec![
        ("version".into(), Value::Int(1)),
        (
            "config".into(),
            Value::Object(vec![
                ("workers".into(), Value::Int(WORKERS as i64)),
                ("queue_cap".into(), Value::Int(QUEUE_CAP as i64)),
                ("requests".into(), Value::Int(requests as i64)),
                ("chaos".into(), Value::Str(CHAOS.into())),
                ("chaos_seed".into(), Value::Int(chaos_seed as i64)),
                (
                    "baseline_clients".into(),
                    Value::Int(baseline_opts.concurrency as i64),
                ),
                (
                    "chaos_clients".into(),
                    Value::Int(chaos_opts.concurrency as i64),
                ),
            ]),
        ),
        ("baseline".into(), run_value(&baseline, vec![])),
        (
            "chaos".into(),
            run_value(
                &chaos,
                vec![
                    (
                        "worker_restarts".into(),
                        metric("serve_worker_restarts_total", &[]),
                    ),
                    ("crashed_answers".into(), Value::Int(crashed as i64)),
                    (
                        "injections".into(),
                        Value::Object(
                            ["panic", "stall", "hiccup", "drop-conn"]
                                .iter()
                                .map(|kind| {
                                    (
                                        kind.to_string(),
                                        metric("serve_chaos_injections_total", &[("kind", kind)]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ],
            ),
        ),
        (
            "invariants".into(),
            Value::Object(vec![
                (
                    "admitted_answered".into(),
                    Value::Int(i64::from(b_answered && c_answered)),
                ),
                (
                    "replay_matches_truth".into(),
                    Value::Int(i64::from(b_exact && c_exact)),
                ),
                (
                    "static_brackets_truth".into(),
                    Value::Int(i64::from(b_brackets && c_brackets)),
                ),
                (
                    "drain_clean".into(),
                    Value::Int(i64::from(baseline_drained && chaos_drained)),
                ),
                (
                    "goodput_permille".into(),
                    Value::Int(goodput_permille as i64),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out, doc.to_pretty() + "\n").expect("writing report");
    eprintln!("resilience: wrote {out}");

    if violations.is_empty() {
        eprintln!(
            "resilience: all invariants hold (goodput {goodput_permille} permille of baseline)"
        );
    } else {
        for v in &violations {
            eprintln!("resilience: VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
