//! Figure 4 — the send/receive sequence the *standard* algorithm derives
//! for the Figure 3 pattern on Meiko CS-2 parameters.
//!
//! The paper reports the step completing ~76 µs after its start, with
//! processor 7 (1-indexed) terminating last, and processor 6 handling its
//! two receives before its second send (receive priority). Our
//! reconstruction reproduces all three observations (0-indexed: P6 last,
//! P5 receives twice before its second send).
//!
//! ```text
//! cargo run -p bench --release --bin fig4_standard_timeline
//! ```

use commsim::{gantt, patterns, standard, SimConfig};
use loggp::presets;

fn main() {
    let pattern = patterns::figure3();
    let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));
    let r = standard::simulate(&pattern, &cfg);

    println!("== Figure 4: standard algorithm on the Figure 3 pattern ==");
    println!("machine: {}", cfg.params);
    println!("message length: {} bytes\n", patterns::FIGURE3_BYTES);
    print!("{}", gantt::render(&r.timeline, 100));
    println!(
        "\nlast processor(s): {:?} (paper: processor 7, 1-indexed)",
        r.timeline
            .critical_procs()
            .iter()
            .map(|p| format!("P{p}"))
            .collect::<Vec<_>>()
    );
    println!("\nevent table:\n{}", gantt::event_table(&r.timeline));
}
