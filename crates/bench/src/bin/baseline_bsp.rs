//! Baseline — BSP vs. LogGP simulation vs. emulated machine on the
//! paper's workload. The paper's §1 motivates LogGP simulation over
//! coarser analytical models; this bench quantifies the claim: the BSP
//! superstep formula misses per-message gap serialization and imposes
//! barriers, so its error against the emulated "measured" times is larger
//! and less stable than the simulation's.
//!
//! ```text
//! cargo run -p bench --release --bin baseline_bsp
//! ```

use bench::ge::trace_for;
use commsim::SimConfig;
use loggp::presets;
use machine::{emulate, EmulatorConfig};
use predsim_core::bsp::{predict as bsp_predict, BspParams};
use predsim_core::report::{secs, Table};
use predsim_core::{simulate_program, Diagonal, Layout, RowCyclic, SimOptions};

fn panel(layout: &dyn Layout) {
    let procs = layout.procs();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let bsp_params = BspParams::from_loggp(&cfg.params);
    println!("== {} mapping, n=960, P={procs} ==", layout.name());
    let mut table = Table::new([
        "block",
        "emulated (s)",
        "LogGP sim (s)",
        "sim err %",
        "BSP (s)",
        "BSP err %",
    ]);
    let mut sim_errs = Vec::new();
    let mut bsp_errs = Vec::new();
    for b in [10usize, 16, 24, 40, 60, 96, 160] {
        let trace = trace_for(960, b, layout);
        let meas = emulate(
            &trace.program,
            &trace.loads,
            &EmulatorConfig::meiko_like(cfg),
        )
        .prediction
        .total;
        let sim = simulate_program(&trace.program, &SimOptions::new(cfg)).total;
        let bsp = bsp_predict(&trace.program, &bsp_params).total;
        let sim_err = (sim.as_secs_f64() / meas.as_secs_f64() - 1.0) * 100.0;
        let bsp_err = (bsp.as_secs_f64() / meas.as_secs_f64() - 1.0) * 100.0;
        sim_errs.push(sim_err.abs());
        bsp_errs.push(bsp_err.abs());
        table.row([
            b.to_string(),
            secs(meas),
            secs(sim),
            format!("{sim_err:+.1}"),
            secs(bsp),
            format!("{bsp_err:+.1}"),
        ]);
    }
    println!("{}", table.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mean |error| vs emulated machine: LogGP simulation {:.1}%, BSP formula {:.1}%\n",
        mean(&sim_errs),
        mean(&bsp_errs)
    );
}

fn main() {
    println!("== Baseline: BSP superstep formula vs. trace-driven LogGP simulation ==");
    panel(&Diagonal::new(8));
    panel(&RowCyclic::new(8));
}
