//! Figure 3 — the sample communication pattern (reconstructed; see
//! `commsim::patterns::figure3` docs and EXPERIMENTS.md).
//!
//! Prints the message list, per-processor degrees and the Graphviz DOT
//! form of the pattern.
//!
//! ```text
//! cargo run -p bench --release --bin fig3_pattern
//! ```

use commsim::patterns;
use predsim_core::report::Table;

fn main() {
    let p = patterns::figure3();
    println!("== Figure 3: sample GE communication pattern ==");
    print!("{p}");
    println!();

    let mut table = Table::new(["proc", "sends", "receives"]);
    let (s, r) = (p.send_counts(), p.recv_counts());
    for proc in p.active_procs() {
        table.row([format!("P{proc}"), s[proc].to_string(), r[proc].to_string()]);
    }
    println!("{}", table.render());
    println!("acyclic: {}", !p.has_cycle());
    println!("\nGraphviz:\n{}", p.to_dot());
}
