//! Host wall-clock execution of the *real* threaded blocked elimination
//! (`gauss::parallel`) across block sizes — the closest this repo can get
//! to the paper's physical measurement. Host-dependent and noisy by
//! nature (OS threads on shared cores, not 8 dedicated CS-2 nodes), so
//! nothing here is asserted; the point is that the U-shaped dependence of
//! wall time on block size shows up on real silicon too.
//!
//! ```text
//! cargo run -p bench --release --bin real_execution
//! ```

use blockops::Matrix;
use predsim_core::report::Table;
use predsim_core::{Diagonal, Layout, RowCyclic};

fn main() {
    let n = 480;
    let procs = 8;
    let reps = 3;
    println!("== Real threaded execution, n={n}, {procs} worker threads, best of {reps} ==");
    let a = Matrix::random_diag_dominant(n, 42);

    let layouts: Vec<Box<dyn Layout>> = vec![
        Box::new(Diagonal::new(procs)),
        Box::new(RowCyclic::new(procs)),
    ];
    for layout in &layouts {
        let mut table = Table::new(["block", "wall time (ms)"]);
        let mut best = (0usize, f64::MAX);
        for b in [10usize, 16, 24, 40, 60, 96, 160] {
            let mut fastest = f64::MAX;
            for _ in 0..reps {
                let run = gauss::parallel::factorize(&a, b, layout.as_ref());
                fastest = fastest.min(run.elapsed.as_secs_f64() * 1e3);
            }
            if fastest < best.1 {
                best = (b, fastest);
            }
            table.row([b.to_string(), format!("{fastest:.2}")]);
        }
        println!("-- {} --\n{}", layout.name(), table.render());
        println!("fastest on this host: B={} at {:.2} ms\n", best.0, best.1);
    }
    println!("(numbers are host-specific; the predictor's job is the 1996 testbed, not this CPU)");
}
