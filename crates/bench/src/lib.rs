//! Shared harness code for the figure regenerators and Criterion benches.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/`
//! (`cargo run -p bench --release --bin fig7_total_time`); this library
//! holds the sweep logic they share. See `DESIGN.md` §4 for the
//! experiment index and `EXPERIMENTS.md` for recorded results.

pub mod ge;
pub mod serveload;

pub use ge::{sweep, sweep_with, GeRow, SweepConfig};
