//! The Gaussian-elimination block-size sweep behind Figures 7, 8 and 9.
//!
//! For each block size the sweep produces the four series the paper plots:
//! simulated standard, simulated worst-case, "measured" without caching
//! and "measured" with caching — the measured pair coming from the machine
//! emulator (see `machine` crate docs for the substitution rationale).

use blockops::AnalyticCost;
use commsim::SimConfig;
use gauss::trace::GeProgram;
use loggp::{presets, Time};
use machine::{emulate, EmulatorConfig, Measurement};
use predsim_core::{simulate_program, Layout, Prediction, SimOptions};

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Matrix dimension (the paper: 960).
    pub n: usize,
    /// Processor count (the paper: 8).
    pub procs: usize,
    /// Block sizes to evaluate (the paper's candidate set by default).
    pub blocks: Vec<usize>,
    /// RNG seed for the emulator's jitter.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            n: gauss::MATRIX_N,
            procs: 8,
            blocks: gauss::PAPER_BLOCK_SIZES.to_vec(),
            seed: 0,
        }
    }
}

/// One row of the sweep: every series the paper's Figures 7–9 plot, for
/// one block size.
#[derive(Clone, Debug)]
pub struct GeRow {
    /// Block size.
    pub b: usize,
    /// Predicted totals/breakdowns, standard algorithm (Figs 7/8/9
    /// "simulated - standard").
    pub sim_std: Prediction,
    /// Predicted with the worst-case algorithm ("simulated - worst case").
    pub sim_wc: Prediction,
    /// Emulated with the cache model disabled ("measured - w/o caching").
    pub meas_nocache: Measurement,
    /// Emulated with the cache model ("measured - w. caching").
    pub meas_cache: Measurement,
}

impl GeRow {
    /// The four total-time series of Figure 7, in the paper's legend
    /// order: measured w/o caching, measured w. caching, simulated
    /// standard, simulated worst case.
    pub fn fig7(&self) -> [Time; 4] {
        [
            self.meas_nocache.prediction.total,
            self.meas_cache.prediction.total,
            self.sim_std.total,
            self.sim_wc.total,
        ]
    }

    /// Figure 8's communication-time series: measured, simulated standard,
    /// simulated worst case.
    pub fn fig8(&self) -> [Time; 3] {
        [
            self.meas_nocache.prediction.comm_time,
            self.sim_std.comm_time,
            self.sim_wc.comm_time,
        ]
    }

    /// Figure 9's computation-time series: measured, simulated.
    pub fn fig9(&self) -> [Time; 2] {
        [
            self.meas_nocache.prediction.comp_time,
            self.sim_std.comp_time,
        ]
    }
}

/// Generate the trace for one `(n, b, layout)` configuration with the
/// deterministic analytic cost model.
pub fn trace_for(n: usize, b: usize, layout: &dyn Layout) -> GeProgram {
    gauss::generate(n, b, layout, &AnalyticCost::paper_default())
}

/// Run the full sweep for one layout with default machine parameters.
pub fn sweep(layout: &dyn Layout, cfg: &SweepConfig) -> Vec<GeRow> {
    sweep_with(layout, cfg, |c| c)
}

/// [`sweep`] with an emulator-configuration hook (used by ablations).
pub fn sweep_with(
    layout: &dyn Layout,
    cfg: &SweepConfig,
    tweak: impl Fn(EmulatorConfig) -> EmulatorConfig,
) -> Vec<GeRow> {
    assert_eq!(
        layout.procs(),
        cfg.procs,
        "layout and sweep processor counts differ"
    );
    let sim_cfg = SimConfig::new(presets::meiko_cs2(cfg.procs)).with_seed(cfg.seed);
    cfg.blocks
        .iter()
        .map(|&b| {
            let trace = trace_for(cfg.n, b, layout);
            let sim_std = simulate_program(&trace.program, &SimOptions::new(sim_cfg));
            let sim_wc = simulate_program(&trace.program, &SimOptions::new(sim_cfg).worst_case());
            let base = tweak(EmulatorConfig::meiko_like(sim_cfg));
            let meas_cache = emulate(&trace.program, &trace.loads, &base);
            let meas_nocache = emulate(&trace.program, &trace.loads, &base.clone().without_cache());
            GeRow {
                b,
                sim_std,
                sim_wc,
                meas_nocache,
                meas_cache,
            }
        })
        .collect()
}

/// The block size with minimum value of `f` over the rows.
pub fn argmin_b(rows: &[GeRow], f: impl Fn(&GeRow) -> Time) -> usize {
    rows.iter().min_by_key(|r| f(r)).expect("non-empty sweep").b
}

#[cfg(test)]
mod tests {
    use super::*;
    use predsim_core::{Diagonal, RowCyclic};

    /// A reduced sweep (small matrix, few block sizes) exercising the whole
    /// pipeline; the full-scale shapes are asserted by the integration
    /// tests and recorded in EXPERIMENTS.md.
    fn small_cfg() -> SweepConfig {
        SweepConfig {
            n: 120,
            procs: 4,
            blocks: vec![10, 20, 40, 60],
            seed: 1,
        }
    }

    #[test]
    fn sweep_produces_all_series() {
        let cfg = small_cfg();
        let rows = sweep(&Diagonal::new(4), &cfg);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.sim_std.total > Time::ZERO);
            assert!(r.sim_wc.total >= r.sim_std.total, "b={}", r.b);
            // Cache effects only add time.
            assert!(r.meas_cache.prediction.total >= r.meas_nocache.prediction.total);
            // Measured communication sits above the pure-LogGP standard
            // prediction (contention + local copies only add).
            let [meas, std, _wc] = r.fig8();
            assert!(meas >= std, "b={}: meas {meas} < std {std}", r.b);
        }
    }

    #[test]
    fn comp_time_independent_of_layout_totals_differ() {
        let cfg = small_cfg();
        let diag = sweep(&Diagonal::new(4), &cfg);
        let rows = sweep(&RowCyclic::new(4), &cfg);
        for (d, r) in diag.iter().zip(&rows) {
            // Same ops are executed regardless of layout; only their
            // distribution differs, so *total* work matches while critical
            // computation paths generally differ.
            let d_sum: Time = d.sim_std.per_proc_comp.iter().copied().sum();
            let r_sum: Time = r.sim_std.per_proc_comp.iter().copied().sum();
            assert_eq!(d_sum, r_sum, "b={}", d.b);
        }
    }

    #[test]
    fn argmin_finds_minimum() {
        let cfg = small_cfg();
        let rows = sweep(&Diagonal::new(4), &cfg);
        let b = argmin_b(&rows, |r| r.sim_std.total);
        let min = rows.iter().map(|r| r.sim_std.total).min().unwrap();
        assert_eq!(rows.iter().find(|r| r.b == b).unwrap().sim_std.total, min);
    }

    #[test]
    #[should_panic(expected = "processor counts differ")]
    fn layout_mismatch_rejected() {
        let cfg = small_cfg();
        let _ = sweep(&Diagonal::new(5), &cfg);
    }
}
