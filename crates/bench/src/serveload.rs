//! Shared load-generation client for predsim-serve.
//!
//! Used by the `loadgen` and `resilience_report` binaries: N client
//! threads drive `POST /v1/predict` over keep-alive connections with
//! **bounded retry** — each request gets a fixed attempt budget, 429s
//! and connection resets back off exponentially with deterministic
//! splitmix64 jitter (same seed, same schedule), and a request that
//! exhausts its budget is reported as given up, never silently dropped.
//!
//! The client records what the resilience harness needs to check the
//! serving invariants: per-response status, `tier`, totals, static
//! bounds, latency, and attempt counts.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Attempt budget per request (first try + retries). At least 1.
    pub attempts: u32,
    /// Base backoff in milliseconds; attempt `k` waits
    /// `base * 2^(k-1) + jitter(seed, request, k)`, capped at 2 s.
    pub backoff_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            concurrency: 8,
            requests: 64,
            attempts: 6,
            backoff_ms: 50,
            seed: 1,
        }
    }
}

/// One answered request, with everything the invariant checks read.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// Which request body (index into the `bodies` slice) this was.
    pub body_index: usize,
    /// Final HTTP status.
    pub status: u16,
    /// The serving tier of a 200 predict answer.
    pub tier: Option<String>,
    /// The `outcome` field (`done`, `estimated`, `crashed`, ...).
    pub outcome: Option<String>,
    /// Simulated total, when the tier carried one.
    pub total_ps: Option<i64>,
    /// Static bracket, when present.
    pub static_lo_ps: Option<i64>,
    /// Static bracket, when present.
    pub static_hi_ps: Option<i64>,
    /// Wall time from first attempt to the final answer.
    pub latency: Duration,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// How one request ended.
#[derive(Clone, Debug)]
pub enum Completion {
    /// The server answered (any status).
    Answered(RequestOutcome),
    /// The attempt budget ran out without an answer.
    GaveUp {
        /// Which request body this was.
        body_index: usize,
        /// Attempts consumed.
        attempts: u32,
    },
}

/// What a whole load run produced.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// One entry per issued request.
    pub completions: Vec<Completion>,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// 429 responses that triggered a backoff-and-retry.
    pub retries_429: u64,
    /// Connection errors that triggered a reconnect-and-retry.
    pub reconnects: u64,
}

impl LoadReport {
    /// Answered-200 outcomes.
    pub fn ok(&self) -> impl Iterator<Item = &RequestOutcome> {
        self.completions.iter().filter_map(|c| match c {
            Completion::Answered(o) if o.status == 200 => Some(o),
            _ => None,
        })
    }

    /// Requests that exhausted their attempt budget.
    pub fn gave_up(&self) -> usize {
        self.completions
            .iter()
            .filter(|c| matches!(c, Completion::GaveUp { .. }))
            .count()
    }

    /// Successful answers per second, ×1000 (integer-friendly goodput).
    pub fn goodput_milli_rps(&self) -> u64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0;
        }
        (self.ok().count() as f64 * 1000.0 / secs) as u64
    }

    /// `(tier name, count)` over the 200 answers, `"none"` for answers
    /// without a tier (non-predict endpoints).
    pub fn tier_counts(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for outcome in self.ok() {
            let tier = outcome.tier.clone().unwrap_or_else(|| "none".into());
            match counts.iter_mut().find(|(t, _)| *t == tier) {
                Some((_, n)) => *n += 1,
                None => counts.push((tier, 1)),
            }
        }
        counts.sort();
        counts
    }

    /// Sorted latencies (ms) of 200 answers on the given tier, or on all
    /// tiers when `tier` is `None`.
    pub fn latencies_ms(&self, tier: Option<&str>) -> Vec<f64> {
        let mut ms: Vec<f64> = self
            .ok()
            .filter(|o| tier.is_none() || o.tier.as_deref() == tier)
            .map(|o| o.latency.as_secs_f64() * 1e3)
            .collect();
        ms.sort_by(|a, b| a.total_cmp(b));
        ms
    }
}

/// The percentile of an already-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx]
}

/// The same split-and-mix the chaos oracle uses, for jitter that is a
/// pure function of (seed, request, attempt).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic backoff for retry `attempt` (1-based) of `request`.
fn backoff(opts: &LoadOptions, request: u64, attempt: u32) -> Duration {
    let base = opts.backoff_ms.max(1);
    let exp = base.saturating_mul(1 << (attempt - 1).min(10));
    let jitter = splitmix64(opts.seed ^ (request << 8) ^ u64::from(attempt)) % base;
    Duration::from_millis(exp.saturating_add(jitter).min(2_000))
}

/// One `Content-Length`-framed HTTP response: status + body.
fn read_response(stream: &mut TcpStream) -> Result<(u16, String), String> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => return Err("connection closed mid-response".into()),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(format!("reading response head: {e}")),
        }
        if head.len() > 64 * 1024 {
            return Err("response head too large".into());
        }
    }
    let head = String::from_utf8_lossy(&head);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    let mut content_length = 0usize;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| "bad content-length")?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("reading response body: {e}"))?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// Pull the fields the invariants need out of a 200 predict body.
fn parse_outcome(body: &str) -> (Option<String>, Option<String>, [Option<i64>; 3]) {
    use predsim_lint::json::{self, Value};
    let Ok(doc) = json::parse(body) else {
        return (None, None, [None, None, None]);
    };
    let Some(result) = doc.get("result") else {
        return (None, None, [None, None, None]);
    };
    let get_str = |k: &str| {
        result
            .get(k)
            .and_then(Value::as_str)
            .map(ToString::to_string)
    };
    let get_int = |k: &str| result.get(k).and_then(Value::as_int);
    (
        get_str("tier"),
        get_str("outcome"),
        [
            get_int("total_ps"),
            get_int("static_lo_ps"),
            get_int("static_hi_ps"),
        ],
    )
}

/// Drive `bodies` (round-robin) at the server: `opts.requests` total
/// requests from `opts.concurrency` keep-alive clients, bounded retry on
/// 429 and on connection failure. Every issued request appears in the
/// report exactly once.
pub fn run_load(addr: &str, bodies: &[String], opts: &LoadOptions) -> LoadReport {
    assert!(!bodies.is_empty(), "need at least one request body");
    let next = Arc::new(AtomicUsize::new(0));
    let retries_429 = Arc::new(AtomicU64::new(0));
    let reconnects = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let clients: Vec<_> = (0..opts.concurrency.max(1))
        .map(|_| {
            let addr = addr.to_string();
            let bodies = bodies.to_vec();
            let next = Arc::clone(&next);
            let retries_429 = Arc::clone(&retries_429);
            let reconnects = Arc::clone(&reconnects);
            let opts = opts.clone();
            std::thread::spawn(move || {
                let mut stream: Option<TcpStream> = None;
                let mut done = Vec::new();
                loop {
                    let id = next.fetch_add(1, Ordering::SeqCst);
                    if id >= opts.requests {
                        return done;
                    }
                    let body_index = id % bodies.len();
                    let body = &bodies[body_index];
                    let request = format!(
                        "POST /v1/predict HTTP/1.1\r\nConnection: keep-alive\r\n\
                         Content-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let first_try = Instant::now();
                    let mut attempt = 0u32;
                    done.push(loop {
                        attempt += 1;
                        if attempt > opts.attempts.max(1) {
                            break Completion::GaveUp {
                                body_index,
                                attempts: attempt - 1,
                            };
                        }
                        if attempt > 1 {
                            std::thread::sleep(backoff(&opts, id as u64, attempt - 1));
                        }
                        let conn = match &mut stream {
                            Some(s) => s,
                            None => match TcpStream::connect(&addr) {
                                Ok(s) => {
                                    s.set_nodelay(true).ok();
                                    stream.insert(s)
                                }
                                Err(_) => {
                                    reconnects.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                            },
                        };
                        let sent = conn.write_all(request.as_bytes());
                        let answer = match sent {
                            Ok(()) => read_response(conn),
                            Err(e) => Err(format!("sending request: {e}")),
                        };
                        match answer {
                            Ok((429, _)) => {
                                retries_429.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            Ok((status, body)) => {
                                let (tier, outcome, [total, lo, hi]) = parse_outcome(&body);
                                break Completion::Answered(RequestOutcome {
                                    body_index,
                                    status,
                                    tier,
                                    outcome,
                                    total_ps: total,
                                    static_lo_ps: lo,
                                    static_hi_ps: hi,
                                    latency: first_try.elapsed(),
                                    attempts: attempt,
                                });
                            }
                            Err(_) => {
                                // Chaos connection drop or server restart:
                                // reconnect and spend another attempt.
                                stream = None;
                                reconnects.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    });
                }
            })
        })
        .collect();
    let mut report = LoadReport::default();
    for client in clients {
        report
            .completions
            .extend(client.join().expect("client thread panicked"));
    }
    report.wall = started.elapsed();
    report.retries_429 = retries_429.load(Ordering::Relaxed);
    report.reconnects = reconnects.load(Ordering::Relaxed);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let opts = LoadOptions {
            backoff_ms: 50,
            seed: 9,
            ..LoadOptions::default()
        };
        let a1 = backoff(&opts, 3, 1);
        assert_eq!(a1, backoff(&opts, 3, 1), "same inputs, same wait");
        assert_ne!(
            backoff(&opts, 3, 1),
            backoff(&opts, 4, 1),
            "jitter separates requests"
        );
        let a2 = backoff(&opts, 3, 2);
        assert!(a2 >= Duration::from_millis(100), "second wait doubles");
        assert!(backoff(&opts, 3, 10) <= Duration::from_millis(2_000), "cap");
    }

    #[test]
    fn percentile_of_sorted_latencies() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn report_counts_tiers_goodput_and_give_ups() {
        let mut report = LoadReport {
            wall: Duration::from_secs(2),
            ..LoadReport::default()
        };
        let answered = |tier: &str, status: u16| {
            Completion::Answered(RequestOutcome {
                body_index: 0,
                status,
                tier: Some(tier.into()),
                outcome: None,
                total_ps: None,
                static_lo_ps: None,
                static_hi_ps: None,
                latency: Duration::from_millis(5),
                attempts: 1,
            })
        };
        report.completions = vec![
            answered("full", 200),
            answered("full", 200),
            answered("static", 200),
            answered("full", 422),
            Completion::GaveUp {
                body_index: 1,
                attempts: 6,
            },
        ];
        assert_eq!(report.ok().count(), 3);
        assert_eq!(report.gave_up(), 1);
        assert_eq!(report.goodput_milli_rps(), 1_500);
        assert_eq!(
            report.tier_counts(),
            vec![("full".to_string(), 2), ("static".to_string(), 1)]
        );
        assert_eq!(report.latencies_ms(Some("full")).len(), 2);
        assert_eq!(report.latencies_ms(None).len(), 3);
    }
}
