//! Criterion companion to Figure 6: host timings of the four basic block
//! operations at representative block sizes, plus the blocked LU built
//! from them.

use blockops::ops::{op1_diagonal, op2_row_panel, op3_col_panel, op4_interior};
use blockops::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_basic_ops");
    for b in [10usize, 24, 48, 96] {
        group.bench_with_input(BenchmarkId::new("op1", b), &b, |bench, &b| {
            let blk = Matrix::random_diag_dominant(b, 1);
            bench.iter(|| {
                let mut m = blk.clone();
                black_box(op1_diagonal(&mut m).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("op2", b), &b, |bench, &b| {
            let mut diag = Matrix::random_diag_dominant(b, 2);
            let f = op1_diagonal(&mut diag).unwrap();
            let blk = Matrix::random(b, b, 3);
            bench.iter(|| {
                let mut m = blk.clone();
                op2_row_panel(&mut m, &f.l_inv);
                black_box(m)
            });
        });
        group.bench_with_input(BenchmarkId::new("op3", b), &b, |bench, &b| {
            let mut diag = Matrix::random_diag_dominant(b, 4);
            let f = op1_diagonal(&mut diag).unwrap();
            let blk = Matrix::random(b, b, 5);
            bench.iter(|| {
                let mut m = blk.clone();
                op3_col_panel(&mut m, &f.u_inv);
                black_box(m)
            });
        });
        group.bench_with_input(BenchmarkId::new("op4", b), &b, |bench, &b| {
            let a = Matrix::random(b, b, 6);
            let x = Matrix::random(b, b, 7);
            let blk = Matrix::random(b, b, 8);
            bench.iter(|| {
                let mut m = blk.clone();
                op4_interior(&mut m, &a, &x);
                black_box(m)
            });
        });
    }
    group.finish();
}

fn bench_blocked_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocked_lu");
    let n = 96;
    for b in [8usize, 24, 48, 96] {
        group.bench_with_input(BenchmarkId::new("n96", b), &b, |bench, &b| {
            let a = Matrix::random_diag_dominant(n, 9);
            bench.iter(|| {
                let mut m = a.clone();
                blockops::ops::blocked_lu_in_place(&mut m, b).unwrap();
                black_box(m)
            });
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    // Keep `cargo bench --workspace` affordable: benches here are for
    // regression *shape*, not publication-grade statistics.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_ops, bench_blocked_lu
}
criterion_main!(benches);
