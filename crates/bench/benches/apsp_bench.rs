//! Min-plus kernel and closure throughput for the APSP application.

use apsp::minplus::{blocked_fw_in_place, floyd_warshall_in_place, minplus_mul, random_digraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_minplus(c: &mut Criterion) {
    let mut group = c.benchmark_group("minplus_mul");
    for n in [16usize, 48, 96] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let x = random_digraph(n, 0.3, 1);
            let y = random_digraph(n, 0.3, 2);
            b.iter(|| black_box(minplus_mul(&x, &y)));
        });
    }
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp_closure");
    let n = 96;
    group.bench_function("classical_n96", |b| {
        let g = random_digraph(n, 0.2, 3);
        b.iter(|| {
            let mut d = g.clone();
            floyd_warshall_in_place(&mut d);
            black_box(d)
        });
    });
    for blk in [8usize, 24, 48] {
        group.bench_with_input(BenchmarkId::new("blocked_n96", blk), &blk, |b, &blk| {
            let g = random_digraph(n, 0.2, 3);
            b.iter(|| {
                let mut d = g.clone();
                blocked_fw_in_place(&mut d, blk);
                black_box(d)
            });
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    // Keep `cargo bench --workspace` affordable: benches here are for
    // regression *shape*, not publication-grade statistics.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_minplus, bench_closure
}
criterion_main!(benches);
