//! Criterion benchmark of the batch-prediction engine: the same job grid
//! executed sequentially, on all cores, and with/without the step-pattern
//! memo cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loggp::presets;
use predsim_engine::{Engine, EngineConfig, Grid, JobSource, JobSpec, LayoutSpec};

fn grid() -> Vec<JobSpec> {
    let n = 240;
    let mut g = Grid::new();
    for &b in gauss::PAPER_BLOCK_SIZES.iter().filter(|b| n % **b == 0) {
        g = g.source(
            format!("ge B={b}"),
            JobSource::Gauss {
                n,
                block: b,
                layout: LayoutSpec::Diagonal(8),
            },
        );
    }
    g.source(
        "stencil",
        JobSource::Stencil {
            n: 128,
            procs: 4,
            iters: 60,
            ps_per_flop: 500,
        },
    )
    .source("cannon", JobSource::Cannon { n: 240, q: 4 })
    .machine("meiko", presets::meiko_cs2(8))
    .build()
}

fn bench_engine(c: &mut Criterion) {
    let jobs = grid();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for (name, config) in [
        (
            "seq/no-memo",
            EngineConfig::default().with_jobs(1).with_memo(false),
        ),
        ("seq/memo", EngineConfig::default().with_jobs(1)),
        ("par/no-memo", EngineConfig::default().with_memo(false)),
        ("par/memo", EngineConfig::default()),
    ] {
        group.bench_function(BenchmarkId::new(name, cpus), |b| {
            b.iter(|| {
                // A fresh engine per iteration: the memo variants measure
                // cold-cache cost, the realistic single-sweep scenario.
                std::hint::black_box(Engine::new(config).run(&jobs))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
