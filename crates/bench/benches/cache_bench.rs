//! Cache-simulator throughput: accesses per second for hitting and
//! thrashing address streams (the emulator's hot loop at small block
//! sizes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use machine::Cache;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim");
    let accesses = 16_384u64;
    group.throughput(Throughput::Elements(accesses));

    group.bench_function("resident_sweep", |b| {
        b.iter(|| {
            let mut cache = Cache::new(128 * 1024, 64, 4);
            for _ in 0..(accesses / 1024) {
                black_box(cache.touch_range(0, 64 * 1024));
            }
            cache.stats()
        })
    });

    group.bench_function("thrashing_sweep", |b| {
        b.iter(|| {
            let mut cache = Cache::new(128 * 1024, 64, 4);
            for _ in 0..(accesses / 8192) {
                black_box(cache.touch_range(0, 512 * 1024));
            }
            cache.stats()
        })
    });

    group.bench_function("random_blocks", |b| {
        let blocks: Vec<u64> = (0..256).map(|i| (i * 2654435761u64) % 1024).collect();
        b.iter(|| {
            let mut cache = Cache::new(128 * 1024, 64, 4);
            for &blk in &blocks {
                black_box(cache.touch_range(blk * 800, 800));
            }
            cache.stats()
        })
    });
    group.finish();
}

fn fast() -> Criterion {
    // Keep `cargo bench --workspace` affordable: benches here are for
    // regression *shape*, not publication-grade statistics.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_cache
}
criterion_main!(benches);
