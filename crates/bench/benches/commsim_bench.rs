//! Throughput of the communication-step simulators themselves: how fast
//! the predictor chews through patterns of growing size (simulation speed
//! is what makes sweep-based optimization practical — the paper's pitch
//! against explicit-formula derivations).

use commsim::{patterns, standard, worstcase, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loggp::presets;
use std::hint::black_box;

fn bench_standard(c: &mut Criterion) {
    let mut group = c.benchmark_group("standard_algorithm");
    for n in [8usize, 16, 32, 64] {
        let pattern = patterns::all_to_all(n, 1024);
        group.throughput(Throughput::Elements(pattern.len() as u64));
        let cfg = SimConfig::new(presets::meiko_cs2(n));
        group.bench_with_input(BenchmarkId::new("all_to_all", n), &pattern, |b, p| {
            b.iter(|| black_box(standard::simulate(p, &cfg)))
        });
    }
    for msgs in [100usize, 1000] {
        let pattern = patterns::random(32, msgs, 4096, 7);
        group.throughput(Throughput::Elements(pattern.len() as u64));
        let cfg = SimConfig::new(presets::meiko_cs2(32));
        group.bench_with_input(BenchmarkId::new("random32", msgs), &pattern, |b, p| {
            b.iter(|| black_box(standard::simulate(p, &cfg)))
        });
    }
    group.finish();
}

fn bench_worstcase(c: &mut Criterion) {
    let mut group = c.benchmark_group("worstcase_algorithm");
    for n in [8usize, 16, 32] {
        let pattern = patterns::all_to_all(n, 1024); // cyclic: exercises deadlock breaking
        group.throughput(Throughput::Elements(pattern.len() as u64));
        let cfg = SimConfig::new(presets::meiko_cs2(n));
        group.bench_with_input(BenchmarkId::new("all_to_all", n), &pattern, |b, p| {
            b.iter(|| black_box(worstcase::simulate(p, &cfg)))
        });
    }
    group.finish();
}

fn bench_figure3(c: &mut Criterion) {
    let pattern = patterns::figure3();
    let cfg = SimConfig::new(presets::meiko_cs2(10));
    c.bench_function("figure3_standard", |b| {
        b.iter(|| black_box(standard::simulate(&pattern, &cfg)))
    });
    c.bench_function("figure3_worstcase", |b| {
        b.iter(|| black_box(worstcase::simulate(&pattern, &cfg)))
    });
}

fn fast() -> Criterion {
    // Keep `cargo bench --workspace` affordable: benches here are for
    // regression *shape*, not publication-grade statistics.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_standard, bench_worstcase, bench_figure3
}
criterion_main!(benches);
