//! End-to-end prediction cost for blocked Gaussian elimination: trace
//! generation, whole-program simulation (both algorithms) and emulation —
//! the per-candidate cost of a sweep-based optimizer.

use bench::ge::trace_for;
use commsim::SimConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loggp::presets;
use machine::{emulate, EmulatorConfig};
use predsim_core::{simulate_program, Diagonal, SimOptions};
use std::hint::black_box;

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ge_trace_generation");
    let layout = Diagonal::new(8);
    for b in [24usize, 48, 96] {
        group.bench_with_input(BenchmarkId::new("n960", b), &b, |bench, &b| {
            bench.iter(|| black_box(trace_for(960, b, &layout)))
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ge_whole_program_simulation");
    let layout = Diagonal::new(8);
    let cfg = SimConfig::new(presets::meiko_cs2(8));
    for b in [24usize, 96] {
        let trace = trace_for(960, b, &layout);
        group.bench_with_input(BenchmarkId::new("standard_n960", b), &trace, |bench, t| {
            bench.iter(|| black_box(simulate_program(&t.program, &SimOptions::new(cfg))))
        });
        group.bench_with_input(BenchmarkId::new("worstcase_n960", b), &trace, |bench, t| {
            bench.iter(|| {
                black_box(simulate_program(
                    &t.program,
                    &SimOptions::new(cfg).worst_case(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_emulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ge_emulation");
    let layout = Diagonal::new(8);
    let cfg = SimConfig::new(presets::meiko_cs2(8));
    for b in [48usize, 96] {
        let trace = trace_for(480, b, &layout);
        let ecfg = EmulatorConfig::meiko_like(cfg);
        group.bench_with_input(
            BenchmarkId::new("with_cache_n480", b),
            &trace,
            |bench, t| bench.iter(|| black_box(emulate(&t.program, &t.loads, &ecfg))),
        );
    }
    group.finish();
}

fn fast() -> Criterion {
    // Keep `cargo bench --workspace` affordable: benches here are for
    // regression *shape*, not publication-grade statistics.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_trace_generation, bench_simulation, bench_emulation
}
criterion_main!(benches);
