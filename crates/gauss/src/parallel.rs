//! Real multithreaded execution of the blocked elimination — the
//! workspace's stand-in for the paper's Split-C program on the Meiko CS-2.
//!
//! One OS thread per (virtual) processor; blocks live with their owner as
//! dictated by the layout; inverted factors and panel blocks travel through
//! crossbeam channels exactly along the edges the trace generator emits.
//! The point of this module is *numerical* fidelity — the parallel program
//! must compute the same factorization as the sequential reference — and a
//! sanity check that the generated schedule is deadlock-free when executed
//! eagerly.

use blockops::ops::{op1_diagonal, op2_row_panel, op3_col_panel, op4_interior};
use blockops::Matrix;
use crossbeam::channel::{unbounded, Receiver, Sender};
use predsim_core::Layout;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// What travels between processors.
#[derive(Clone, Debug)]
enum BlockMsg {
    /// `L⁻¹` of elimination step `k`.
    LInv(usize, Matrix),
    /// `U⁻¹` of elimination step `k`.
    UInv(usize, Matrix),
    /// Updated row-panel block `U[k][j]`.
    Row(usize, usize, Matrix),
    /// Updated column-panel block `L[i][k]`.
    Col(usize, usize, Matrix),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Key {
    LInv(usize),
    UInv(usize),
    Row(usize, usize),
    Col(usize, usize),
}

/// The result of a parallel factorization.
#[derive(Debug)]
pub struct ParallelRun {
    /// The packed `L\U` factorization, reassembled.
    pub factored: Matrix,
    /// Wall-clock duration of the parallel phase (threads spawned to
    /// threads joined). Indicative only — prediction quality is evaluated
    /// against the machine emulator, not against host wall time.
    pub elapsed: Duration,
}

struct Worker {
    me: usize,
    nb: usize,

    rx: Receiver<BlockMsg>,
    txs: Vec<Sender<BlockMsg>>,
    blocks: HashMap<(usize, usize), Matrix>,
    cache: HashMap<Key, Matrix>,
}

impl Worker {
    fn owner(&self, layout: &dyn Layout, i: usize, j: usize) -> usize {
        layout.owner(i, j)
    }

    /// Blocking receive of a specific item; buffers everything else.
    fn wait_for(&mut self, key: Key) -> Matrix {
        loop {
            if let Some(m) = self.cache.remove(&key) {
                return m;
            }
            let msg = self
                .rx
                .recv()
                .expect("peer hung up while blocks were pending");
            let (k, m) = match msg {
                BlockMsg::LInv(k, m) => (Key::LInv(k), m),
                BlockMsg::UInv(k, m) => (Key::UInv(k), m),
                BlockMsg::Row(k, j, m) => (Key::Row(k, j), m),
                BlockMsg::Col(k, i, m) => (Key::Col(k, i), m),
            };
            self.cache.insert(k, m);
        }
    }

    fn send(&self, dst: usize, msg: BlockMsg) {
        self.txs[dst].send(msg).expect("receiver alive");
    }

    fn run(&mut self, layout: &dyn Layout) {
        let nb = self.nb;
        for k in 0..nb {
            let me_owns_diag = self.owner(layout, k, k) == self.me;

            // Op1 + factor distribution.
            if me_owns_diag {
                let mut diag = self.blocks.remove(&(k, k)).expect("diagonal block local");
                let f = op1_diagonal(&mut diag).expect("paper workloads factor without pivoting");
                self.blocks.insert((k, k), diag);
                let mut row_dsts: Vec<usize> =
                    (k + 1..nb).map(|j| self.owner(layout, k, j)).collect();
                row_dsts.sort_unstable();
                row_dsts.dedup();
                let mut col_dsts: Vec<usize> =
                    (k + 1..nb).map(|i| self.owner(layout, i, k)).collect();
                col_dsts.sort_unstable();
                col_dsts.dedup();
                for dst in row_dsts {
                    if dst == self.me {
                        self.cache.insert(Key::LInv(k), f.l_inv.clone());
                    } else {
                        self.send(dst, BlockMsg::LInv(k, f.l_inv.clone()));
                    }
                }
                for dst in col_dsts {
                    if dst == self.me {
                        self.cache.insert(Key::UInv(k), f.u_inv.clone());
                    } else {
                        self.send(dst, BlockMsg::UInv(k, f.u_inv.clone()));
                    }
                }
            }

            // Op2 on owned row-panel blocks.
            let my_rows: Vec<usize> = (k + 1..nb)
                .filter(|&j| self.owner(layout, k, j) == self.me)
                .collect();
            if !my_rows.is_empty() {
                let l_inv = self.wait_for(Key::LInv(k));
                for j in my_rows {
                    let mut blk = self.blocks.remove(&(k, j)).expect("row block local");
                    op2_row_panel(&mut blk, &l_inv);
                    // Distribute U[k][j] down column j.
                    let mut dsts: Vec<usize> =
                        (k + 1..nb).map(|i| self.owner(layout, i, j)).collect();
                    dsts.sort_unstable();
                    dsts.dedup();
                    for dst in dsts {
                        if dst == self.me {
                            self.cache.insert(Key::Row(k, j), blk.clone());
                        } else {
                            self.send(dst, BlockMsg::Row(k, j, blk.clone()));
                        }
                    }
                    self.blocks.insert((k, j), blk);
                }
            }

            // Op3 on owned column-panel blocks.
            let my_cols: Vec<usize> = (k + 1..nb)
                .filter(|&i| self.owner(layout, i, k) == self.me)
                .collect();
            if !my_cols.is_empty() {
                let u_inv = self.wait_for(Key::UInv(k));
                for i in my_cols {
                    let mut blk = self.blocks.remove(&(i, k)).expect("col block local");
                    op3_col_panel(&mut blk, &u_inv);
                    let mut dsts: Vec<usize> =
                        (k + 1..nb).map(|j| self.owner(layout, i, j)).collect();
                    dsts.sort_unstable();
                    dsts.dedup();
                    for dst in dsts {
                        if dst == self.me {
                            self.cache.insert(Key::Col(k, i), blk.clone());
                        } else {
                            self.send(dst, BlockMsg::Col(k, i, blk.clone()));
                        }
                    }
                    self.blocks.insert((i, k), blk);
                }
            }

            // Op4 on owned interior blocks.
            let mut needed_rows: Vec<usize> = Vec::new();
            let mut needed_cols: Vec<usize> = Vec::new();
            for i in k + 1..nb {
                for j in k + 1..nb {
                    if self.owner(layout, i, j) == self.me {
                        needed_rows.push(j);
                        needed_cols.push(i);
                    }
                }
            }
            needed_rows.sort_unstable();
            needed_rows.dedup();
            needed_cols.sort_unstable();
            needed_cols.dedup();
            let rows: HashMap<usize, Matrix> = needed_rows
                .into_iter()
                .map(|j| (j, self.wait_for(Key::Row(k, j))))
                .collect();
            let cols: HashMap<usize, Matrix> = needed_cols
                .into_iter()
                .map(|i| (i, self.wait_for(Key::Col(k, i))))
                .collect();
            for i in k + 1..nb {
                for j in k + 1..nb {
                    if self.owner(layout, i, j) == self.me {
                        let mut blk = self.blocks.remove(&(i, j)).expect("interior block local");
                        op4_interior(&mut blk, &cols[&i], &rows[&j]);
                        self.blocks.insert((i, j), blk);
                    }
                }
            }
        }
    }
}

/// Factor `a` in parallel with one thread per layout processor. Returns
/// the packed factorization and the wall-clock duration.
///
/// # Panics
/// Panics if the block size does not divide the matrix size, or if the
/// factorization hits a zero pivot (use diagonally dominant inputs).
pub fn factorize(a: &Matrix, b: usize, layout: &dyn Layout) -> ParallelRun {
    assert!(a.is_square(), "square matrices only");
    let n = a.rows();
    assert!(
        b > 0 && n.is_multiple_of(b),
        "block size {b} must divide the matrix size {n}"
    );
    let nb = n / b;
    let procs = layout.procs();

    // Deal out the blocks.
    let mut partitions: Vec<HashMap<(usize, usize), Matrix>> =
        (0..procs).map(|_| HashMap::new()).collect();
    for i in 0..nb {
        for j in 0..nb {
            partitions[layout.owner(i, j)].insert((i, j), a.block(i * b, j * b, b, b));
        }
    }

    let (txs, rxs): (Vec<Sender<BlockMsg>>, Vec<Receiver<BlockMsg>>) =
        (0..procs).map(|_| unbounded()).unzip();

    let start = Instant::now();
    let mut results: Vec<HashMap<(usize, usize), Matrix>> = Vec::with_capacity(procs);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(procs);
        for (me, (blocks, rx)) in partitions.drain(..).zip(rxs).enumerate() {
            let txs = txs.clone();
            handles.push(scope.spawn(move |_| {
                let mut w = Worker {
                    me,
                    nb,
                    rx,
                    txs,
                    blocks,
                    cache: HashMap::new(),
                };
                w.run(layout);
                w.blocks
            }));
        }
        drop(txs);
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");
    let elapsed = start.elapsed();

    // Reassemble.
    let mut out = Matrix::zeros(n, n);
    for part in results {
        for ((i, j), blk) in part {
            out.set_block(i * b, j * b, &blk);
        }
    }
    ParallelRun {
        factored: out,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockops::lu::lu_in_place;
    use predsim_core::{ColCyclic, Diagonal, RowCyclic};

    fn check(n: usize, b: usize, layout: &dyn Layout, seed: u64) {
        let a = Matrix::random_diag_dominant(n, seed);
        let run = factorize(&a, b, layout);
        let mut want = a.clone();
        lu_in_place(&mut want).unwrap();
        assert!(
            run.factored.approx_eq(&want, 1e-7),
            "n={n} b={b} layout={} diff={}",
            layout.name(),
            run.factored.max_abs_diff(&want)
        );
    }

    #[test]
    fn matches_sequential_row_cyclic() {
        check(24, 4, &RowCyclic::new(3), 1);
        check(24, 8, &RowCyclic::new(4), 2);
    }

    #[test]
    fn matches_sequential_diagonal() {
        check(24, 4, &Diagonal::new(3), 3);
        check(32, 8, &Diagonal::new(8), 4);
    }

    #[test]
    fn matches_sequential_col_cyclic() {
        check(24, 6, &ColCyclic::new(5), 5);
    }

    #[test]
    fn single_processor_degenerates_to_sequential() {
        check(16, 4, &RowCyclic::new(1), 6);
    }

    #[test]
    fn block_equals_matrix() {
        check(12, 12, &Diagonal::new(4), 7);
    }

    #[test]
    fn more_procs_than_blocks() {
        check(8, 4, &Diagonal::new(16), 8);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_block() {
        let a = Matrix::random_diag_dominant(10, 1);
        let _ = factorize(&a, 3, &RowCyclic::new(2));
    }
}
