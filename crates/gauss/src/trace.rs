//! Trace generation: from (matrix size, block size, layout, cost model) to
//! the oblivious [`Program`] the predictor simulates.
//!
//! The generator follows the control flow of the blocked elimination
//! exactly, as the paper prescribes, by building the dependency DAG of the
//! basic operations and grouping them into *wavefront levels*:
//!
//! * `Op1(k)` depends on `Op4(k−1, k, k)`;
//! * `Op2(k, j)` depends on `Op1(k)` and `Op4(k−1, k, j)`;
//! * `Op3(k, i)` depends on `Op1(k)` and `Op4(k−1, i, k)`;
//! * `Op4(k, i, j)` depends on `Op2(k, j)`, `Op3(k, i)` and
//!   `Op4(k−1, i, j)`.
//!
//! `level(t) = 1 + max(level(deps))` is the diagonal wave of the paper's
//! §5. Every level becomes one [`Step`]: its computation phase charges each
//! processor the cost-model time of the tasks it owns; its communication
//! phase carries one message per (produced block, consuming processor)
//! pair — inverted factors travel to the pivot row and column, panel
//! blocks travel into the trailing submatrix. Messages whose source and
//! destination processor coincide are kept as *self-messages*: the LogGP
//! predictor ignores them (as in the paper), while the machine emulator
//! charges them as local memory copies.

use blockops::{CostModel, OpClass};
use commsim::CommPattern;
use loggp::Time;
use predsim_core::{Layout, Program, Step, StepLoad};
use std::collections::BTreeSet;

/// A generated blocked-elimination program plus the metadata the machine
/// emulator needs.
#[derive(Clone, Debug)]
pub struct GeProgram {
    /// The oblivious program (one step per wavefront level).
    pub program: Program,
    /// Work profiles parallel to `program.steps()`.
    pub loads: Vec<StepLoad>,
    /// Matrix dimension.
    pub n: usize,
    /// Block size.
    pub block: usize,
    /// Blocks per matrix dimension (`n / block`).
    pub nb: usize,
    /// Processor count.
    pub procs: usize,
    /// Name of the layout that was used.
    pub layout_name: String,
    /// Total number of Op1..Op4 instances, in order.
    pub op_totals: [u64; 4],
}

impl GeProgram {
    /// Bytes of a full block message (`8·B²`).
    pub fn block_bytes(&self) -> usize {
        8 * self.block * self.block
    }
}

/// Bytes of a full `b × b` block of `f64`.
pub fn full_block_bytes(b: usize) -> usize {
    8 * b * b
}

/// Bytes of one triangular factor of a `b × b` block (half the block,
/// diagonal included).
pub fn factor_bytes(b: usize) -> usize {
    8 * (b * (b + 1)) / 2
}

/// Generate the blocked-GE trace for an `n × n` matrix with `b × b` blocks
/// under `layout`, charging computation with `cost`.
///
/// # Panics
/// Panics if `b` does not divide `n` (the paper's equal-sized-block
/// restriction) or if the layout maps onto zero processors.
pub fn generate(n: usize, b: usize, layout: &dyn Layout, cost: &dyn CostModel) -> GeProgram {
    assert!(
        b > 0 && n.is_multiple_of(b),
        "block size {b} must divide the matrix size {n}"
    );
    let nb = n / b;
    let procs = layout.procs();
    assert!(procs > 0);

    let owner = |i: usize, j: usize| layout.owner(i, j);
    let block_id = |i: usize, j: usize| (i * nb + j) as u64;

    // Dependency levels of the previous elimination step's Op4 per block.
    let mut lvl4_prev = vec![vec![0u32; nb]; nb];
    let mut max_level = 0u32;

    // Per-level accumulation; grown on demand.
    let mut comp: Vec<Vec<Time>> = Vec::new();
    let mut loads: Vec<StepLoad> = Vec::new();
    let mut msgs: Vec<Vec<(usize, usize, usize)>> = Vec::new(); // (src, dst, bytes)
    let mut op_totals = [0u64; 4];

    let ensure_level = |lvl: u32,
                        comp: &mut Vec<Vec<Time>>,
                        loads: &mut Vec<StepLoad>,
                        msgs: &mut Vec<Vec<(usize, usize, usize)>>| {
        while comp.len() < lvl as usize {
            comp.push(vec![Time::ZERO; procs]);
            loads.push(StepLoad::new(procs));
            msgs.push(Vec::new());
        }
    };

    let mut charge = |lvl: u32,
                      proc: usize,
                      op: OpClass,
                      touched: &[u64],
                      comp: &mut Vec<Vec<Time>>,
                      loads: &mut Vec<StepLoad>,
                      msgs: &mut Vec<Vec<(usize, usize, usize)>>| {
        ensure_level(lvl, comp, loads, msgs);
        let idx = lvl as usize - 1;
        comp[idx][proc] += cost.op_cost(op, b);
        loads[idx].add_visits(proc, 1);
        let block_bytes = full_block_bytes(b) as u32;
        for &t in touched {
            loads[idx].touch(proc, t * full_block_bytes(b) as u64, block_bytes);
        }
        op_totals[match op {
            OpClass::Op1 => 0,
            OpClass::Op2 => 1,
            OpClass::Op3 => 2,
            OpClass::Op4 => 3,
        }] += 1;
    };

    for k in 0..nb {
        // ---- Op1 on the diagonal block --------------------------------
        let l1 = 1 + lvl4_prev[k][k];
        let p_diag = owner(k, k);
        charge(
            l1,
            p_diag,
            OpClass::Op1,
            &[block_id(k, k)],
            &mut comp,
            &mut loads,
            &mut msgs,
        );
        max_level = max_level.max(l1);

        // Factor messages: L⁻¹ to the pivot row, U⁻¹ to the pivot column,
        // one per destination processor.
        {
            let mut row_dsts: BTreeSet<usize> = BTreeSet::new();
            let mut col_dsts: BTreeSet<usize> = BTreeSet::new();
            for j in k + 1..nb {
                row_dsts.insert(owner(k, j));
                col_dsts.insert(owner(j, k));
            }
            let idx = l1 as usize - 1;
            for dst in row_dsts {
                msgs[idx].push((p_diag, dst, factor_bytes(b)));
            }
            for dst in col_dsts {
                msgs[idx].push((p_diag, dst, factor_bytes(b)));
            }
        }

        // ---- Op2 along the pivot row, Op3 down the pivot column --------
        let mut l2 = vec![0u32; nb];
        let mut l3 = vec![0u32; nb];
        for j in k + 1..nb {
            let lvl = 1 + l1.max(lvl4_prev[k][j]);
            l2[j] = lvl;
            max_level = max_level.max(lvl);
            let p = owner(k, j);
            charge(
                lvl,
                p,
                OpClass::Op2,
                &[block_id(k, j), block_id(k, k)],
                &mut comp,
                &mut loads,
                &mut msgs,
            );
            // Result U[k][j] goes to every owner of column-j trailing blocks.
            let dsts: BTreeSet<usize> = (k + 1..nb).map(|i| owner(i, j)).collect();
            let idx = lvl as usize - 1;
            for dst in dsts {
                msgs[idx].push((p, dst, full_block_bytes(b)));
            }
        }
        for i in k + 1..nb {
            let lvl = 1 + l1.max(lvl4_prev[i][k]);
            l3[i] = lvl;
            max_level = max_level.max(lvl);
            let p = owner(i, k);
            charge(
                lvl,
                p,
                OpClass::Op3,
                &[block_id(i, k), block_id(k, k)],
                &mut comp,
                &mut loads,
                &mut msgs,
            );
            let dsts: BTreeSet<usize> = (k + 1..nb).map(|j| owner(i, j)).collect();
            let idx = lvl as usize - 1;
            for dst in dsts {
                msgs[idx].push((p, dst, full_block_bytes(b)));
            }
        }

        // ---- Op4 over the trailing submatrix ---------------------------
        for i in k + 1..nb {
            for j in k + 1..nb {
                let lvl = 1 + l2[j].max(l3[i]).max(lvl4_prev[i][j]);
                lvl4_prev[i][j] = lvl;
                max_level = max_level.max(lvl);
                charge(
                    lvl,
                    owner(i, j),
                    OpClass::Op4,
                    &[block_id(i, j), block_id(i, k), block_id(k, j)],
                    &mut comp,
                    &mut loads,
                    &mut msgs,
                );
            }
        }
    }

    // Assemble the program.
    let mut program = Program::new(procs);
    for (idx, comp_lvl) in comp.into_iter().enumerate() {
        let mut pattern = CommPattern::new(procs);
        for &(src, dst, bytes) in &msgs[idx] {
            pattern.add(src, dst, bytes);
        }
        program.push(
            Step::new(format!("wave {}", idx + 1))
                .with_comp(comp_lvl)
                .with_comm(pattern),
        );
    }

    GeProgram {
        program,
        loads,
        n,
        block: b,
        nb,
        procs,
        layout_name: layout.name(),
        op_totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockops::AnalyticCost;
    use predsim_core::{Diagonal, RowCyclic};

    fn gen(n: usize, b: usize, procs: usize) -> GeProgram {
        generate(n, b, &Diagonal::new(procs), &AnalyticCost::paper_default())
    }

    #[test]
    fn op_counts_match_formulas() {
        let nb = 6;
        let g = gen(nb * 4, 4, 3);
        assert_eq!(g.nb, nb);
        let nb = nb as u64;
        assert_eq!(g.op_totals[0], nb); // one Op1 per k
        let panels: u64 = (0..nb).map(|k| nb - k - 1).sum();
        assert_eq!(g.op_totals[1], panels);
        assert_eq!(g.op_totals[2], panels);
        let interiors: u64 = (0..nb).map(|k| (nb - k - 1).pow(2)).sum();
        assert_eq!(g.op_totals[3], interiors);
    }

    #[test]
    fn single_block_matrix_is_one_op1() {
        let g = gen(8, 8, 4);
        assert_eq!(g.op_totals, [1, 0, 0, 0]);
        assert_eq!(g.program.len(), 1);
        assert_eq!(g.program.total_messages(), 0);
    }

    #[test]
    fn levels_respect_dependencies() {
        // The last wave must contain the final Op1... in fact the final
        // Op4 of step nb-2 then Op1 of step nb-1: total levels = 3(nb-1)+1.
        let nb = 5;
        let g = gen(nb * 2, 2, 4);
        assert_eq!(g.program.len(), 3 * (nb - 1) + 1);
    }

    #[test]
    fn computation_load_matches_op_costs() {
        let cost = AnalyticCost::paper_default();
        let g = gen(24, 4, 3);
        let total_comp: Time = g.program.comp_load().iter().copied().sum();
        use blockops::CostModel;
        let want = cost.op_cost(OpClass::Op1, 4) * g.op_totals[0]
            + cost.op_cost(OpClass::Op2, 4) * g.op_totals[1]
            + cost.op_cost(OpClass::Op3, 4) * g.op_totals[2]
            + cost.op_cost(OpClass::Op4, 4) * g.op_totals[3];
        assert_eq!(total_comp, want);
    }

    #[test]
    fn row_cyclic_rows_need_no_row_messages() {
        // Under row-cyclic, Op1's L-inv factor messages to the pivot *row*
        // are all self-messages (the row has a single owner).
        let procs = 4;
        let g = generate(
            32,
            4,
            &RowCyclic::new(procs),
            &AnalyticCost::paper_default(),
        );
        // Count factor-size network messages: only the U-inv column copies
        // should cross the network from Op1.
        let fb = factor_bytes(4);
        let network_factor_msgs: usize = g
            .program
            .steps()
            .iter()
            .flat_map(|s| s.comm.network_messages())
            .filter(|m| m.bytes == fb)
            .count();
        // Each k has at most procs-1 remote column destinations and zero
        // remote row destinations... row destination is owner(k, j) = k%P
        // for all j: the diagonal owner itself.
        let nb = g.nb;
        let max_col: usize = (0..nb).map(|k| (procs - 1).min(nb - k - 1)).sum();
        assert!(
            network_factor_msgs <= max_col,
            "{network_factor_msgs} > {max_col}"
        );
    }

    #[test]
    fn self_messages_present_for_local_transfers() {
        let g = gen(24, 4, 2);
        let self_msgs: usize = g
            .program
            .steps()
            .iter()
            .flat_map(|s| s.comm.messages().iter())
            .filter(|m| m.is_self_message())
            .count();
        assert!(self_msgs > 0, "local transfers must be recorded");
    }

    #[test]
    fn loads_parallel_program_and_count_ops() {
        let g = gen(24, 4, 3);
        assert_eq!(g.loads.len(), g.program.len());
        let visits: u64 = g
            .loads
            .iter()
            .flat_map(|l| l.visits.iter())
            .map(|&v| v as u64)
            .sum();
        assert_eq!(visits, g.op_totals.iter().sum::<u64>());
        // Op4 touches 3 blocks, Op2/3 two, Op1 one.
        let touches: u64 = g
            .loads
            .iter()
            .flat_map(|l| l.touches.iter())
            .map(|t| t.len() as u64)
            .sum();
        let want = g.op_totals[0] + 2 * g.op_totals[1] + 2 * g.op_totals[2] + 3 * g.op_totals[3];
        assert_eq!(touches, want);
    }

    #[test]
    fn message_sizes_are_factor_or_block() {
        let g = gen(24, 4, 3);
        let (fb, bb) = (factor_bytes(4), full_block_bytes(4));
        for s in g.program.steps() {
            for m in s.comm.messages() {
                assert!(
                    m.bytes == fb || m.bytes == bb,
                    "unexpected size {}",
                    m.bytes
                );
            }
        }
        assert_eq!(g.block_bytes(), bb);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_nondividing_block() {
        let _ = gen(10, 3, 2);
    }

    #[test]
    fn byte_helpers() {
        assert_eq!(full_block_bytes(10), 800);
        assert_eq!(factor_bytes(10), 8 * 55);
    }
}
