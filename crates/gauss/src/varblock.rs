//! Variable-sized blocks — the paper's §7 future work ("analyzing the
//! program simulation … for variable-sized blocks"), implemented.
//!
//! The matrix is split by an arbitrary *partition* (a list of block
//! widths); block `(i, j)` is `partition[i] × partition[j]`. The wavefront
//! schedule is the same dependency-level construction as the uniform
//! generator; computation is charged through
//! [`blockops::CostModel::op_cost_rect`], and messages carry the actual
//! rectangular block sizes. Because the "whole volume of data divided into
//! equal-sized basic blocks" restriction is lifted, the cache-relevant
//! address ranges are per-block rather than uniform.

use blockops::{CostModel, OpClass};
use commsim::CommPattern;
use loggp::Time;
use predsim_core::{Layout, Program, Step, StepLoad};
use std::collections::BTreeSet;

/// A generated variable-block elimination program.
#[derive(Clone, Debug)]
pub struct VarGeProgram {
    /// The oblivious program (one step per wavefront level).
    pub program: Program,
    /// Work profiles parallel to the steps.
    pub loads: Vec<StepLoad>,
    /// Matrix dimension.
    pub n: usize,
    /// The block partition used.
    pub partition: Vec<usize>,
    /// Processor count.
    pub procs: usize,
}

/// Uniform partition helper: `count` blocks of width `b`.
pub fn uniform_partition(b: usize, count: usize) -> Vec<usize> {
    vec![b; count]
}

/// A geometrically graded partition of `n`: widths grow (ratio > 1) or
/// shrink (ratio < 1) from `first` by `ratio` per block, never dropping
/// below `min_width` (shrinking ratios would otherwise converge and pad
/// the tail with width-1 blocks), the final block absorbing the
/// remainder. Useful for exploring whether later (smaller trailing
/// submatrix) elimination steps prefer different granularity.
pub fn graded_partition(n: usize, first: usize, ratio: f64, min_width: usize) -> Vec<usize> {
    assert!(first >= 1 && first <= n, "first block must be in 1..=n");
    assert!(ratio > 0.0, "ratio must be positive");
    assert!(min_width >= 1, "min_width must be at least 1");
    let mut widths = Vec::new();
    let mut remaining = n;
    let mut w = first as f64;
    while remaining > 0 {
        let take = (w.round() as usize).max(min_width).clamp(1, remaining);
        widths.push(take);
        remaining -= take;
        w *= ratio;
    }
    widths
}

/// Generate the variable-block elimination trace.
///
/// # Panics
/// Panics if the partition is empty, has zero-width blocks, or does not
/// sum to `n`.
#[allow(clippy::needless_range_loop)]
pub fn generate_var(
    n: usize,
    partition: &[usize],
    layout: &dyn Layout,
    cost: &dyn CostModel,
) -> VarGeProgram {
    assert!(!partition.is_empty(), "empty partition");
    assert!(partition.iter().all(|&w| w > 0), "zero-width block");
    assert_eq!(
        partition.iter().sum::<usize>(),
        n,
        "partition must sum to the matrix size"
    );
    let nb = partition.len();
    let procs = layout.procs();
    assert!(procs > 0);

    // Address layout for the cache model: row-major block table with
    // prefix byte offsets.
    let block_bytes = |i: usize, j: usize| 8 * partition[i] * partition[j];
    let mut block_base = vec![vec![0u64; nb]; nb];
    let mut cursor = 0u64;
    for i in 0..nb {
        for j in 0..nb {
            block_base[i][j] = cursor;
            cursor += block_bytes(i, j) as u64;
        }
    }

    let owner = |i: usize, j: usize| layout.owner(i, j);
    let factor_bytes = |k: usize| 8 * (partition[k] * (partition[k] + 1)) / 2;

    let mut lvl4_prev = vec![vec![0u32; nb]; nb];
    let mut comp: Vec<Vec<Time>> = Vec::new();
    let mut loads: Vec<StepLoad> = Vec::new();
    let mut msgs: Vec<Vec<(usize, usize, usize)>> = Vec::new();

    let ensure_level = |lvl: u32,
                        comp: &mut Vec<Vec<Time>>,
                        loads: &mut Vec<StepLoad>,
                        msgs: &mut Vec<Vec<(usize, usize, usize)>>| {
        while comp.len() < lvl as usize {
            comp.push(vec![Time::ZERO; procs]);
            loads.push(StepLoad::new(procs));
            msgs.push(Vec::new());
        }
    };

    for k in 0..nb {
        let wk = partition[k];

        // Op1 on the (square) diagonal block.
        let l1 = 1 + lvl4_prev[k][k];
        ensure_level(l1, &mut comp, &mut loads, &mut msgs);
        let p_diag = owner(k, k);
        {
            let idx = l1 as usize - 1;
            comp[idx][p_diag] += cost.op_cost_rect(OpClass::Op1, wk, wk, wk);
            loads[idx].add_visits(p_diag, 1);
            loads[idx].touch(p_diag, block_base[k][k], block_bytes(k, k) as u32);
            let row_dsts: BTreeSet<usize> = (k + 1..nb).map(|j| owner(k, j)).collect();
            let col_dsts: BTreeSet<usize> = (k + 1..nb).map(|i| owner(i, k)).collect();
            for dst in row_dsts {
                msgs[idx].push((p_diag, dst, factor_bytes(k)));
            }
            for dst in col_dsts {
                msgs[idx].push((p_diag, dst, factor_bytes(k)));
            }
        }

        // Panels.
        let mut l2 = vec![0u32; nb];
        let mut l3 = vec![0u32; nb];
        for j in k + 1..nb {
            let lvl = 1 + l1.max(lvl4_prev[k][j]);
            l2[j] = lvl;
            ensure_level(lvl, &mut comp, &mut loads, &mut msgs);
            let idx = lvl as usize - 1;
            let p = owner(k, j);
            comp[idx][p] += cost.op_cost_rect(OpClass::Op2, wk, partition[j], wk);
            loads[idx].add_visits(p, 1);
            loads[idx].touch(p, block_base[k][j], block_bytes(k, j) as u32);
            loads[idx].touch(p, block_base[k][k], block_bytes(k, k) as u32);
            let dsts: BTreeSet<usize> = (k + 1..nb).map(|i| owner(i, j)).collect();
            for dst in dsts {
                msgs[idx].push((p, dst, block_bytes(k, j)));
            }
        }
        for i in k + 1..nb {
            let lvl = 1 + l1.max(lvl4_prev[i][k]);
            l3[i] = lvl;
            ensure_level(lvl, &mut comp, &mut loads, &mut msgs);
            let idx = lvl as usize - 1;
            let p = owner(i, k);
            comp[idx][p] += cost.op_cost_rect(OpClass::Op3, partition[i], wk, wk);
            loads[idx].add_visits(p, 1);
            loads[idx].touch(p, block_base[i][k], block_bytes(i, k) as u32);
            loads[idx].touch(p, block_base[k][k], block_bytes(k, k) as u32);
            let dsts: BTreeSet<usize> = (k + 1..nb).map(|j| owner(i, j)).collect();
            for dst in dsts {
                msgs[idx].push((p, dst, block_bytes(i, k)));
            }
        }

        // Interior updates.
        for i in k + 1..nb {
            for j in k + 1..nb {
                let lvl = 1 + l2[j].max(l3[i]).max(lvl4_prev[i][j]);
                lvl4_prev[i][j] = lvl;
                ensure_level(lvl, &mut comp, &mut loads, &mut msgs);
                let idx = lvl as usize - 1;
                let p = owner(i, j);
                comp[idx][p] += cost.op_cost_rect(OpClass::Op4, partition[i], partition[j], wk);
                loads[idx].add_visits(p, 1);
                loads[idx].touch(p, block_base[i][j], block_bytes(i, j) as u32);
                loads[idx].touch(p, block_base[i][k], block_bytes(i, k) as u32);
                loads[idx].touch(p, block_base[k][j], block_bytes(k, j) as u32);
            }
        }
    }

    let mut program = Program::new(procs);
    for (idx, comp_lvl) in comp.into_iter().enumerate() {
        let mut pattern = CommPattern::new(procs);
        for &(src, dst, bytes) in &msgs[idx] {
            pattern.add(src, dst, bytes);
        }
        program.push(
            Step::new(format!("wave {}", idx + 1))
                .with_comp(comp_lvl)
                .with_comm(pattern),
        );
    }

    VarGeProgram {
        program,
        loads,
        n,
        partition: partition.to_vec(),
        procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockops::AnalyticCost;
    use commsim::SimConfig;
    use loggp::presets;
    use predsim_core::{simulate_program, Diagonal, SimOptions};

    fn sim(n: usize, partition: &[usize], procs: usize) -> Time {
        let g = generate_var(
            n,
            partition,
            &Diagonal::new(procs),
            &AnalyticCost::paper_default(),
        );
        let cfg = SimConfig::new(presets::meiko_cs2(procs));
        simulate_program(&g.program, &SimOptions::new(cfg)).total
    }

    #[test]
    fn uniform_partition_matches_uniform_generator() {
        let (n, b, procs) = (120, 20, 4);
        let layout = Diagonal::new(procs);
        let cost = AnalyticCost::paper_default();
        let var = generate_var(n, &uniform_partition(b, n / b), &layout, &cost);
        let uni = crate::trace::generate(n, b, &layout, &cost);
        // Same step structure and computation loads.
        assert_eq!(var.program.len(), uni.program.len());
        assert_eq!(var.program.comp_load(), uni.program.comp_load());
        // Identical message multisets per step.
        for (vs, us) in var.program.steps().iter().zip(uni.program.steps()) {
            let key = |p: &CommPattern| {
                let mut v: Vec<(usize, usize, usize)> = p
                    .messages()
                    .iter()
                    .map(|m| (m.src, m.dst, m.bytes))
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(key(&vs.comm), key(&us.comm), "step {}", vs.label);
        }
        // And therefore identical predictions.
        let cfg = SimConfig::new(presets::meiko_cs2(procs));
        assert_eq!(
            simulate_program(&var.program, &SimOptions::new(cfg)).total,
            simulate_program(&uni.program, &SimOptions::new(cfg)).total,
        );
    }

    #[test]
    fn graded_partition_sums_to_n() {
        for (n, first, ratio) in [
            (960, 10, 1.3),
            (960, 120, 0.7),
            (100, 100, 1.0),
            (97, 13, 1.1),
        ] {
            let p = graded_partition(n, first, ratio, 8);
            assert_eq!(
                p.iter().sum::<usize>(),
                n,
                "n={n} first={first} ratio={ratio}"
            );
            assert!(p.iter().all(|&w| w >= 1));
        }
    }

    #[test]
    fn graded_partitions_simulate() {
        let n = 120;
        let grow = graded_partition(n, 10, 1.4, 4);
        let shrink = graded_partition(n, 40, 0.7, 4);
        let t_grow = sim(n, &grow, 4);
        let t_shrink = sim(n, &shrink, 4);
        assert!(t_grow > Time::ZERO && t_shrink > Time::ZERO);
        // Different granularity schedules genuinely differ.
        assert_ne!(t_grow, t_shrink);
    }

    #[test]
    fn single_block_partition_is_sequential() {
        let g = generate_var(64, &[64], &Diagonal::new(4), &AnalyticCost::paper_default());
        assert_eq!(g.program.len(), 1);
        assert_eq!(g.program.total_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "sum to the matrix size")]
    fn partition_sum_checked() {
        let _ = generate_var(
            10,
            &[4, 4],
            &Diagonal::new(2),
            &AnalyticCost::paper_default(),
        );
    }
}
