//! The blocked parallel Gaussian elimination of the paper's evaluation
//! (§5–§6): trace generation for the predictor, plus a real multithreaded
//! execution for numerical validation.
//!
//! "The parallel version of the algorithm … is based on the observation
//! that each iteration of the sequential algorithm can be regarded as a
//! diagonal wave traversing the matrix from the upper left corner to the
//! lower right corner." [`trace::generate`] derives that wave exactly: it
//! builds the dependency DAG of the blocked elimination's basic operations
//! (Op1–Op4 on a grid of B×B blocks), groups tasks by dependency level
//! (the wavefronts), charges each processor the cost-model time of the
//! operations it owns per wave, and emits one communication pattern per
//! wave for the block transfers that cross processors — the oblivious
//! [`predsim_core::Program`] the predictor consumes.
//!
//! [`parallel::factorize`] executes the same schedule with real `f64`
//! arithmetic on real threads (crossbeam channels carrying blocks), and is
//! checked against the sequential reference — this is the repo's substitute
//! for the paper's Split-C implementation on the Meiko CS-2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;
pub mod trace;
pub mod varblock;

pub use trace::{generate, GeProgram};

/// The paper's matrix size: 960 × 960 elements.
///
/// The scan reads "9?? × 9?? matrix … divided into blocks"; 960 is the
/// value in that range divisible by every recovered block size.
pub const MATRIX_N: usize = 960;

/// The paper's block-size candidate set (divisors of [`MATRIX_N`] from 10
/// to 160; fourteen values, matching the count in the scan).
pub const PAPER_BLOCK_SIZES: [usize; 14] =
    [10, 12, 15, 16, 20, 24, 30, 40, 48, 60, 80, 96, 120, 160];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sizes_divide_matrix() {
        for b in PAPER_BLOCK_SIZES {
            assert_eq!(MATRIX_N % b, 0, "{b} does not divide {MATRIX_N}");
        }
    }

    #[test]
    fn block_sizes_sorted_unique() {
        let mut sorted = PAPER_BLOCK_SIZES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, PAPER_BLOCK_SIZES.to_vec());
    }
}
