//! Property-based tests for the elimination trace generator and the
//! threaded execution.

use blockops::{AnalyticCost, CostModel, Matrix, OpClass};
use gauss::varblock::{generate_var, graded_partition};
use loggp::Time;
use predsim_core::{Diagonal, Layout, RowCyclic};
use proptest::prelude::*;

fn divisor_pairs(n: usize) -> Vec<usize> {
    (1..=n).filter(|b| n.is_multiple_of(*b)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trace invariants hold for random (n, b, layout): op counts follow
    /// the closed formulas, loads parallel the program, message sizes are
    /// the two legal ones.
    #[test]
    fn trace_invariants(
        nb in 2usize..7,
        b in prop_oneof![Just(2usize), Just(3), Just(5), Just(8)],
        procs in 1usize..9,
        diag in proptest::bool::ANY,
    ) {
        let n = nb * b;
        let layout: Box<dyn Layout> = if diag {
            Box::new(Diagonal::new(procs))
        } else {
            Box::new(RowCyclic::new(procs))
        };
        let g = gauss::generate(n, b, layout.as_ref(), &AnalyticCost::paper_default());
        let nb64 = nb as u64;
        prop_assert_eq!(g.op_totals[0], nb64);
        let panels: u64 = (0..nb64).map(|k| nb64 - k - 1).sum();
        prop_assert_eq!(g.op_totals[1], panels);
        prop_assert_eq!(g.op_totals[2], panels);
        prop_assert_eq!(g.loads.len(), g.program.len());
        let (fb, bb) = (gauss::trace::factor_bytes(b), gauss::trace::full_block_bytes(b));
        for s in g.program.steps() {
            for m in s.comm.messages() {
                prop_assert!(m.bytes == fb || m.bytes == bb);
            }
        }
    }

    /// Total charged computation is layout-invariant (the layout moves
    /// work around, never creates or destroys it).
    #[test]
    fn comp_total_layout_invariant(nb in 2usize..6, procs in 1usize..8) {
        let (n, b) = (nb * 4, 4);
        let cost = AnalyticCost::paper_default();
        let sum = |layout: &dyn Layout| -> Time {
            gauss::generate(n, b, layout, &cost).program.comp_load().iter().copied().sum()
        };
        let d = sum(&Diagonal::new(procs));
        let r = sum(&RowCyclic::new(procs));
        prop_assert_eq!(d, r);
        // And equals the op-count dot op-cost product.
        let g = gauss::generate(n, b, &Diagonal::new(procs), &cost);
        let want = OpClass::ALL
            .iter()
            .enumerate()
            .map(|(i, &op)| cost.op_cost(op, b) * g.op_totals[i])
            .sum::<Time>();
        prop_assert_eq!(d, want);
    }

    /// The threaded factorization matches the sequential one for random
    /// shapes and layouts.
    #[test]
    fn parallel_matches_sequential(
        n_idx in 0usize..3,
        b_idx in any::<prop::sample::Index>(),
        procs in 1usize..6,
        seed in any::<u64>(),
    ) {
        let n = [12usize, 24, 30][n_idx];
        let bs = divisor_pairs(n);
        let b = bs[b_idx.index(bs.len())];
        let a = Matrix::random_diag_dominant(n, seed);
        let run = gauss::parallel::factorize(&a, b, &Diagonal::new(procs));
        let mut want = a.clone();
        blockops::lu::lu_in_place(&mut want).unwrap();
        prop_assert!(
            run.factored.approx_eq(&want, 1e-6),
            "n={n} b={b} procs={procs} diff={}",
            run.factored.max_abs_diff(&want)
        );
    }

    /// Variable partitions: any random partition of n produces a program
    /// whose total computation matches summing op_cost_rect over its own
    /// task list — i.e. the generator loses no work.
    // Indices are block coordinates, mirroring the generator's loops.
    #[allow(clippy::needless_range_loop)]
    #[test]
    fn varblock_partitions_conserve_work(
        widths in proptest::collection::vec(1usize..9, 1..8),
        procs in 1usize..6,
    ) {
        let n: usize = widths.iter().sum();
        let cost = AnalyticCost::paper_default();
        let g = generate_var(n, &widths, &Diagonal::new(procs), &cost);
        let total: Time = g.program.comp_load().iter().copied().sum();
        // Recompute independently.
        let nb = widths.len();
        let mut want = Time::ZERO;
        for k in 0..nb {
            let wk = widths[k];
            want += cost.op_cost_rect(OpClass::Op1, wk, wk, wk);
            for j in k + 1..nb {
                want += cost.op_cost_rect(OpClass::Op2, wk, widths[j], wk);
            }
            for i in k + 1..nb {
                want += cost.op_cost_rect(OpClass::Op3, widths[i], wk, wk);
            }
            for i in k + 1..nb {
                for j in k + 1..nb {
                    want += cost.op_cost_rect(OpClass::Op4, widths[i], widths[j], wk);
                }
            }
        }
        prop_assert_eq!(total, want);
    }

    /// Graded partitions always cover n with widths >= the floor.
    #[test]
    fn graded_partition_well_formed(
        n in 20usize..400,
        first in 1usize..40,
        ratio in 0.5f64..2.0,
        floor in 1usize..12,
    ) {
        let first = first.min(n);
        let p = graded_partition(n, first, ratio, floor);
        prop_assert_eq!(p.iter().sum::<usize>(), n);
        // All but possibly the final remainder block respect the floor.
        for &w in &p[..p.len() - 1] {
            prop_assert!(w >= floor.min(n));
        }
    }
}
