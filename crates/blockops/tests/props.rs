//! Property-based tests for the linear-algebra substrate.

use blockops::gemm::{gemm_acc, gemm_sub, matmul};
use blockops::lu::{lu_in_place, lu_residual, solve};
use blockops::ops::blocked_lu_in_place;
use blockops::tri::{invert_unit_lower, invert_upper, solve_unit_lower};
use blockops::{Matrix, OpClass};
use proptest::prelude::*;

fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|b| n.is_multiple_of(*b)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LU without pivoting factors every diagonally dominant matrix with a
    /// small residual.
    #[test]
    fn lu_factors_diag_dominant(n in 1usize..24, seed in any::<u64>()) {
        let orig = Matrix::random_diag_dominant(n, seed);
        let mut packed = orig.clone();
        lu_in_place(&mut packed).unwrap();
        prop_assert!(lu_residual(&orig, &packed) < 1e-8 * n as f64);
    }

    /// Blocked elimination via Op1–Op4 agrees with the unblocked algorithm
    /// for every block size that divides the matrix.
    #[test]
    fn blocked_matches_unblocked(nb in 1usize..5, b_idx in any::<prop::sample::Index>(), seed in any::<u64>()) {
        let n = nb * 6;
        let bs = divisors(n);
        let b = bs[b_idx.index(bs.len())];
        let orig = Matrix::random_diag_dominant(n, seed);
        let mut blocked = orig.clone();
        blocked_lu_in_place(&mut blocked, b).unwrap();
        let mut unblocked = orig.clone();
        lu_in_place(&mut unblocked).unwrap();
        prop_assert!(
            blocked.approx_eq(&unblocked, 1e-6),
            "n={n} b={b} diff={}", blocked.max_abs_diff(&unblocked)
        );
    }

    /// Solving A·x = b recovers x for diagonally dominant A.
    #[test]
    fn solve_roundtrip(n in 1usize..20, seed in any::<u64>()) {
        let a = Matrix::random_diag_dominant(n, seed);
        let x_true = Matrix::random(n, 1, seed ^ 0xabcd);
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[(i, j)] * x_true[(j, 0)]).sum())
            .collect();
        let x = solve(&a, &b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - x_true[(i, 0)]).abs() < 1e-7);
        }
    }

    /// Triangular inverses really invert.
    #[test]
    fn triangular_inverses(n in 1usize..16, seed in any::<u64>()) {
        let mut a = Matrix::random_diag_dominant(n, seed);
        lu_in_place(&mut a).unwrap();
        let (l, u) = blockops::lu::split_lu(&a);
        let id = Matrix::identity(n);
        prop_assert!(matmul(&l, &invert_unit_lower(&l)).approx_eq(&id, 1e-8));
        prop_assert!(matmul(&invert_upper(&u), &u).approx_eq(&id, 1e-7));
    }

    /// GEMM distributes over addition: (A+A')·B == A·B + A'·B.
    #[test]
    fn gemm_distributes(n in 1usize..10, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a1 = Matrix::random(n, n, s1);
        let a2 = Matrix::random(n, n, s2);
        let b = Matrix::random(n, n, s1 ^ s2);
        let mut sum = a1.clone();
        for i in 0..n {
            for j in 0..n {
                sum[(i, j)] += a2[(i, j)];
            }
        }
        let lhs = matmul(&sum, &b);
        let mut rhs = matmul(&a1, &b);
        gemm_acc(&mut rhs, &a2, &b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    /// gemm_sub is the inverse of gemm_acc.
    #[test]
    fn sub_inverts_acc(n in 1usize..10, seed in any::<u64>()) {
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed.wrapping_add(1));
        let orig = Matrix::random(n, n, seed.wrapping_add(2));
        let mut c = orig.clone();
        gemm_acc(&mut c, &a, &b);
        gemm_sub(&mut c, &a, &b);
        prop_assert!(c.approx_eq(&orig, 1e-9));
    }

    /// Forward solve agrees with multiplying by the inverse.
    #[test]
    fn solve_matches_inverse(n in 1usize..12, seed in any::<u64>()) {
        let mut a = Matrix::random_diag_dominant(n, seed);
        lu_in_place(&mut a).unwrap();
        let (l, _) = blockops::lu::split_lu(&a);
        let b = Matrix::random(n, 3, seed ^ 0x1111);
        let by_solve = solve_unit_lower(&l, &b);
        let by_inv = matmul(&invert_unit_lower(&l), &b);
        prop_assert!(by_solve.approx_eq(&by_inv, 1e-8));
    }

    /// Transpose reverses products: (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn transpose_reverses_product(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in any::<u64>()) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed.wrapping_add(9));
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    /// Analytic op costs are strictly positive and strictly increasing in
    /// block size for every operation.
    #[test]
    fn analytic_costs_increase(b in 1usize..200) {
        let m = blockops::AnalyticCost::paper_default();
        use blockops::CostModel;
        for op in OpClass::ALL {
            prop_assert!(m.op_cost(op, b) > loggp::Time::ZERO);
            prop_assert!(m.op_cost(op, b + 1) > m.op_cost(op, b));
        }
    }
}
