//! Cost models: mapping `(basic operation, block size)` to simulated time.
//!
//! The paper's prediction pipeline measures the running time of each basic
//! operation per block size once, then charges those costs along the
//! simulated control flow. Three models are provided:
//!
//! * [`MeasuredCost`] — times the real Rust implementations on the host
//!   (medians over repetitions), exactly the paper's methodology;
//! * [`AnalyticCost`] — a deterministic polynomial model
//!   `c₃·B³ + c₂·B² + c₁·B + c₀` per operation, with default coefficients
//!   chosen to reproduce the paper's Figure 6 *shape*: for small blocks
//!   Op1 (triangularize + invert) is the most expensive; around B ≈ 40 the
//!   four curves meet; for large blocks the multiply-update Op4 costs about
//!   twice Op1. Used everywhere determinism matters (tests, simulations);
//! * [`TableCost`] — explicit per-entry costs (e.g. imported measurements).

use crate::matrix::Matrix;
use crate::ops;
use loggp::Time;
use std::collections::HashMap;
use std::sync::Mutex;

/// The four basic operations of the blocked elimination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Triangularize the diagonal block and invert its factors.
    Op1,
    /// Row-panel update with `L⁻¹`.
    Op2,
    /// Column-panel update with `U⁻¹`.
    Op3,
    /// Interior multiply-subtract update.
    Op4,
}

impl OpClass {
    /// All four operations, in order.
    pub const ALL: [OpClass; 4] = [OpClass::Op1, OpClass::Op2, OpClass::Op3, OpClass::Op4];

    /// Display name ("Op1" … "Op4").
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Op1 => "Op1",
            OpClass::Op2 => "Op2",
            OpClass::Op3 => "Op3",
            OpClass::Op4 => "Op4",
        }
    }

    /// Floating-point operation count of this operation on a `b × b`
    /// block (leading terms; used by the analytic model and by
    /// machine-balance analyses).
    pub fn flops(self, b: usize) -> u64 {
        let b3 = (b as u64).pow(3);
        let b2 = (b as u64).pow(2);
        match self {
            // LU (≈2/3·b³) + two triangular inversions (≈2·b³/3 together).
            OpClass::Op1 => 4 * b3 / 3 + 2 * b2,
            // Triangular × general multiply.
            OpClass::Op2 | OpClass::Op3 => b3 + b2,
            // General multiply-subtract.
            OpClass::Op4 => 2 * b3,
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A model of basic-operation running time.
pub trait CostModel: Send + Sync {
    /// Simulated running time of `op` on a `b × b` block.
    fn op_cost(&self, op: OpClass, b: usize) -> Time;

    /// Simulated running time of `op` on a **rectangular** operand — the
    /// variable-sized-blocks extension (paper §7). `rows × cols` is the
    /// target block; `inner` is the contraction dimension (for Op4 the
    /// shared dimension of the two source panels; for Op2/Op3 the
    /// triangular factor's order; ignored for Op1, whose block is square).
    ///
    /// The default maps the rectangle onto the square model at the
    /// *cube-equivalent* edge `b_eff = ⌈(rows·cols·inner)^(1/3)⌋` — the
    /// square block with the same cubic work volume — which keeps any
    /// square-calibrated model usable on variable partitions. Models with
    /// genuinely rectangular calibrations override this.
    fn op_cost_rect(&self, op: OpClass, rows: usize, cols: usize, inner: usize) -> Time {
        let b_eff = cube_equivalent_edge(rows, cols, inner);
        self.op_cost(op, b_eff)
    }

    /// Human-readable model name (for reports).
    fn model_name(&self) -> &str;
}

/// The square-block edge with the same cubic work volume as a
/// `rows × cols × inner` operation: `round((rows·cols·inner)^(1/3))`,
/// at least 1.
pub fn cube_equivalent_edge(rows: usize, cols: usize, inner: usize) -> usize {
    let volume = (rows as f64) * (cols as f64) * (inner as f64);
    (volume.cbrt().round() as usize).max(1)
}

/// Polynomial cost per operation: `c₃·B³ + c₂·B² + c₁·B + c₀`, all
/// coefficients in picoseconds.
#[derive(Clone, Copy, Debug)]
pub struct PolyCost {
    /// Cubic coefficient (ps per element³).
    pub c3: u64,
    /// Quadratic coefficient (ps per element²).
    pub c2: u64,
    /// Linear coefficient (ps per element).
    pub c1: u64,
    /// Fixed per-invocation overhead (ps).
    pub c0: u64,
}

impl PolyCost {
    /// Evaluate at block size `b`.
    pub fn eval(&self, b: usize) -> Time {
        let b = b as u64;
        Time::from_ps(self.c3 * b.pow(3) + self.c2 * b.pow(2) + self.c1 * b + self.c0)
    }
}

/// Deterministic analytic cost model (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct AnalyticCost {
    coeffs: [PolyCost; 4],
    name: &'static str,
}

/// Picoseconds per floating-point operation of the default analytic node:
/// 25 ns/flop ≈ 40 MFLOPS, a CS-2-era SuperSPARC.
pub const DEFAULT_PS_PER_FLOP: u64 = 25_000;

impl AnalyticCost {
    /// The default model. Coefficients (f = 25 ns/flop):
    ///
    /// | op | c₃ | c₂ | c₀ | rationale |
    /// |----|----|----|----|-----------|
    /// | Op1 | 1·f | 40·f | 20 µs | factor+invert: cubic work with a heavy per-row/call overhead that dominates small blocks |
    /// | Op2, Op3 | 1.2·f | 8·f | 10 µs | triangular multiply, slightly worse locality |
    /// | Op4 | 2·f | 2·f | 8 µs | plain GEMM-subtract: biggest cubic term, tiny overhead |
    ///
    /// Solving Op1 = Op4 gives a crossover near B ≈ 41; below it Op1 is the
    /// most expensive operation, above it Op4 — the paper's Figure 6.
    pub fn paper_default() -> Self {
        let f = DEFAULT_PS_PER_FLOP;
        AnalyticCost {
            coeffs: [
                PolyCost {
                    c3: f,
                    c2: 40 * f,
                    c1: 0,
                    c0: 20_000_000,
                }, // Op1
                PolyCost {
                    c3: 12 * f / 10,
                    c2: 8 * f,
                    c1: 0,
                    c0: 10_000_000,
                }, // Op2
                PolyCost {
                    c3: 12 * f / 10,
                    c2: 8 * f,
                    c1: 0,
                    c0: 10_000_000,
                }, // Op3
                PolyCost {
                    c3: 2 * f,
                    c2: 2 * f,
                    c1: 0,
                    c0: 8_000_000,
                }, // Op4
            ],
            name: "analytic(paper-default)",
        }
    }

    /// A model with explicit per-op polynomials (Op1..Op4 order).
    pub fn with_coeffs(coeffs: [PolyCost; 4]) -> Self {
        AnalyticCost {
            coeffs,
            name: "analytic(custom)",
        }
    }

    /// The polynomial for one operation.
    pub fn poly(&self, op: OpClass) -> PolyCost {
        self.coeffs[op_index(op)]
    }
}

fn op_index(op: OpClass) -> usize {
    match op {
        OpClass::Op1 => 0,
        OpClass::Op2 => 1,
        OpClass::Op3 => 2,
        OpClass::Op4 => 3,
    }
}

impl CostModel for AnalyticCost {
    fn op_cost(&self, op: OpClass, b: usize) -> Time {
        self.coeffs[op_index(op)].eval(b)
    }

    fn model_name(&self) -> &str {
        self.name
    }
}

/// Explicit cost table.
#[derive(Clone, Debug, Default)]
pub struct TableCost {
    map: HashMap<(OpClass, usize), Time>,
    name: String,
}

impl TableCost {
    /// An empty table with a name.
    pub fn new(name: impl Into<String>) -> Self {
        TableCost {
            map: HashMap::new(),
            name: name.into(),
        }
    }

    /// Record the cost of `(op, b)`.
    pub fn insert(&mut self, op: OpClass, b: usize, cost: Time) {
        self.map.insert((op, b), cost);
    }

    /// Look up a cost, if present.
    pub fn get(&self, op: OpClass, b: usize) -> Option<Time> {
        self.map.get(&(op, b)).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl CostModel for TableCost {
    fn op_cost(&self, op: OpClass, b: usize) -> Time {
        self.get(op, b)
            .unwrap_or_else(|| panic!("TableCost '{}' has no entry for {op} at B={b}", self.name))
    }

    fn model_name(&self) -> &str {
        &self.name
    }
}

/// Host-measured cost model: runs the real basic operations on random
/// diagonally dominant blocks and takes the median wall-clock time of
/// `reps` repetitions. Results are cached per `(op, b)`, so the first call
/// for a new pair is expensive. This is the paper's own methodology ("we
/// implemented the basic block operations … and we measured the running
/// time of each operation for different block sizes"), and therefore
/// intentionally *not* deterministic across hosts.
pub struct MeasuredCost {
    cache: Mutex<HashMap<(OpClass, usize), Time>>,
    reps: usize,
}

impl MeasuredCost {
    /// A model that medians over `reps` repetitions per measurement.
    pub fn new(reps: usize) -> Self {
        MeasuredCost {
            cache: Mutex::new(HashMap::new()),
            reps: reps.max(1),
        }
    }

    /// Measure every `(op, b)` pair up front (e.g. before a sweep).
    pub fn precalibrate(&self, block_sizes: &[usize]) {
        for &b in block_sizes {
            for op in OpClass::ALL {
                let _ = self.op_cost(op, b);
            }
        }
    }

    fn measure(op: OpClass, b: usize, reps: usize) -> Time {
        let mut samples = Vec::with_capacity(reps);
        for rep in 0..reps {
            let seed = (b as u64) << 8 | rep as u64;
            let elapsed = match op {
                OpClass::Op1 => {
                    let mut blk = Matrix::random_diag_dominant(b, seed);
                    let t0 = std::time::Instant::now();
                    let f = ops::op1_diagonal(&mut blk).expect("diag dominant block factors");
                    let dt = t0.elapsed();
                    std::hint::black_box(&f);
                    dt
                }
                OpClass::Op2 => {
                    let mut diag = Matrix::random_diag_dominant(b, seed);
                    let f = ops::op1_diagonal(&mut diag).unwrap();
                    let mut blk = Matrix::random(b, b, seed + 1);
                    let t0 = std::time::Instant::now();
                    ops::op2_row_panel(&mut blk, &f.l_inv);
                    let dt = t0.elapsed();
                    std::hint::black_box(&blk);
                    dt
                }
                OpClass::Op3 => {
                    let mut diag = Matrix::random_diag_dominant(b, seed);
                    let f = ops::op1_diagonal(&mut diag).unwrap();
                    let mut blk = Matrix::random(b, b, seed + 2);
                    let t0 = std::time::Instant::now();
                    ops::op3_col_panel(&mut blk, &f.u_inv);
                    let dt = t0.elapsed();
                    std::hint::black_box(&blk);
                    dt
                }
                OpClass::Op4 => {
                    let a = Matrix::random(b, b, seed + 3);
                    let c = Matrix::random(b, b, seed + 4);
                    let mut blk = Matrix::random(b, b, seed + 5);
                    let t0 = std::time::Instant::now();
                    ops::op4_interior(&mut blk, &a, &c);
                    let dt = t0.elapsed();
                    std::hint::black_box(&blk);
                    dt
                }
            };
            samples.push(elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        Time::from_ps((median.as_nanos() as u64).saturating_mul(1_000).max(1))
    }
}

impl CostModel for MeasuredCost {
    fn op_cost(&self, op: OpClass, b: usize) -> Time {
        let mut cache = self.cache.lock().expect("cost cache poisoned");
        *cache
            .entry((op, b))
            .or_insert_with(|| Self::measure(op, b, self.reps))
    }

    fn model_name(&self) -> &str {
        "measured(host)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_sane() {
        assert!(OpClass::Op4.flops(10) > OpClass::Op2.flops(10));
        assert_eq!(OpClass::Op4.flops(10), 2_000);
        for op in OpClass::ALL {
            assert!(op.flops(8) > 0);
        }
    }

    #[test]
    fn analytic_reproduces_figure6_shape() {
        let m = AnalyticCost::paper_default();
        // Small blocks: Op1 strictly the most expensive.
        for b in [10, 12, 15, 20] {
            for op in [OpClass::Op2, OpClass::Op3, OpClass::Op4] {
                assert!(
                    m.op_cost(OpClass::Op1, b) > m.op_cost(op, b),
                    "B={b}: Op1 not dominant"
                );
            }
        }
        // Large blocks: Op4 the most expensive, roughly 2x Op1.
        for b in [96, 120, 160] {
            assert!(m.op_cost(OpClass::Op4, b) > m.op_cost(OpClass::Op1, b));
            let ratio =
                m.op_cost(OpClass::Op4, b).as_us_f64() / m.op_cost(OpClass::Op1, b).as_us_f64();
            assert!((1.4..2.4).contains(&ratio), "B={b}: ratio {ratio}");
        }
        // The curves cross: somewhere in 20..96 the most expensive op flips.
        let argmax = |b: usize| {
            OpClass::ALL
                .into_iter()
                .max_by_key(|&op| m.op_cost(op, b))
                .unwrap()
        };
        assert_eq!(argmax(10), OpClass::Op1);
        assert_eq!(argmax(160), OpClass::Op4);
    }

    #[test]
    fn analytic_costs_monotone_in_b() {
        let m = AnalyticCost::paper_default();
        for op in OpClass::ALL {
            let mut prev = Time::ZERO;
            for b in [1, 2, 4, 10, 20, 40, 80, 160] {
                let c = m.op_cost(op, b);
                assert!(c > prev, "{op} at B={b}");
                prev = c;
            }
        }
    }

    #[test]
    fn poly_eval() {
        let p = PolyCost {
            c3: 1,
            c2: 2,
            c1: 3,
            c0: 4,
        };
        assert_eq!(p.eval(10).as_ps(), 1000 + 200 + 30 + 4);
        let m = AnalyticCost::paper_default();
        assert_eq!(m.poly(OpClass::Op4).eval(10), m.op_cost(OpClass::Op4, 10));
    }

    #[test]
    fn table_cost_roundtrips_and_panics_on_miss() {
        let mut t = TableCost::new("test");
        assert!(t.is_empty());
        t.insert(OpClass::Op1, 10, Time::from_us(5.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.op_cost(OpClass::Op1, 10), Time::from_us(5.0));
        assert_eq!(t.get(OpClass::Op2, 10), None);
        let result = std::panic::catch_unwind(|| t.op_cost(OpClass::Op2, 10));
        assert!(result.is_err());
    }

    #[test]
    fn measured_cost_returns_positive_and_caches() {
        let m = MeasuredCost::new(3);
        let a = m.op_cost(OpClass::Op4, 8);
        assert!(a > Time::ZERO);
        // Second call hits the cache and returns the identical value.
        assert_eq!(m.op_cost(OpClass::Op4, 8), a);
    }

    #[test]
    fn measured_cost_grows_with_block_size() {
        let m = MeasuredCost::new(3);
        m.precalibrate(&[4, 64]);
        // A 64x64 GEMM is reliably slower than a 4x4 one on any host.
        assert!(m.op_cost(OpClass::Op4, 64) > m.op_cost(OpClass::Op4, 4));
    }

    #[test]
    fn cube_equivalent_edge_sane() {
        assert_eq!(cube_equivalent_edge(8, 8, 8), 8);
        assert_eq!(cube_equivalent_edge(1, 1, 1), 1);
        assert_eq!(cube_equivalent_edge(0, 5, 5), 1); // clamped
                                                      // 4*8*16 = 512 -> edge 8.
        assert_eq!(cube_equivalent_edge(4, 8, 16), 8);
    }

    #[test]
    fn rect_cost_defaults_to_cube_equivalent() {
        let m = AnalyticCost::paper_default();
        // A square "rectangle" equals the square cost exactly.
        assert_eq!(
            m.op_cost_rect(OpClass::Op4, 12, 12, 12),
            m.op_cost(OpClass::Op4, 12)
        );
        // Same volume, different shape: same default cost.
        assert_eq!(
            m.op_cost_rect(OpClass::Op4, 6, 12, 24),
            m.op_cost_rect(OpClass::Op4, 24, 12, 6)
        );
        // Bigger volume costs more.
        assert!(
            m.op_cost_rect(OpClass::Op2, 10, 20, 10) > m.op_cost_rect(OpClass::Op2, 10, 10, 10)
        );
    }

    #[test]
    fn custom_coeffs_and_names() {
        let c = PolyCost {
            c3: 1,
            c2: 0,
            c1: 0,
            c0: 0,
        };
        let m = AnalyticCost::with_coeffs([c; 4]);
        assert_eq!(m.model_name(), "analytic(custom)");
        assert_eq!(m.op_cost(OpClass::Op1, 10).as_ps(), 1000);
        assert_eq!(
            AnalyticCost::paper_default().model_name(),
            "analytic(paper-default)"
        );
        assert_eq!(MeasuredCost::new(1).model_name(), "measured(host)");
    }
}
