//! The four basic block operations of blocked Gaussian elimination
//! (paper §6.1) and a sequential blocked elimination built from them.
//!
//! "The blocked GE algorithm uses four basic operations to operate on
//! basic blocks": with `A[k][k]` the diagonal block of elimination step
//! `k`, `A[k][j]` a row-panel block, `A[i][k]` a column-panel block and
//! `A[i][j]` an interior block,
//!
//! * **Op1**: factor `A[k][k] = L·U` (triangularization, no pivoting) and
//!   invert both factors — the inverses are what travels to the panels;
//! * **Op2**: `A[k][j] ← L⁻¹ · A[k][j]` (the block becomes `U[k][j]`);
//! * **Op3**: `A[i][k] ← A[i][k] · U⁻¹` (the block becomes `L[i][k]`);
//! * **Op4**: `A[i][j] ← A[i][j] − A[i][k] · A[k][j]` (multiply-subtract).
//!
//! [`blocked_lu_in_place`] runs the full elimination sequentially; the
//! test suite checks it against the unblocked [`crate::lu::lu_in_place`],
//! and the parallel applications check against it in turn.

use crate::gemm::gemm_sub;
use crate::lu::{lu_in_place, split_lu, LuError};
use crate::matrix::Matrix;
use crate::tri::{invert_unit_lower, invert_upper};

/// The product of Op1: the diagonal block's inverted triangular factors.
#[derive(Clone, Debug)]
pub struct DiagFactors {
    /// `L⁻¹` (unit lower) — consumed by Op2 on the pivot row.
    pub l_inv: Matrix,
    /// `U⁻¹` (upper) — consumed by Op3 on the pivot column.
    pub u_inv: Matrix,
}

/// **Op1**: triangularize the diagonal block in place (packed `L\U`
/// layout) and return the inverted factors.
pub fn op1_diagonal(block: &mut Matrix) -> Result<DiagFactors, LuError> {
    lu_in_place(block)?;
    let (l, u) = split_lu(block);
    Ok(DiagFactors {
        l_inv: invert_unit_lower(&l),
        u_inv: invert_upper(&u),
    })
}

/// **Op2**: row-panel update `block ← l_inv · block`.
pub fn op2_row_panel(block: &mut Matrix, l_inv: &Matrix) {
    let updated = crate::gemm::matmul(l_inv, block);
    *block = updated;
}

/// **Op3**: column-panel update `block ← block · u_inv`.
pub fn op3_col_panel(block: &mut Matrix, u_inv: &Matrix) {
    let updated = crate::gemm::matmul(block, u_inv);
    *block = updated;
}

/// **Op4**: interior update `block ← block − a · b`.
pub fn op4_interior(block: &mut Matrix, a: &Matrix, b: &Matrix) {
    gemm_sub(block, a, b);
}

/// Sequential blocked Gaussian elimination without pivoting, operating on
/// an `n × n` matrix as a grid of `b × b` blocks with the four basic
/// operations. On success the matrix holds the packed `L\U` factorization
/// (identical, up to rounding, to the unblocked algorithm's output).
///
/// # Panics
/// Panics if `b` does not divide `n` — the paper's program class requires
/// "equal-sized basic blocks".
pub fn blocked_lu_in_place(a: &mut Matrix, b: usize) -> Result<(), LuError> {
    if !a.is_square() {
        return Err(LuError::NotSquare);
    }
    let n = a.rows();
    assert!(
        b > 0 && n.is_multiple_of(b),
        "block size {b} must divide the matrix size {n}"
    );
    let nb = n / b;

    for k in 0..nb {
        // Op1 on the diagonal block.
        let mut diag = a.block(k * b, k * b, b, b);
        let factors = op1_diagonal(&mut diag)?;
        a.set_block(k * b, k * b, &diag);

        // Op2 along the pivot row.
        for j in k + 1..nb {
            let mut blk = a.block(k * b, j * b, b, b);
            op2_row_panel(&mut blk, &factors.l_inv);
            a.set_block(k * b, j * b, &blk);
        }
        // Op3 down the pivot column.
        for i in k + 1..nb {
            let mut blk = a.block(i * b, k * b, b, b);
            op3_col_panel(&mut blk, &factors.u_inv);
            a.set_block(i * b, k * b, &blk);
        }
        // Op4 on the trailing submatrix.
        for i in k + 1..nb {
            let lik = a.block(i * b, k * b, b, b);
            for j in k + 1..nb {
                let ukj = a.block(k * b, j * b, b, b);
                let mut blk = a.block(i * b, j * b, b, b);
                op4_interior(&mut blk, &lik, &ukj);
                a.set_block(i * b, j * b, &blk);
            }
        }
    }
    Ok(())
}

/// Sequential blocked Gaussian elimination over a **variable partition**
/// (the paper's §7 "variable-sized blocks" future work): `partition[t]` is
/// the width of the `t`-th block row/column; the widths must sum to the
/// matrix size. Diagonal blocks stay square (`partition[k] × partition[k]`)
/// while panels and interior blocks are rectangular — the four basic
/// operations generalize directly because the underlying kernels are
/// shape-generic.
///
/// # Panics
/// Panics if the partition is empty, contains a zero, or does not sum to
/// the matrix dimension.
pub fn blocked_lu_in_place_var(a: &mut Matrix, partition: &[usize]) -> Result<(), LuError> {
    if !a.is_square() {
        return Err(LuError::NotSquare);
    }
    let n = a.rows();
    assert!(!partition.is_empty(), "empty partition");
    assert!(partition.iter().all(|&w| w > 0), "zero-width block");
    assert_eq!(
        partition.iter().sum::<usize>(),
        n,
        "partition must sum to the matrix size"
    );
    let nb = partition.len();
    // Prefix offsets of the block boundaries.
    let mut off = Vec::with_capacity(nb + 1);
    off.push(0usize);
    for &w in partition {
        off.push(off.last().unwrap() + w);
    }

    for k in 0..nb {
        let (rk, wk) = (off[k], partition[k]);
        let mut diag = a.block(rk, rk, wk, wk);
        let factors = op1_diagonal(&mut diag)?;
        a.set_block(rk, rk, &diag);

        for j in k + 1..nb {
            let mut blk = a.block(rk, off[j], wk, partition[j]);
            op2_row_panel(&mut blk, &factors.l_inv);
            a.set_block(rk, off[j], &blk);
        }
        for i in k + 1..nb {
            let mut blk = a.block(off[i], rk, partition[i], wk);
            op3_col_panel(&mut blk, &factors.u_inv);
            a.set_block(off[i], rk, &blk);
        }
        for i in k + 1..nb {
            let lik = a.block(off[i], rk, partition[i], wk);
            for j in k + 1..nb {
                let ukj = a.block(rk, off[j], wk, partition[j]);
                let mut blk = a.block(off[i], off[j], partition[i], partition[j]);
                op4_interior(&mut blk, &lik, &ukj);
                a.set_block(off[i], off[j], &blk);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::lu::lu_residual;

    #[test]
    fn op1_factors_invert_the_block() {
        let orig = Matrix::random_diag_dominant(8, 5);
        let mut blk = orig.clone();
        let f = op1_diagonal(&mut blk).unwrap();
        let (l, u) = split_lu(&blk);
        assert!(matmul(&l, &u).approx_eq(&orig, 1e-9));
        assert!(matmul(&f.l_inv, &l).approx_eq(&Matrix::identity(8), 1e-9));
        assert!(matmul(&u, &f.u_inv).approx_eq(&Matrix::identity(8), 1e-8));
    }

    #[test]
    fn op2_matches_forward_solve() {
        let diag = Matrix::random_diag_dominant(6, 7);
        let mut packed = diag.clone();
        let f = op1_diagonal(&mut packed).unwrap();
        let (l, _) = split_lu(&packed);
        let orig = Matrix::random(6, 6, 8);
        let mut blk = orig.clone();
        op2_row_panel(&mut blk, &f.l_inv);
        let oracle = crate::tri::solve_unit_lower(&l, &orig);
        assert!(blk.approx_eq(&oracle, 1e-8));
    }

    #[test]
    fn op3_matches_right_solve() {
        let diag = Matrix::random_diag_dominant(6, 9);
        let mut packed = diag.clone();
        let f = op1_diagonal(&mut packed).unwrap();
        let (_, u) = split_lu(&packed);
        let orig = Matrix::random(6, 6, 10);
        let mut blk = orig.clone();
        op3_col_panel(&mut blk, &f.u_inv);
        let oracle = crate::tri::solve_upper_right(&orig, &u);
        assert!(blk.approx_eq(&oracle, 1e-8));
    }

    #[test]
    fn op4_is_multiply_subtract() {
        let a = Matrix::random(4, 4, 1);
        let b = Matrix::random(4, 4, 2);
        let orig = Matrix::random(4, 4, 3);
        let mut blk = orig.clone();
        op4_interior(&mut blk, &a, &b);
        let mut want = orig.clone();
        let prod = matmul(&a, &b);
        for i in 0..4 {
            for j in 0..4 {
                want[(i, j)] -= prod[(i, j)];
            }
        }
        assert!(blk.approx_eq(&want, 1e-12));
    }

    #[test]
    fn blocked_lu_matches_unblocked() {
        let n = 24;
        for b in [1, 2, 3, 4, 6, 8, 12, 24] {
            let orig = Matrix::random_diag_dominant(n, 77);
            let mut blocked = orig.clone();
            blocked_lu_in_place(&mut blocked, b).unwrap();
            let mut unblocked = orig.clone();
            lu_in_place(&mut unblocked).unwrap();
            assert!(
                blocked.approx_eq(&unblocked, 1e-7),
                "b={b}, diff={}",
                blocked.max_abs_diff(&unblocked)
            );
            assert!(lu_residual(&orig, &blocked) < 1e-7, "b={b}");
        }
    }

    #[test]
    fn variable_partition_matches_unblocked() {
        let n = 24;
        for partition in [
            vec![24],
            vec![1; 24],
            vec![10, 14],
            vec![3, 5, 7, 9],
            vec![9, 7, 5, 3],
            vec![1, 2, 3, 4, 5, 6, 2, 1],
        ] {
            let orig = Matrix::random_diag_dominant(n, 123);
            let mut var = orig.clone();
            blocked_lu_in_place_var(&mut var, &partition).unwrap();
            let mut unblocked = orig.clone();
            lu_in_place(&mut unblocked).unwrap();
            assert!(
                var.approx_eq(&unblocked, 1e-7),
                "partition {partition:?}: diff {}",
                var.max_abs_diff(&unblocked)
            );
        }
    }

    #[test]
    fn variable_partition_uniform_equals_uniform_blocked() {
        let n = 24;
        let orig = Matrix::random_diag_dominant(n, 5);
        let mut via_var = orig.clone();
        blocked_lu_in_place_var(&mut via_var, &[6; 4]).unwrap();
        let mut via_uniform = orig.clone();
        blocked_lu_in_place(&mut via_uniform, 6).unwrap();
        assert!(via_var.approx_eq(&via_uniform, 1e-12));
    }

    #[test]
    #[should_panic(expected = "sum to the matrix size")]
    fn variable_partition_checks_sum() {
        let mut a = Matrix::random_diag_dominant(10, 1);
        let _ = blocked_lu_in_place_var(&mut a, &[3, 3]);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn variable_partition_rejects_zero() {
        let mut a = Matrix::random_diag_dominant(4, 1);
        let _ = blocked_lu_in_place_var(&mut a, &[0, 4]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn blocked_lu_rejects_nondividing_block() {
        let mut a = Matrix::random_diag_dominant(10, 1);
        let _ = blocked_lu_in_place(&mut a, 3);
    }

    #[test]
    fn blocked_lu_rejects_non_square() {
        let mut a = Matrix::zeros(4, 6);
        assert_eq!(blocked_lu_in_place(&mut a, 2), Err(LuError::NotSquare));
    }

    #[test]
    fn blocked_lu_detects_zero_pivot() {
        let mut a = Matrix::zeros(4, 4); // every pivot zero
        assert!(matches!(
            blocked_lu_in_place(&mut a, 2),
            Err(LuError::ZeroPivot { .. })
        ));
    }
}
