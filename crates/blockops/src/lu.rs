//! Gaussian elimination (LU factorization) **without pivoting** — the
//! paper's algorithm ("we used the Gaussian Elimination algorithm without
//! pivoting").
//!
//! [`lu_in_place`] factors a square matrix `A = L·U` with unit-diagonal
//! `L`, storing both factors packed in `A` (the usual compact layout).
//! [`split_lu`] unpacks them; [`lu_residual`] measures `‖A − L·U‖`.

use crate::gemm::matmul;
use crate::matrix::Matrix;

/// Error from a failed factorization.
#[derive(Clone, Debug, PartialEq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot too close to zero appeared at the given elimination step.
    /// Gaussian elimination *without pivoting* cannot continue (the paper's
    /// workloads avoid this by construction; random diagonally dominant
    /// matrices always factor).
    ZeroPivot {
        /// Elimination step at which the pivot vanished.
        step: usize,
        /// The offending pivot value.
        pivot: f64,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "LU requires a square matrix"),
            LuError::ZeroPivot { step, pivot } => {
                write!(
                    f,
                    "zero pivot {pivot:e} at elimination step {step} (no pivoting)"
                )
            }
        }
    }
}

impl std::error::Error for LuError {}

/// Pivot magnitudes below this abort the factorization.
pub const PIVOT_TOL: f64 = 1e-12;

/// Factor `a = L·U` in place without pivoting. On success `a` holds `U` on
/// and above the diagonal and the sub-diagonal entries of unit-lower `L`
/// below it.
pub fn lu_in_place(a: &mut Matrix) -> Result<(), LuError> {
    if !a.is_square() {
        return Err(LuError::NotSquare);
    }
    let n = a.rows();
    for k in 0..n {
        let pivot = a[(k, k)];
        if pivot.abs() < PIVOT_TOL {
            return Err(LuError::ZeroPivot { step: k, pivot });
        }
        for i in k + 1..n {
            let lik = a[(i, k)] / pivot;
            a[(i, k)] = lik;
            for j in k + 1..n {
                let akj = a[(k, j)];
                a[(i, j)] -= lik * akj;
            }
        }
    }
    Ok(())
}

/// Unpack a compact LU into `(L, U)` with unit-diagonal `L`.
pub fn split_lu(packed: &Matrix) -> (Matrix, Matrix) {
    assert!(packed.is_square());
    let n = packed.rows();
    let mut l = Matrix::identity(n);
    let mut u = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if j < i {
                l[(i, j)] = packed[(i, j)];
            } else {
                u[(i, j)] = packed[(i, j)];
            }
        }
    }
    (l, u)
}

/// `max |A − L·U|` for a factorization of `original`.
pub fn lu_residual(original: &Matrix, packed: &Matrix) -> f64 {
    let (l, u) = split_lu(packed);
    matmul(&l, &u).max_abs_diff(original)
}

/// Solve `A x = b` by LU factorization plus forward/backward substitution.
/// Consumes a copy of `A`; returns `x`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LuError> {
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let mut packed = a.clone();
    lu_in_place(&mut packed)?;
    let n = packed.rows();
    // Forward: L y = b (unit diagonal).
    let mut y = b.to_vec();
    for i in 0..n {
        for j in 0..i {
            let yj = y[j];
            y[i] -= packed[(i, j)] * yj;
        }
    }
    // Backward: U x = y.
    let mut x = y;
    for i in (0..n).rev() {
        for j in i + 1..n {
            let xj = x[j];
            x[i] -= packed[(i, j)] * xj;
        }
        x[i] /= packed[(i, i)];
    }
    Ok(x)
}

/// Floating-point operation count of an unpivoted `n × n` LU:
/// `Σ_k (n-k-1)·(1 + 2·(n-k-1)) ≈ (2/3)n³`.
pub fn lu_flops(n: usize) -> u64 {
    let n = n as u64;
    (0..n).map(|k| (n - k - 1) * (1 + 2 * (n - k - 1))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_matrix() {
        // A = [[4,3],[6,3]] -> L = [[1,0],[1.5,1]], U = [[4,3],[0,-1.5]]
        let mut a = Matrix::from_rows(2, 2, &[4., 3., 6., 3.]);
        lu_in_place(&mut a).unwrap();
        assert!((a[(1, 0)] - 1.5).abs() < 1e-12);
        assert!((a[(1, 1)] + 1.5).abs() < 1e-12);
        assert_eq!(a[(0, 0)], 4.0);
    }

    #[test]
    fn residual_small_for_diag_dominant() {
        for n in [1, 2, 3, 5, 16, 33] {
            let orig = Matrix::random_diag_dominant(n, n as u64);
            let mut packed = orig.clone();
            lu_in_place(&mut packed).unwrap();
            let res = lu_residual(&orig, &packed);
            assert!(res < 1e-9, "n={n}, residual {res}");
        }
    }

    #[test]
    fn split_produces_triangular_factors() {
        let orig = Matrix::random_diag_dominant(6, 9);
        let mut packed = orig.clone();
        lu_in_place(&mut packed).unwrap();
        let (l, u) = split_lu(&packed);
        assert!(l.is_lower_triangular(0.0));
        assert!(u.is_upper_triangular(0.0));
        for i in 0..6 {
            assert_eq!(l[(i, i)], 1.0, "L must be unit-diagonal");
        }
    }

    #[test]
    fn zero_pivot_detected() {
        let mut a = Matrix::from_rows(2, 2, &[0., 1., 1., 0.]);
        let err = lu_in_place(&mut a).unwrap_err();
        assert_eq!(
            err,
            LuError::ZeroPivot {
                step: 0,
                pivot: 0.0
            }
        );
        assert!(err.to_string().contains("step 0"));
    }

    #[test]
    fn non_square_rejected() {
        let mut a = Matrix::zeros(2, 3);
        assert_eq!(lu_in_place(&mut a), Err(LuError::NotSquare));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let n = 10;
        let a = Matrix::random_diag_dominant(n, 17);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.5).collect();
        // b = A x
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = (0..n).map(|j| a[(i, j)] * x_true[j]).sum();
        }
        let x = solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn flops_formula_matches_asymptotics() {
        assert_eq!(lu_flops(1), 0);
        // (2/3) n^3 within 5% for moderately large n.
        let n = 100;
        let exact = lu_flops(n) as f64;
        let approx = 2.0 / 3.0 * (n as f64).powi(3);
        assert!(
            (exact - approx).abs() / approx < 0.05,
            "{exact} vs {approx}"
        );
    }
}
