//! Dense block linear algebra: the computational substrate of the paper's
//! evaluation.
//!
//! The paper's restricted program class operates on equal-sized *basic
//! blocks* with a finite set of *basic operations* "whose execution times
//! are calculated separately". For blocked Gaussian elimination those are
//! (paper §6.1):
//!
//! * **Op1** — triangularize the diagonal block and invert its factors;
//! * **Op2** — update a row-panel block with the inverted lower factor;
//! * **Op3** — update a column-panel block with the inverted upper factor;
//! * **Op4** — multiply-subtract update of an interior block.
//!
//! This crate implements the blocks ([`Matrix`]), the operations
//! ([`ops`]), the underlying factorizations ([`lu`], [`tri`], [`gemm`]),
//! and the *cost models* ([`cost`]) that map `(operation, block size)` to a
//! simulated [`loggp::Time`] — including a host-calibrated measured model
//! and a deterministic analytic model that reproduces the paper's Figure 6
//! shape (nonlinear curves that cross as the block size grows).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod ops;
pub mod tri;

pub use cost::{AnalyticCost, CostModel, MeasuredCost, OpClass, TableCost};
pub use matrix::Matrix;
