//! Matrix multiplication kernels.
//!
//! Three routines: a reference `matmul`, an accumulating `gemm_acc`
//! (`C += A·B`), and the subtracting `gemm_sub` (`C -= A·B`) that is the
//! heart of Gaussian elimination's Op4 and of Cannon's algorithm. All use
//! the cache-friendly i-k-j loop order over row-major data.

use crate::matrix::Matrix;

/// `A · B` into a fresh matrix.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_acc(&mut c, a, b);
    c
}

/// `C += A · B` (general matrix multiply-accumulate).
///
/// # Panics
/// Panics on inner/outer dimension mismatch.
pub fn gemm_acc(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    gemm(c, a, b, 1.0)
}

/// `C -= A · B` — the multiply-subtract update of the elimination's Op4.
///
/// # Panics
/// Panics on inner/outer dimension mismatch.
pub fn gemm_sub(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    gemm(c, a, b, -1.0)
}

/// `C += alpha · A · B` with the i-k-j loop order: the innermost loop walks
/// a row of `B` and a row of `C` contiguously.
pub fn gemm(c: &mut Matrix, a: &Matrix, b: &Matrix, alpha: f64) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows(), "inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "output dimension mismatch");
    let bs = b.as_slice();
    // Split borrows: read A row-wise, write C row-wise.
    for i in 0..m {
        for kk in 0..k {
            let aik = alpha * a[(i, kk)];
            if aik == 0.0 {
                continue;
            }
            let brow = &bs[kk * n..(kk + 1) * n];
            let crow = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
}

/// Floating-point operation count of a `b × b` GEMM (`2·b³`).
pub fn gemm_flops(b: usize) -> u64 {
    2 * (b as u64).pow(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        let b = Matrix::from_rows(2, 2, &[5., 6., 7., 8.]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(5, 5, 1);
        let id = Matrix::identity(5);
        assert!(matmul(&a, &id).approx_eq(&a, 1e-12));
        assert!(matmul(&id, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::random(3, 4, 2);
        let b = Matrix::random(4, 2, 3);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (3, 2));
        // Spot-check one entry against the definition.
        let mut want = 0.0;
        for k in 0..4 {
            want += a[(1, k)] * b[(k, 1)];
        }
        assert!((c[(1, 1)] - want).abs() < 1e-12);
    }

    #[test]
    fn sub_then_acc_roundtrips() {
        let a = Matrix::random(4, 4, 4);
        let b = Matrix::random(4, 4, 5);
        let orig = Matrix::random(4, 4, 6);
        let mut c = orig.clone();
        gemm_sub(&mut c, &a, &b);
        gemm_acc(&mut c, &a, &b);
        assert!(c.approx_eq(&orig, 1e-10));
    }

    #[test]
    fn matmul_associativity_numerically() {
        let a = Matrix::random(3, 3, 7);
        let b = Matrix::random(3, 3, 8);
        let c = Matrix::random(3, 3, 9);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.approx_eq(&right, 1e-10));
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn flops_cubic() {
        assert_eq!(gemm_flops(1), 2);
        assert_eq!(gemm_flops(10), 2_000);
    }
}
