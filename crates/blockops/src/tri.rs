//! Triangular inversion and triangular multiplies — the pieces of the
//! paper's Op1–Op3 ("requiring upper triangularization, inversion and
//! multiplication of matrices").

use crate::matrix::Matrix;

/// Invert a *unit lower* triangular matrix (diagonal assumed 1, entries
/// above the diagonal ignored). The inverse is again unit lower.
pub fn invert_unit_lower(l: &Matrix) -> Matrix {
    assert!(l.is_square());
    let n = l.rows();
    let mut inv = Matrix::identity(n);
    // Column-by-column forward substitution: L · X = I.
    for col in 0..n {
        for i in col + 1..n {
            let mut s = 0.0;
            for k in col..i {
                s += l[(i, k)] * inv[(k, col)];
            }
            inv[(i, col)] = -s;
        }
    }
    inv
}

/// Invert an *upper* triangular matrix with non-zero diagonal. Entries
/// below the diagonal are ignored.
///
/// # Panics
/// Panics if a diagonal entry is smaller than [`crate::lu::PIVOT_TOL`] in
/// magnitude.
pub fn invert_upper(u: &Matrix) -> Matrix {
    assert!(u.is_square());
    let n = u.rows();
    let mut inv = Matrix::zeros(n, n);
    // Column-by-column backward substitution: U · X = I.
    for col in 0..n {
        for i in (0..=col).rev() {
            let mut s = if i == col { 1.0 } else { 0.0 };
            for k in i + 1..=col {
                s -= u[(i, k)] * inv[(k, col)];
            }
            let d = u[(i, i)];
            assert!(
                d.abs() >= crate::lu::PIVOT_TOL,
                "singular upper-triangular matrix (diagonal {d:e} at {i})"
            );
            inv[(i, col)] = s / d;
        }
    }
    inv
}

/// `inv(L) · B` for unit-lower `L`, computed by forward substitution
/// (cheaper and more stable than forming the inverse; used by tests as an
/// oracle for the inverse-based basic operations).
pub fn solve_unit_lower(l: &Matrix, b: &Matrix) -> Matrix {
    assert!(l.is_square());
    assert_eq!(l.rows(), b.rows());
    let n = l.rows();
    let mut x = b.clone();
    for col in 0..x.cols() {
        for i in 0..n {
            let mut s = x[(i, col)];
            for k in 0..i {
                s -= l[(i, k)] * x[(k, col)];
            }
            x[(i, col)] = s;
        }
    }
    x
}

/// `B · inv(U)` for upper `U`, computed by column-wise back substitution
/// on the right.
pub fn solve_upper_right(b: &Matrix, u: &Matrix) -> Matrix {
    assert!(u.is_square());
    assert_eq!(b.cols(), u.rows());
    let n = u.rows();
    let mut x = b.clone();
    for row in 0..x.rows() {
        for j in 0..n {
            let mut s = x[(row, j)];
            for k in 0..j {
                s -= x[(row, k)] * u[(k, j)];
            }
            let d = u[(j, j)];
            assert!(d.abs() >= crate::lu::PIVOT_TOL, "singular U");
            x[(row, j)] = s / d;
        }
    }
    x
}

/// Flop count of a triangular inversion (`≈ n³/3`).
pub fn tri_inv_flops(n: usize) -> u64 {
    (n as u64).pow(3) / 3 + (n as u64).pow(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::lu::{lu_in_place, split_lu};

    fn random_factors(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut a = Matrix::random_diag_dominant(n, seed);
        lu_in_place(&mut a).unwrap();
        split_lu(&a)
    }

    #[test]
    fn unit_lower_inverse_is_inverse() {
        for n in [1, 2, 5, 12] {
            let (l, _) = random_factors(n, n as u64 + 100);
            let inv = invert_unit_lower(&l);
            assert!(inv.is_lower_triangular(0.0));
            assert!(
                matmul(&l, &inv).approx_eq(&Matrix::identity(n), 1e-9),
                "n={n}"
            );
            assert!(
                matmul(&inv, &l).approx_eq(&Matrix::identity(n), 1e-9),
                "n={n}"
            );
        }
    }

    #[test]
    fn upper_inverse_is_inverse() {
        for n in [1, 2, 5, 12] {
            let (_, u) = random_factors(n, n as u64 + 200);
            let inv = invert_upper(&u);
            assert!(inv.is_upper_triangular(1e-12));
            assert!(
                matmul(&u, &inv).approx_eq(&Matrix::identity(n), 1e-8),
                "n={n}"
            );
            assert!(
                matmul(&inv, &u).approx_eq(&Matrix::identity(n), 1e-8),
                "n={n}"
            );
        }
    }

    #[test]
    fn solves_match_inverse_products() {
        let n = 9;
        let (l, u) = random_factors(n, 42);
        let b = Matrix::random(n, 4, 43);
        let via_solve = solve_unit_lower(&l, &b);
        let via_inv = matmul(&invert_unit_lower(&l), &b);
        assert!(via_solve.approx_eq(&via_inv, 1e-9));

        let c = Matrix::random(4, n, 44);
        let via_solve_r = solve_upper_right(&c, &u);
        let via_inv_r = matmul(&c, &invert_upper(&u));
        assert!(via_solve_r.approx_eq(&via_inv_r, 1e-8));
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_upper_panics() {
        let u = Matrix::zeros(3, 3);
        let _ = invert_upper(&u);
    }

    #[test]
    fn identity_inverts_to_identity() {
        let id = Matrix::identity(4);
        assert!(invert_unit_lower(&id).approx_eq(&id, 0.0));
        assert!(invert_upper(&id).approx_eq(&id, 0.0));
    }

    #[test]
    fn flops_are_cubic_over_three() {
        let n = 90;
        let f = tri_inv_flops(n) as f64;
        let approx = (n as f64).powi(3) / 3.0;
        assert!((f - approx).abs() / approx < 0.05);
    }
}
