//! A small dense row-major `f64` matrix.
//!
//! Deliberately minimal: just what blocked Gaussian elimination, Cannon's
//! algorithm and the stencil application need. No external linear-algebra
//! dependency is used anywhere in the workspace.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// A random matrix with entries in `(-1, 1)`, deterministic per seed.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// A random *diagonally dominant* square matrix — always admits an LU
    /// factorization without pivoting, which is what the paper's Gaussian
    /// elimination (no pivoting) requires to stay numerically sane.
    pub fn random_diag_dominant(n: usize, seed: u64) -> Self {
        let mut m = Matrix::random(n, n, seed);
        for i in 0..n {
            m[(i, i)] += n as f64; // row sum of |entries| is < n
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True iff the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Copy the `b × b` sub-block with upper-left corner `(r0, c0)` out.
    pub fn block(&self, r0: usize, c0: usize, b_rows: usize, b_cols: usize) -> Matrix {
        assert!(
            r0 + b_rows <= self.rows && c0 + b_cols <= self.cols,
            "block out of range"
        );
        Matrix::from_fn(b_rows, b_cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Write `block` into this matrix with upper-left corner `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block out of range"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// `max_ij |self - other|`; panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True iff `|self - other|_max <= tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        (self.rows, self.cols) == (other.rows, other.cols) && self.max_abs_diff(other) <= tol
    }

    /// True iff strictly-upper entries are all ≤ `tol` in magnitude.
    pub fn is_lower_triangular(&self, tol: f64) -> bool {
        (0..self.rows).all(|i| (i + 1..self.cols).all(|j| self[(i, j)].abs() <= tol))
    }

    /// True iff strictly-lower entries are all ≤ `tol` in magnitude.
    pub fn is_upper_triangular(&self, tol: f64) -> bool {
        (0..self.rows).all(|i| (0..j_lim(i, self.cols)).all(|j| self[(i, j)].abs() <= tol))
    }
}

fn j_lim(i: usize, cols: usize) -> usize {
    i.min(cols)
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let z = Matrix::zeros(2, 3);
        assert_eq!((z.rows(), z.cols()), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        assert!(!z.is_square());

        let id = Matrix::identity(3);
        assert!(id.is_square());
        assert_eq!(id[(1, 1)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);

        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 0)], 10.0);

        let r = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_rows_checks_length() {
        Matrix::from_rows(2, 2, &[1.0]);
    }

    #[test]
    fn random_is_seeded() {
        let a = Matrix::random(4, 4, 1);
        let b = Matrix::random(4, 4, 1);
        let c = Matrix::random(4, 4, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|x| x.abs() < 1.0));
    }

    #[test]
    fn diag_dominant_diagonal_dominates() {
        let n = 8;
        let m = Matrix::random_diag_dominant(n, 3);
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            assert!(m[(i, i)].abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::random(3, 5, 7);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (5, 3));
        assert_eq!(t.transpose(), m);
        assert_eq!(m[(1, 4)], t[(4, 1)]);
    }

    #[test]
    fn block_roundtrip() {
        let m = Matrix::random(6, 6, 11);
        let b = m.block(2, 3, 2, 3);
        assert_eq!(b[(0, 0)], m[(2, 3)]);
        let mut n = Matrix::zeros(6, 6);
        n.set_block(2, 3, &b);
        assert_eq!(n[(3, 5)], m[(3, 5)]);
        assert_eq!(n[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_bounds_checked() {
        Matrix::zeros(3, 3).block(2, 2, 2, 2);
    }

    #[test]
    fn norms_and_diffs() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert!((a.frobenius() - 2f64.sqrt()).abs() < 1e-12);
        assert!(a.approx_eq(&a, 0.0));
        assert!(!a.approx_eq(&b, 0.5));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 10.0)); // shape mismatch
    }

    #[test]
    fn triangularity_checks() {
        let l = Matrix::from_rows(2, 2, &[1.0, 0.0, 5.0, 2.0]);
        assert!(l.is_lower_triangular(0.0));
        assert!(!l.is_upper_triangular(0.0));
        let u = l.transpose();
        assert!(u.is_upper_triangular(0.0));
        assert!(!u.is_lower_triangular(0.0));
        assert!(Matrix::identity(3).is_lower_triangular(0.0));
        assert!(Matrix::identity(3).is_upper_triangular(0.0));
    }

    #[test]
    fn row_view() {
        let m = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn debug_renders() {
        let s = format!("{:?}", Matrix::identity(2));
        assert!(s.contains("Matrix 2x2"));
        let big = format!("{:?}", Matrix::zeros(20, 20));
        assert!(big.contains("..."));
    }
}
