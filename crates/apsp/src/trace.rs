//! Trace generation for the blocked Floyd–Warshall — structurally the
//! elimination's wavefront with full-block messages everywhere.
//!
//! Cost mapping: the closure of a diagonal block is charged as the cost
//! model's `Op1` (cubic work with a per-iteration overhead, like
//! triangularize-and-invert), panel relaxations as `Op2`/`Op3` and
//! interior relaxations as `Op4` — min-plus products have exactly the
//! cubic loop structure of their `(+, ×)` counterparts, so the calibrated
//! curves carry over.

use blockops::{CostModel, OpClass};
use commsim::CommPattern;
use loggp::Time;
use predsim_core::{Layout, Program, Step, StepLoad};
use std::collections::BTreeSet;

/// A generated blocked-APSP program plus emulator metadata.
#[derive(Clone, Debug)]
pub struct ApspProgram {
    /// The oblivious program (one step per wavefront level).
    pub program: Program,
    /// Work profiles parallel to the steps.
    pub loads: Vec<StepLoad>,
    /// Number of graph vertices.
    pub n: usize,
    /// Block size.
    pub block: usize,
    /// Blocks per dimension.
    pub nb: usize,
    /// Processor count.
    pub procs: usize,
}

impl ApspProgram {
    /// Bytes of one block message.
    pub fn block_bytes(&self) -> usize {
        8 * self.block * self.block
    }
}

/// Generate the blocked-APSP trace for `n` vertices with `b × b` blocks.
///
/// Unlike the elimination, every one of the `nb` iterations touches the
/// *whole* matrix (rows/columns before `k` keep relaxing), so the
/// dependency levels simply advance three per iteration: closure, panels,
/// interior.
///
/// # Panics
/// Panics if `b` does not divide `n`.
pub fn generate(n: usize, b: usize, layout: &dyn Layout, cost: &dyn CostModel) -> ApspProgram {
    assert!(
        b > 0 && n.is_multiple_of(b),
        "block size {b} must divide the matrix size {n}"
    );
    let nb = n / b;
    let procs = layout.procs();
    assert!(procs > 0);
    let owner = |i: usize, j: usize| layout.owner(i, j);
    let block_bytes = 8 * b * b;
    let base = |i: usize, j: usize| ((i * nb + j) * block_bytes) as u64;

    let mut program = Program::new(procs);
    let mut loads = Vec::new();

    for k in 0..nb {
        // --- closure step -------------------------------------------------
        let p_diag = owner(k, k);
        let mut comp = vec![Time::ZERO; procs];
        comp[p_diag] = cost.op_cost(OpClass::Op1, b);
        let mut load = StepLoad::new(procs);
        load.add_visits(p_diag, 1);
        load.touch(p_diag, base(k, k), block_bytes as u32);
        let mut pat = CommPattern::new(procs);
        // The closed diagonal goes to every panel owner of row/col k.
        let mut dsts: BTreeSet<usize> = BTreeSet::new();
        for t in 0..nb {
            if t != k {
                dsts.insert(owner(k, t));
                dsts.insert(owner(t, k));
            }
        }
        for dst in dsts {
            pat.add(p_diag, dst, block_bytes);
        }
        program.push(
            Step::new(format!("closure {k}"))
                .with_comp(comp)
                .with_comm(pat),
        );
        loads.push(load);

        // --- panel step ----------------------------------------------------
        let mut comp = vec![Time::ZERO; procs];
        let mut load = StepLoad::new(procs);
        let mut pat = CommPattern::new(procs);
        for t in 0..nb {
            if t == k {
                continue;
            }
            let pr = owner(k, t);
            comp[pr] += cost.op_cost(OpClass::Op2, b);
            load.add_visits(pr, 1);
            load.touch(pr, base(k, t), block_bytes as u32);
            load.touch(pr, base(k, k), block_bytes as u32);
            let row_dsts: BTreeSet<usize> =
                (0..nb).filter(|&i| i != k).map(|i| owner(i, t)).collect();
            for dst in row_dsts {
                pat.add(pr, dst, block_bytes);
            }

            let pc = owner(t, k);
            comp[pc] += cost.op_cost(OpClass::Op3, b);
            load.add_visits(pc, 1);
            load.touch(pc, base(t, k), block_bytes as u32);
            load.touch(pc, base(k, k), block_bytes as u32);
            let col_dsts: BTreeSet<usize> =
                (0..nb).filter(|&j| j != k).map(|j| owner(t, j)).collect();
            for dst in col_dsts {
                pat.add(pc, dst, block_bytes);
            }
        }
        program.push(
            Step::new(format!("panels {k}"))
                .with_comp(comp)
                .with_comm(pat),
        );
        loads.push(load);

        // --- interior step ---------------------------------------------------
        let mut comp = vec![Time::ZERO; procs];
        let mut load = StepLoad::new(procs);
        for i in 0..nb {
            if i == k {
                continue;
            }
            for j in 0..nb {
                if j == k {
                    continue;
                }
                let p = owner(i, j);
                comp[p] += cost.op_cost(OpClass::Op4, b);
                load.add_visits(p, 1);
                load.touch(p, base(i, j), block_bytes as u32);
                load.touch(p, base(i, k), block_bytes as u32);
                load.touch(p, base(k, j), block_bytes as u32);
            }
        }
        program.push(Step::new(format!("interior {k}")).with_comp(comp));
        loads.push(load);
    }

    ApspProgram {
        program,
        loads,
        n,
        block: b,
        nb,
        procs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockops::AnalyticCost;
    use commsim::SimConfig;
    use loggp::presets;
    use predsim_core::{simulate_program, Diagonal, SimOptions};

    fn gen(n: usize, b: usize, procs: usize) -> ApspProgram {
        generate(n, b, &Diagonal::new(procs), &AnalyticCost::paper_default())
    }

    #[test]
    fn step_structure() {
        let g = gen(24, 4, 3);
        assert_eq!(g.nb, 6);
        assert_eq!(g.program.len(), 3 * 6);
        assert_eq!(g.loads.len(), g.program.len());
        assert_eq!(g.block_bytes(), 128);
    }

    #[test]
    fn single_block_is_one_closure() {
        let g = gen(8, 8, 4);
        assert_eq!(g.program.len(), 3);
        assert_eq!(g.program.total_messages(), 0);
        // Only the closure step computes.
        let loads: Vec<u32> = g.loads.iter().map(|l| l.visits.iter().sum()).collect();
        assert_eq!(loads, vec![1, 0, 0]);
    }

    #[test]
    fn every_iteration_works_the_whole_matrix() {
        let g = gen(24, 4, 3);
        // Interior step k touches (nb-1)^2 blocks regardless of k — unlike
        // the elimination whose trailing matrix shrinks.
        for k in 0..g.nb {
            let interior = &g.program.steps()[3 * k + 2];
            let visits: u32 = g.loads[3 * k + 2].visits.iter().sum();
            assert_eq!(visits as usize, (g.nb - 1) * (g.nb - 1), "k={k}");
            assert!(interior.comm.is_empty());
        }
    }

    #[test]
    fn prediction_runs_and_worstcase_dominates() {
        let g = gen(32, 8, 4);
        let cfg = SimConfig::new(presets::meiko_cs2(4));
        let st = simulate_program(&g.program, &SimOptions::new(cfg));
        let wc = simulate_program(&g.program, &SimOptions::new(cfg).worst_case());
        assert!(st.total > Time::ZERO);
        assert!(wc.total >= st.total);
    }

    #[test]
    fn apsp_costs_more_than_lu_at_same_size() {
        // FW relaxes the whole matrix every iteration; LU's trailing
        // matrix shrinks — so APSP must be predicted slower.
        let procs = 4;
        let cfg = SimConfig::new(presets::meiko_cs2(procs));
        let cost = AnalyticCost::paper_default();
        let layout = Diagonal::new(procs);
        let fw = simulate_program(&gen(48, 8, procs).program, &SimOptions::new(cfg)).total;
        let lu = simulate_program(&gauss_like(48, 8, &layout, &cost), &SimOptions::new(cfg)).total;
        assert!(fw > lu, "fw {fw} <= lu {lu}");
    }

    // Local helper to avoid a dev-dependency on the gauss crate: an
    // LU-shaped lower bound — the APSP program minus the work of the
    // blocks left of/above the pivot. Simpler: compare total computation.
    fn gauss_like(n: usize, b: usize, layout: &dyn Layout, cost: &dyn CostModel) -> Program {
        // Rebuild a shrinking-interior analogue of the generator above.
        let nb = n / b;
        let procs = layout.procs();
        let mut program = Program::new(procs);
        for k in 0..nb {
            let mut comp = vec![Time::ZERO; procs];
            comp[layout.owner(k, k)] = cost.op_cost(OpClass::Op1, b);
            program.push(Step::new(format!("d{k}")).with_comp(comp));
            let mut comp = vec![Time::ZERO; procs];
            for t in k + 1..nb {
                comp[layout.owner(k, t)] += cost.op_cost(OpClass::Op2, b);
                comp[layout.owner(t, k)] += cost.op_cost(OpClass::Op3, b);
            }
            program.push(Step::new(format!("p{k}")).with_comp(comp));
            let mut comp = vec![Time::ZERO; procs];
            for i in k + 1..nb {
                for j in k + 1..nb {
                    comp[layout.owner(i, j)] += cost.op_cost(OpClass::Op4, b);
                }
            }
            program.push(Step::new(format!("i{k}")).with_comp(comp));
        }
        program
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_block() {
        let _ = gen(10, 3, 2);
    }
}
