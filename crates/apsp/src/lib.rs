//! All-pairs shortest paths by blocked Floyd–Warshall — the *graph*
//! member of the paper's program class ("graph algorithms where several
//! nodes are gathered in a single basic data block and assigned to a
//! certain processor can be considered to fall in this class, too").
//!
//! The distance matrix is blocked exactly like the elimination: iteration
//! `k` closes the diagonal block (Op1-analogue: Floyd–Warshall on the
//! block), relaxes the pivot row and column panels through it (Op2/Op3
//! analogues: min-plus products), then relaxes every interior block
//! against the two panels (Op4 analogue). The communication structure —
//! and hence the trace — is the elimination's wavefront with full-block
//! messages, so every prediction facility of the workspace applies to a
//! completely different computational substrate (the *(min, +)* semiring).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod minplus;
pub mod parallel;
pub mod trace;

pub use minplus::{blocked_fw_in_place, floyd_warshall_in_place, random_digraph};
pub use trace::{generate, ApspProgram};
