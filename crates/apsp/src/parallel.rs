//! Real multithreaded execution of the blocked Floyd–Warshall, mirroring
//! `gauss::parallel`: one thread per virtual processor, blocks living with
//! their layout owner, the closed diagonal and relaxed panels traveling
//! over crossbeam channels along exactly the edges the trace generator
//! emits. Validates that the *schedule* (not just the sequential
//! algorithm) computes correct shortest paths.

use crate::minplus::{floyd_warshall_in_place, minplus_acc};
use blockops::Matrix;
use crossbeam::channel::{unbounded, Receiver, Sender};
use predsim_core::Layout;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum BlockMsg {
    Diag(usize, Matrix),
    Row(usize, usize, Matrix),
    Col(usize, usize, Matrix),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Key {
    Diag(usize),
    Row(usize, usize),
    Col(usize, usize),
}

struct Worker {
    me: usize,
    nb: usize,
    rx: Receiver<BlockMsg>,
    txs: Vec<Sender<BlockMsg>>,
    blocks: HashMap<(usize, usize), Matrix>,
    cache: HashMap<Key, Matrix>,
}

impl Worker {
    fn wait_for(&mut self, key: Key) -> Matrix {
        loop {
            if let Some(m) = self.cache.remove(&key) {
                return m;
            }
            let msg = self
                .rx
                .recv()
                .expect("peer hung up while blocks were pending");
            let (k, m) = match msg {
                BlockMsg::Diag(k, m) => (Key::Diag(k), m),
                BlockMsg::Row(k, j, m) => (Key::Row(k, j), m),
                BlockMsg::Col(k, i, m) => (Key::Col(k, i), m),
            };
            self.cache.insert(k, m);
        }
    }

    fn deliver(&mut self, dsts: impl Iterator<Item = usize>, key: Key, block: &Matrix) {
        let mut uniq: Vec<usize> = dsts.collect();
        uniq.sort_unstable();
        uniq.dedup();
        for dst in uniq {
            if dst == self.me {
                self.cache.insert(key, block.clone());
            } else {
                let msg = match key {
                    Key::Diag(k) => BlockMsg::Diag(k, block.clone()),
                    Key::Row(k, j) => BlockMsg::Row(k, j, block.clone()),
                    Key::Col(k, i) => BlockMsg::Col(k, i, block.clone()),
                };
                self.txs[dst].send(msg).expect("receiver alive");
            }
        }
    }

    fn run(&mut self, layout: &dyn Layout) {
        let nb = self.nb;
        for k in 0..nb {
            // Closure of the diagonal block + distribution to panel owners.
            if layout.owner(k, k) == self.me {
                let mut diag = self.blocks.remove(&(k, k)).expect("diagonal local");
                floyd_warshall_in_place(&mut diag);
                let dsts = (0..nb)
                    .filter(|&t| t != k)
                    .flat_map(|t| [layout.owner(k, t), layout.owner(t, k)]);
                let diag_copy = diag.clone();
                self.deliver(dsts, Key::Diag(k), &diag_copy);
                self.blocks.insert((k, k), diag);
            }

            // Panels I own.
            let my_rows: Vec<usize> = (0..nb)
                .filter(|&t| t != k && layout.owner(k, t) == self.me)
                .collect();
            let my_cols: Vec<usize> = (0..nb)
                .filter(|&t| t != k && layout.owner(t, k) == self.me)
                .collect();
            if !my_rows.is_empty() || !my_cols.is_empty() {
                let diag = self.wait_for(Key::Diag(k));
                for t in my_rows {
                    let mut blk = self.blocks.remove(&(k, t)).expect("row panel local");
                    let orig = blk.clone();
                    minplus_acc(&mut blk, &diag, &orig);
                    let dsts = (0..nb).filter(|&i| i != k).map(|i| layout.owner(i, t));
                    self.deliver(dsts, Key::Row(k, t), &blk);
                    self.blocks.insert((k, t), blk);
                }
                for t in my_cols {
                    let mut blk = self.blocks.remove(&(t, k)).expect("col panel local");
                    let orig = blk.clone();
                    minplus_acc(&mut blk, &orig, &diag);
                    let dsts = (0..nb).filter(|&j| j != k).map(|j| layout.owner(t, j));
                    self.deliver(dsts, Key::Col(k, t), &blk);
                    self.blocks.insert((t, k), blk);
                }
            }

            // Interior relaxations I own.
            let mut need_rows: Vec<usize> = Vec::new();
            let mut need_cols: Vec<usize> = Vec::new();
            for i in 0..nb {
                for j in 0..nb {
                    if i != k && j != k && layout.owner(i, j) == self.me {
                        need_rows.push(j);
                        need_cols.push(i);
                    }
                }
            }
            need_rows.sort_unstable();
            need_rows.dedup();
            need_cols.sort_unstable();
            need_cols.dedup();
            let rows: HashMap<usize, Matrix> = need_rows
                .into_iter()
                .map(|j| (j, self.wait_for(Key::Row(k, j))))
                .collect();
            let cols: HashMap<usize, Matrix> = need_cols
                .into_iter()
                .map(|i| (i, self.wait_for(Key::Col(k, i))))
                .collect();
            for i in 0..nb {
                for j in 0..nb {
                    if i != k && j != k && layout.owner(i, j) == self.me {
                        let mut blk = self.blocks.remove(&(i, j)).expect("interior local");
                        minplus_acc(&mut blk, &cols[&i], &rows[&j]);
                        self.blocks.insert((i, j), blk);
                    }
                }
            }
        }
    }
}

/// Solve APSP on `d` in parallel with one thread per layout processor;
/// returns the full distance matrix.
///
/// # Panics
/// Panics if `b` does not divide the matrix size.
pub fn solve(d: &Matrix, b: usize, layout: &dyn Layout) -> Matrix {
    assert!(d.is_square(), "distance matrices are square");
    let n = d.rows();
    assert!(
        b > 0 && n.is_multiple_of(b),
        "block size {b} must divide the matrix size {n}"
    );
    let nb = n / b;
    let procs = layout.procs();

    // Clamp the diagonal like the sequential variants do.
    let mut init = d.clone();
    for i in 0..n {
        if init[(i, i)] > 0.0 {
            init[(i, i)] = 0.0;
        }
    }

    let mut partitions: Vec<HashMap<(usize, usize), Matrix>> =
        (0..procs).map(|_| HashMap::new()).collect();
    for i in 0..nb {
        for j in 0..nb {
            partitions[layout.owner(i, j)].insert((i, j), init.block(i * b, j * b, b, b));
        }
    }

    let (txs, rxs): (Vec<Sender<BlockMsg>>, Vec<Receiver<BlockMsg>>) =
        (0..procs).map(|_| unbounded()).unzip();

    let mut results: Vec<HashMap<(usize, usize), Matrix>> = Vec::with_capacity(procs);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(procs);
        for (me, (blocks, rx)) in partitions.drain(..).zip(rxs).enumerate() {
            let txs = txs.clone();
            handles.push(scope.spawn(move |_| {
                let mut w = Worker {
                    me,
                    nb,
                    rx,
                    txs,
                    blocks,
                    cache: HashMap::new(),
                };
                w.run(layout);
                w.blocks
            }));
        }
        drop(txs);
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");

    let mut out = Matrix::zeros(n, n);
    for part in results {
        for ((i, j), blk) in part {
            out.set_block(i * b, j * b, &blk);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minplus::{floyd_warshall_in_place as fw, random_digraph};
    use predsim_core::{ColCyclic, Diagonal, RowCyclic};

    fn check(n: usize, b: usize, layout: &dyn Layout, seed: u64) {
        let g = random_digraph(n, 0.2, seed);
        let got = solve(&g, b, layout);
        let mut want = g.clone();
        fw(&mut want);
        for i in 0..n {
            for j in 0..n {
                let (x, y) = (got[(i, j)], want[(i, j)]);
                assert!(
                    (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-9,
                    "layout={} b={b} ({i},{j}): {x} vs {y}",
                    layout.name()
                );
            }
        }
    }

    #[test]
    fn matches_classical_across_layouts() {
        check(24, 4, &Diagonal::new(3), 1);
        check(24, 6, &RowCyclic::new(4), 2);
        check(24, 8, &ColCyclic::new(5), 3);
    }

    #[test]
    fn single_processor_and_single_block() {
        check(16, 4, &Diagonal::new(1), 4);
        check(12, 12, &Diagonal::new(4), 5);
    }

    #[test]
    fn more_procs_than_blocks() {
        check(8, 4, &Diagonal::new(16), 6);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_block() {
        let g = random_digraph(10, 0.2, 1);
        let _ = solve(&g, 3, &Diagonal::new(2));
    }
}
