//! The *(min, +)* semiring kernels and the two Floyd–Warshall variants.
//!
//! Distances are `f64` with `f64::INFINITY` for "no path". The blocked
//! algorithm is validated against the classical triple loop, which is in
//! turn validated against hand-checkable graphs.

use blockops::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `C[i][j] = min(C[i][j], min_k (A[i][k] + B[k][j]))` — the min-plus
/// (tropical) matrix product, accumulated into `C`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn minplus_acc(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, kk) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(kk, b.rows(), "inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "output dimension mismatch");
    for i in 0..m {
        for k in 0..kk {
            let aik = a[(i, k)];
            if aik.is_infinite() {
                continue;
            }
            for j in 0..n {
                let cand = aik + b[(k, j)];
                if cand < c[(i, j)] {
                    c[(i, j)] = cand;
                }
            }
        }
    }
}

/// The min-plus product into a fresh matrix initialized to +∞.
pub fn minplus_mul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::from_fn(a.rows(), b.cols(), |_, _| f64::INFINITY);
    minplus_acc(&mut c, a, b);
    c
}

/// Classical Floyd–Warshall, in place: on return `d[i][j]` is the length
/// of the shortest `i → j` path. The diagonal is clamped to ≤ 0 paths
/// (i.e. `d[i][i] = min(d[i][i], 0)` first), matching the usual APSP
/// convention for non-negative weights.
pub fn floyd_warshall_in_place(d: &mut Matrix) {
    assert!(d.is_square(), "distance matrices are square");
    let n = d.rows();
    for i in 0..n {
        if d[(i, i)] > 0.0 {
            d[(i, i)] = 0.0;
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[(i, k)];
            if dik.is_infinite() {
                continue;
            }
            for j in 0..n {
                let cand = dik + d[(k, j)];
                if cand < d[(i, j)] {
                    d[(i, j)] = cand;
                }
            }
        }
    }
}

/// Blocked Floyd–Warshall with `b × b` blocks, in place — the four-phase
/// scheme whose per-iteration structure mirrors the elimination's Op1–Op4:
///
/// 1. close the diagonal block (local Floyd–Warshall);
/// 2. pivot row: `D[k][j] ← min(D[k][j], D[k][k] ⊗ D[k][j])`;
/// 3. pivot column: `D[i][k] ← min(D[i][k], D[i][k] ⊗ D[k][k])`;
/// 4. interior: `D[i][j] ← min(D[i][j], D[i][k] ⊗ D[k][j])`.
///
/// # Panics
/// Panics if `b` does not divide the matrix size.
pub fn blocked_fw_in_place(d: &mut Matrix, b: usize) {
    assert!(d.is_square(), "distance matrices are square");
    let n = d.rows();
    assert!(
        b > 0 && n.is_multiple_of(b),
        "block size {b} must divide the matrix size {n}"
    );
    let nb = n / b;
    for i in 0..n {
        if d[(i, i)] > 0.0 {
            d[(i, i)] = 0.0;
        }
    }

    for k in 0..nb {
        // Phase 1: closure of the diagonal block.
        let mut diag = d.block(k * b, k * b, b, b);
        floyd_warshall_in_place(&mut diag);
        d.set_block(k * b, k * b, &diag);

        // Phase 2: pivot row through the closed diagonal.
        for j in 0..nb {
            if j == k {
                continue;
            }
            let mut blk = d.block(k * b, j * b, b, b);
            minplus_acc(&mut blk, &diag, &d.block(k * b, j * b, b, b));
            d.set_block(k * b, j * b, &blk);
        }
        // Phase 3: pivot column.
        for i in 0..nb {
            if i == k {
                continue;
            }
            let mut blk = d.block(i * b, k * b, b, b);
            minplus_acc(&mut blk, &d.block(i * b, k * b, b, b), &diag);
            d.set_block(i * b, k * b, &blk);
        }
        // Phase 4: interior relaxations.
        for i in 0..nb {
            if i == k {
                continue;
            }
            let dik = d.block(i * b, k * b, b, b);
            for j in 0..nb {
                if j == k {
                    continue;
                }
                let dkj = d.block(k * b, j * b, b, b);
                let mut blk = d.block(i * b, j * b, b, b);
                minplus_acc(&mut blk, &dik, &dkj);
                d.set_block(i * b, j * b, &blk);
            }
        }
    }
}

/// A random weighted digraph as a dense distance matrix: each ordered pair
/// gets an edge with probability `density`, with weight in `(0, 10)`;
/// absent edges are +∞; the diagonal is 0. Deterministic per seed.
pub fn random_digraph(n: usize, density: f64, seed: u64) -> Matrix {
    assert!((0.0..=1.0).contains(&density), "density is a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else if rng.gen_bool(density) {
            rng.gen_range(0.1..10.0)
        } else {
            f64::INFINITY
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: f64 = f64::INFINITY;

    #[test]
    fn minplus_small_example() {
        // Path lengths through a 2-node relay.
        let a = Matrix::from_rows(2, 2, &[0.0, 1.0, INF, 0.0]);
        let b = Matrix::from_rows(2, 2, &[0.0, 5.0, 2.0, 0.0]);
        let c = minplus_mul(&a, &b);
        // c[i][j] = min_k a[i][k] + b[k][j]
        assert_eq!(c[(0, 0)], 0.0); // a00 + b00
        assert_eq!(c[(0, 1)], 1.0); // a01 + b11 beats a00 + b01 = 5
        assert_eq!(c[(1, 0)], 2.0); // a11 + b10
        assert_eq!(c[(1, 1)], 0.0);
    }

    #[test]
    fn minplus_acc_keeps_better_paths() {
        let a = Matrix::from_rows(1, 1, &[7.0]);
        let b = Matrix::from_rows(1, 1, &[8.0]);
        let mut c = Matrix::from_rows(1, 1, &[3.0]);
        minplus_acc(&mut c, &a, &b);
        assert_eq!(c[(0, 0)], 3.0); // 15 does not beat 3
    }

    #[test]
    fn infinity_is_absorbing() {
        let a = Matrix::from_rows(1, 2, &[INF, INF]);
        let b = Matrix::from_rows(2, 1, &[INF, 1.0]);
        let c = minplus_mul(&a, &b);
        assert_eq!(c[(0, 0)], INF);
    }

    #[test]
    fn fw_hand_checked_graph() {
        // 0 -> 1 (1), 1 -> 2 (2), 0 -> 2 (10): shortest 0->2 is 3.
        let mut d = Matrix::from_rows(3, 3, &[0.0, 1.0, 10.0, INF, 0.0, 2.0, INF, INF, 0.0]);
        floyd_warshall_in_place(&mut d);
        assert_eq!(d[(0, 2)], 3.0);
        assert_eq!(d[(1, 2)], 2.0);
        assert_eq!(d[(2, 0)], INF);
    }

    #[test]
    fn blocked_matches_classical() {
        let n = 24;
        for b in [1, 2, 3, 4, 6, 8, 12, 24] {
            for seed in [1, 2] {
                let g = random_digraph(n, 0.15, seed);
                let mut blocked = g.clone();
                blocked_fw_in_place(&mut blocked, b);
                let mut classical = g.clone();
                floyd_warshall_in_place(&mut classical);
                // Exact equality: both compute min-plus sums of the same
                // weights, just in different orders; min is exact on f64
                // and the addition chains are identical per path.
                for i in 0..n {
                    for j in 0..n {
                        let (x, y) = (blocked[(i, j)], classical[(i, j)]);
                        assert!(
                            (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-9,
                            "b={b} seed={seed} ({i},{j}): {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let mut d = random_digraph(16, 0.3, 9);
        floyd_warshall_in_place(&mut d);
        for i in 0..16 {
            for j in 0..16 {
                for k in 0..16 {
                    assert!(
                        d[(i, j)] <= d[(i, k)] + d[(k, j)] + 1e-9,
                        "({i},{j}) via {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn diagonal_is_zero_after_closure() {
        let mut d = random_digraph(10, 0.5, 3);
        blocked_fw_in_place(&mut d, 5);
        for i in 0..10 {
            assert_eq!(d[(i, i)], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn blocked_checks_block_size() {
        let mut d = random_digraph(10, 0.2, 1);
        blocked_fw_in_place(&mut d, 3);
    }

    #[test]
    fn random_digraph_deterministic() {
        assert_eq!(random_digraph(8, 0.3, 5), random_digraph(8, 0.3, 5));
        assert_ne!(random_digraph(8, 0.3, 5), random_digraph(8, 0.3, 6));
    }
}
