//! Property-based tests: the tropical semiring laws and shortest-path
//! invariants that blocked Floyd–Warshall must preserve.

use apsp::minplus::{blocked_fw_in_place, floyd_warshall_in_place, minplus_mul, random_digraph};
use blockops::Matrix;
use proptest::prelude::*;

fn inf_eq(a: f64, b: f64) -> bool {
    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9
}

fn mat_eq(a: &Matrix, b: &Matrix) -> bool {
    (0..a.rows()).all(|i| (0..a.cols()).all(|j| inf_eq(a[(i, j)], b[(i, j)])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Min-plus multiplication is associative.
    #[test]
    fn minplus_associative(n in 1usize..7, s in any::<u64>()) {
        let a = random_digraph(n, 0.4, s);
        let b = random_digraph(n, 0.4, s.wrapping_add(1));
        let c = random_digraph(n, 0.4, s.wrapping_add(2));
        let left = minplus_mul(&minplus_mul(&a, &b), &c);
        let right = minplus_mul(&a, &minplus_mul(&b, &c));
        prop_assert!(mat_eq(&left, &right));
    }

    /// The min-plus identity (0 diagonal, ∞ elsewhere) is neutral.
    #[test]
    fn minplus_identity(n in 1usize..8, s in any::<u64>()) {
        let a = random_digraph(n, 0.4, s);
        let id = Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { f64::INFINITY });
        prop_assert!(mat_eq(&minplus_mul(&a, &id), &a));
        prop_assert!(mat_eq(&minplus_mul(&id, &a), &a));
    }

    /// Closure is idempotent: running Floyd–Warshall twice changes nothing.
    #[test]
    fn closure_idempotent(n in 1usize..12, s in any::<u64>()) {
        let mut d = random_digraph(n, 0.3, s);
        floyd_warshall_in_place(&mut d);
        let once = d.clone();
        floyd_warshall_in_place(&mut d);
        prop_assert!(mat_eq(&once, &d));
    }

    /// Closed distances never exceed the original edge weights and satisfy
    /// the triangle inequality.
    #[test]
    fn closure_shrinks_and_triangulates(n in 2usize..10, s in any::<u64>()) {
        let g = random_digraph(n, 0.3, s);
        let mut d = g.clone();
        floyd_warshall_in_place(&mut d);
        for i in 0..n {
            for j in 0..n {
                prop_assert!(d[(i, j)] <= g[(i, j)] + 1e-12);
                for k in 0..n {
                    prop_assert!(d[(i, j)] <= d[(i, k)] + d[(k, j)] + 1e-9);
                }
            }
        }
    }

    /// Blocked and classical closures agree for every dividing block size.
    #[test]
    fn blocked_equals_classical(nb in 1usize..5, b in 1usize..5, s in any::<u64>()) {
        let n = nb * b;
        let g = random_digraph(n, 0.25, s);
        let mut blocked = g.clone();
        blocked_fw_in_place(&mut blocked, b);
        let mut classical = g.clone();
        floyd_warshall_in_place(&mut classical);
        prop_assert!(mat_eq(&blocked, &classical));
    }

    /// Adding edges can only shorten distances (monotonicity).
    #[test]
    fn more_edges_never_lengthen(n in 2usize..9, s in any::<u64>()) {
        let sparse = random_digraph(n, 0.2, s);
        // Densify: overlay extra edges.
        let extra = random_digraph(n, 0.4, s.wrapping_add(7));
        let dense = Matrix::from_fn(n, n, |i, j| sparse[(i, j)].min(extra[(i, j)]));
        let mut ds = sparse.clone();
        floyd_warshall_in_place(&mut ds);
        let mut dd = dense.clone();
        floyd_warshall_in_place(&mut dd);
        for i in 0..n {
            for j in 0..n {
                prop_assert!(dd[(i, j)] <= ds[(i, j)] + 1e-9);
            }
        }
    }
}
