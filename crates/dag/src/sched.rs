//! Pluggable list-scheduling policies.
//!
//! A [`Scheduler`] maps every task of a [`TaskDag`] to a processor of a
//! [`MachineSpec`]. The placement is a *heuristic*: the authoritative
//! running time always comes from simulating the lowered program, so a
//! scheduler's internal cost model only steers placement quality, never
//! the prediction's semantics.
//!
//! Shipped policies:
//!
//! * **round-robin** — task `i` (in topological order) on processor
//!   `i mod P`; the baseline every informed policy should beat;
//! * **min-ready** — earliest-finish-time greedy over topological
//!   order: each task goes where it finishes first, charging the LogGP
//!   [`message_cost`](loggp::LogGpParams::message_cost) of every input
//!   edge that crosses processors (per-link overrides honored) and the
//!   processor's speed factor;
//! * **heft** — HEFT-style: tasks ranked by *upward rank* (mean
//!   computation plus the most expensive downstream chain), then placed
//!   by the same earliest-finish-time rule.

use crate::model::TaskDag;
use loggp::MachineSpec;

/// A computed task-to-processor assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Name of the policy that produced this placement.
    pub scheduler: &'static str,
    /// `proc_of[t]` = processor of task `t`.
    pub proc_of: Vec<usize>,
}

/// A list-scheduling policy.
pub trait Scheduler {
    /// The policy's registry name (CLI `--scheduler` value).
    fn name(&self) -> &'static str;
    /// Assign every task of `dag` to a processor of `machine`.
    ///
    /// `dag` must validate and `machine` must have at least one
    /// processor; implementations may then not panic.
    fn assign(&self, dag: &TaskDag, machine: &MachineSpec) -> Vec<usize>;
}

/// The earliest-finish-time core shared by min-ready and HEFT: walk
/// `order`, place each task where it would finish first under a simple
/// list-schedule estimate (predecessor finish + cross-processor message
/// cost, processor availability, speed-scaled computation).
fn eft_assign(dag: &TaskDag, machine: &MachineSpec, order: &[usize]) -> Vec<usize> {
    let p = machine.procs();
    let n = dag.tasks().len();
    let mut proc_free = vec![0u64; p];
    let mut finish = vec![0u64; n];
    let mut proc_of = vec![0usize; n];
    for &t in order {
        let mut best_fin = u64::MAX;
        let mut best_proc = 0usize;
        for (q, &free) in proc_free.iter().enumerate() {
            let mut ready = 0u64;
            for &e in dag.preds(t) {
                let edge = dag.edges()[e];
                let src_proc = proc_of[edge.src];
                let arrival = if src_proc == q {
                    finish[edge.src]
                } else {
                    let cost = machine.link_params(src_proc, q).message_cost(edge.bytes);
                    finish[edge.src].saturating_add(cost.as_ps())
                };
                ready = ready.max(arrival);
            }
            let start = ready.max(free);
            let fin = start.saturating_add(machine.scale_comp(q, dag.comp_ps(t)).as_ps());
            if fin < best_fin {
                best_fin = fin;
                best_proc = q;
            }
        }
        finish[t] = best_fin;
        proc_of[t] = best_proc;
        proc_free[best_proc] = best_fin;
    }
    proc_of
}

struct RoundRobin;

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn assign(&self, dag: &TaskDag, machine: &MachineSpec) -> Vec<usize> {
        let order = dag.topo_order().expect("dag validated");
        let p = machine.procs();
        let mut proc_of = vec![0usize; dag.tasks().len()];
        for (i, &t) in order.iter().enumerate() {
            proc_of[t] = i % p;
        }
        proc_of
    }
}

struct MinReady;

impl Scheduler for MinReady {
    fn name(&self) -> &'static str {
        "min-ready"
    }

    fn assign(&self, dag: &TaskDag, machine: &MachineSpec) -> Vec<usize> {
        let order = dag.topo_order().expect("dag validated");
        eft_assign(dag, machine, &order)
    }
}

struct Heft;

impl Scheduler for Heft {
    fn name(&self) -> &'static str {
        "heft"
    }

    fn assign(&self, dag: &TaskDag, machine: &MachineSpec) -> Vec<usize> {
        let order = dag.topo_order().expect("dag validated");
        let p = machine.procs() as u64;
        let n = dag.tasks().len();
        // Upward rank in reverse topological order: mean (speed-scaled)
        // computation plus the costliest downstream chain, edges charged
        // at the base network cost weighted by the chance of crossing
        // processors ((P-1)/P).
        let mut rank = vec![0u128; n];
        for &t in order.iter().rev() {
            let mean_comp: u128 = (0..machine.procs())
                .map(|q| machine.scale_comp(q, dag.comp_ps(t)).as_ps() as u128)
                .sum::<u128>()
                / p as u128;
            let mut down = 0u128;
            for &e in dag.succs(t) {
                let edge = dag.edges()[e];
                let wire = machine.base.message_cost(edge.bytes).as_ps() as u128;
                let est = wire * (p as u128 - 1) / p as u128;
                down = down.max(est + rank[edge.dst]);
            }
            rank[t] = mean_comp + down;
        }
        // Descending rank; ties broken by topological position, which
        // keeps predecessors ahead of successors (rank[u] >= rank[v]
        // for every edge u -> v, so only equal ranks need the tie).
        let mut topo_pos = vec![0usize; n];
        for (i, &t) in order.iter().enumerate() {
            topo_pos[t] = i;
        }
        let mut by_rank: Vec<usize> = (0..n).collect();
        by_rank.sort_by(|&a, &b| rank[b].cmp(&rank[a]).then(topo_pos[a].cmp(&topo_pos[b])));
        eft_assign(dag, machine, &by_rank)
    }
}

/// The shipped scheduling policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Topological round-robin (baseline).
    RoundRobin,
    /// Earliest-finish-time greedy over topological order.
    MinReady,
    /// HEFT-style upward-rank list scheduling.
    Heft,
}

impl SchedulerKind {
    /// Every shipped policy, in documentation order.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::RoundRobin,
        SchedulerKind::MinReady,
        SchedulerKind::Heft,
    ];

    /// Parse a `--scheduler` value.
    pub fn parse(s: &str) -> Result<SchedulerKind, String> {
        match s {
            "round-robin" => Ok(SchedulerKind::RoundRobin),
            "min-ready" => Ok(SchedulerKind::MinReady),
            "heft" => Ok(SchedulerKind::Heft),
            other => Err(format!(
                "unknown scheduler '{other}' (expected round-robin, min-ready, or heft)"
            )),
        }
    }

    /// The policy's registry name.
    pub fn name(self) -> &'static str {
        self.scheduler().name()
    }

    /// Instantiate the policy.
    pub fn scheduler(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobin),
            SchedulerKind::MinReady => Box::new(MinReady),
            SchedulerKind::Heft => Box::new(Heft),
        }
    }

    /// Run the policy and wrap the assignment as a [`Placement`].
    pub fn place(self, dag: &TaskDag, machine: &MachineSpec) -> Placement {
        let s = self.scheduler();
        Placement {
            scheduler: s.name(),
            proc_of: s.assign(dag, machine),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use loggp::presets;

    fn machine(p: usize) -> MachineSpec {
        MachineSpec::uniform(presets::meiko_cs2(p))
    }

    #[test]
    fn every_policy_places_every_task_in_range() {
        let dags = [
            generate::fork_join(8, 2, 50_000, 4096),
            generate::map_reduce(6, 3, 40_000, 80_000, 2048),
            generate::random_layered(7, 5, 6, 10_000, 4096),
        ];
        for dag in &dags {
            for kind in SchedulerKind::ALL {
                for p in [1, 3, 8] {
                    let placement = kind.place(dag, &machine(p));
                    assert_eq!(placement.proc_of.len(), dag.tasks().len());
                    assert!(placement.proc_of.iter().all(|&q| q < p), "{kind:?} @ {p}");
                    // Deterministic.
                    assert_eq!(placement, kind.place(dag, &machine(p)));
                }
            }
        }
    }

    #[test]
    fn one_processor_collapses_every_policy_to_serial() {
        let dag = generate::fork_join(4, 2, 10_000, 1024);
        for kind in SchedulerKind::ALL {
            let placement = kind.place(&dag, &machine(1));
            assert!(placement.proc_of.iter().all(|&q| q == 0));
        }
    }

    #[test]
    fn parse_round_trips_names() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(SchedulerKind::parse("fifo").is_err());
    }

    #[test]
    fn min_ready_prefers_a_2x_processor_for_serial_chains() {
        // A pure chain has no parallelism: EFT should put everything on
        // the fast processor (index 0 at 2x), round-robin spreads it.
        let mut dag = crate::model::TaskDag::new("chain", 500);
        let mut prev = dag.add_task("t0", 100_000).unwrap();
        for i in 1..6 {
            let t = dag.add_task(format!("t{i}"), 100_000).unwrap();
            dag.add_edge(prev, t, 64).unwrap();
            prev = t;
        }
        let mut m = machine(4);
        m.speed_permille = vec![2000, 1000, 1000, 1000];
        let placement = SchedulerKind::MinReady.place(&dag, &m);
        assert!(
            placement.proc_of.iter().all(|&q| q == 0),
            "chain should stay on the 2x processor: {:?}",
            placement.proc_of
        );
    }
}
