//! Lowering: placement → oblivious step program.
//!
//! Tasks are grouped into **levels** — `level(t) = 0` for roots,
//! otherwise `1 + max(level(pred))` — and each level becomes one
//! [`Step`]: the step's per-processor computation is the (speed-scaled)
//! sum of the level's tasks placed there, and its communication pattern
//! carries one message per cross-processor edge leaving the level.
//!
//! **Soundness invariant**: every edge `u → v` crosses at least one step
//! boundary, because `level(u) < level(v)` by construction. A same-
//! processor edge needs no message (the processor's steps are serial); a
//! cross-processor edge becomes a message in step `level(u)`, whose
//! receive completes before the destination processor begins the
//! computation of step `level(u) + 1 ≤ level(v)`. So no task can start
//! before every predecessor's output has arrived — verified against the
//! simulator's own timeline by a property test.

use crate::model::TaskDag;
use crate::sched::Placement;
use commsim::CommPattern;
use loggp::{MachineSpec, Time};
use predsim_core::{Program, Step};

/// A lowered DAG: the program plus the mapping that produced it.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The oblivious program (one step per DAG level).
    pub program: Program,
    /// The placement that was lowered.
    pub placement: Placement,
    /// `level_of[t]` = the step index of task `t`.
    pub level_of: Vec<usize>,
    /// Number of levels (= steps in `program`).
    pub levels: usize,
}

/// Lower `dag` under `placement` onto `machine`.
///
/// `dag` must validate, `placement` must cover its tasks with
/// processors below `machine.procs()` — generators, schedulers, and the
/// file parser guarantee this; the function panics otherwise.
pub fn lower(dag: &TaskDag, placement: &Placement, machine: &MachineSpec) -> Lowered {
    let procs = machine.procs();
    let n = dag.tasks().len();
    assert_eq!(placement.proc_of.len(), n, "placement covers every task");
    let order = dag.topo_order().expect("dag validated");

    let mut level_of = vec![0usize; n];
    let mut levels = 0usize;
    for &t in &order {
        let mut level = 0usize;
        for &e in dag.preds(t) {
            level = level.max(level_of[dag.edges()[e].src] + 1);
        }
        level_of[t] = level;
        levels = levels.max(level + 1);
    }

    let mut comp: Vec<Vec<Time>> = vec![vec![Time::ZERO; procs]; levels];
    let mut pats: Vec<CommPattern> = (0..levels).map(|_| CommPattern::new(procs)).collect();
    for t in 0..n {
        let q = placement.proc_of[t];
        assert!(q < procs, "placement stays in range");
        let scaled = machine.scale_comp(q, dag.comp_ps(t));
        comp[level_of[t]][q] = comp[level_of[t]][q].saturating_add(scaled);
    }
    for e in dag.edges() {
        let (src_proc, dst_proc) = (placement.proc_of[e.src], placement.proc_of[e.dst]);
        if src_proc != dst_proc {
            pats[level_of[e.src]].add(src_proc, dst_proc, e.bytes);
        }
    }

    let mut program = Program::new(procs);
    for (level, (c, pat)) in comp.into_iter().zip(pats).enumerate() {
        let mut step = Step::new(format!("dag level {level}")).with_comp(c);
        if !pat.is_empty() {
            step = step.with_comm(pat);
        }
        program.push(step);
    }
    Lowered {
        program,
        placement: placement.clone(),
        level_of,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::sched::SchedulerKind;
    use loggp::presets;

    fn machine(p: usize) -> MachineSpec {
        MachineSpec::uniform(presets::meiko_cs2(p))
    }

    #[test]
    fn every_edge_crosses_a_step_boundary() {
        for dag in [
            generate::fork_join(8, 2, 50_000, 4096),
            generate::map_reduce(6, 3, 40_000, 80_000, 2048),
            generate::random_layered(11, 6, 5, 10_000, 4096),
        ] {
            let m = machine(4);
            for kind in SchedulerKind::ALL {
                let lowered = lower(&dag, &kind.place(&dag, &m), &m);
                assert_eq!(lowered.program.len(), lowered.levels);
                for e in dag.edges() {
                    assert!(
                        lowered.level_of[e.src] < lowered.level_of[e.dst],
                        "{kind:?}: edge {} -> {} within one level",
                        e.src,
                        e.dst
                    );
                }
            }
        }
    }

    #[test]
    fn cross_processor_edges_become_messages_same_processor_edges_do_not() {
        let dag = generate::fork_join(4, 1, 10_000, 1024);
        let m = machine(2);
        let placement = SchedulerKind::RoundRobin.place(&dag, &m);
        let lowered = lower(&dag, &placement, &m);
        let mut expected = 0usize;
        for e in dag.edges() {
            if placement.proc_of[e.src] != placement.proc_of[e.dst] {
                expected += 1;
            }
        }
        assert_eq!(lowered.program.total_messages(), expected);
        // On one processor nothing crosses: a message-free program.
        let m1 = machine(1);
        let serial = lower(&dag, &SchedulerKind::Heft.place(&dag, &m1), &m1);
        assert_eq!(serial.program.total_messages(), 0);
    }

    #[test]
    fn speed_factors_scale_the_lowered_computation() {
        let mut dag = crate::model::TaskDag::new("two", 500);
        dag.add_task("a", 1000).unwrap();
        dag.add_task("b", 1000).unwrap();
        let mut m = machine(2);
        m.speed_permille = vec![2000, 1000];
        let placement = Placement {
            scheduler: "manual",
            proc_of: vec![0, 1],
        };
        let lowered = lower(&dag, &placement, &m);
        let step = &lowered.program.steps()[0];
        assert_eq!(step.comp[0], Time::from_ps(250_000), "2x processor");
        assert_eq!(step.comp[1], Time::from_ps(500_000), "base processor");
    }
}
