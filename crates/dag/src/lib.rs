//! Task-DAG workloads lowered to oblivious step programs.
//!
//! The paper predicts running times of *oblivious* programs: fixed
//! per-step computation and communication, simulated under LogGP. This
//! crate generalizes the workload side without touching the predictor:
//! an arbitrary task DAG (tasks with a flop cost, edges with a byte
//! payload) is **scheduled** onto the processors of a possibly
//! heterogeneous [`loggp::MachineSpec`] and then **lowered** to a
//! multi-step [`predsim_core::Program`] whose step chaining enforces
//! every task dependency. The optimized simulator, the memo cache, the
//! static bounds analyzer, fault injection and the serve tiers all work
//! on the lowered program unchanged.
//!
//! The pieces:
//!
//! * [`model`] — [`TaskDag`]: tasks, edges, topological order,
//!   validation;
//! * [`format`] — a strict line-oriented file format
//!   (`dag`/`task`/`edge` lines) that round-trips bit-exactly;
//! * [`generate`] — deterministic generators: fork-join, map-reduce,
//!   and a seeded random layered DAG;
//! * [`sched`] — the [`Scheduler`] trait and the shipped policies:
//!   round-robin, min-ready (earliest-finish-time greedy), and a
//!   HEFT-style rank-based scheduler;
//! * [`lower`] — placement → [`predsim_core::Program`], one step per
//!   DAG level, computation scaled by per-processor speed factors;
//! * [`sweep`] — speedup estimation: simulate a DAG over a range of
//!   processor counts and report the speedup curve, parallel
//!   efficiency, and the knee (near-optimal processor count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod generate;
pub mod lower;
pub mod model;
pub mod sched;
pub mod sweep;

pub use format::ParseError;
pub use lower::{lower, Lowered};
pub use model::{Edge, Task, TaskDag};
pub use sched::{Placement, Scheduler, SchedulerKind};
pub use sweep::{parse_procs, sweep, SweepPoint, SweepReport};
