//! Deterministic DAG generators.
//!
//! Three shapes cover the benchmark space: **fork-join** (the classic
//! bulk-synchronous shape the paper's applications follow), **map-reduce**
//! (an all-to-all shuffle between two uneven phases), and a **random
//! layered DAG** grown from a seed (splitmix64, so the same spec string
//! builds the same DAG on every platform).
//!
//! All generators charge [`PS_PER_FLOP`] picoseconds per flop — a 2
//! GFLOP/s base processor, in the range of the paper's Meiko CS-2 nodes.

use crate::model::TaskDag;

/// Picoseconds per flop used by every shipped generator (2 GFLOP/s).
pub const PS_PER_FLOP: u64 = 500;

/// Fork-join: a source task, then `stages` rounds of `width` parallel
/// workers funneled through a join task. `1 + stages × (width + 1)`
/// tasks; every edge carries `bytes`.
pub fn fork_join(width: usize, stages: usize, flops: u64, bytes: usize) -> TaskDag {
    let mut d = TaskDag::new("forkjoin", PS_PER_FLOP);
    let mut hub = d.add_task("src", flops).expect("fresh dag");
    for s in 0..stages {
        let mut workers = Vec::with_capacity(width);
        for i in 0..width {
            let w = d.add_task(format!("s{s}w{i}"), flops).expect("unique name");
            d.add_edge(hub, w, bytes).expect("valid edge");
            workers.push(w);
        }
        let join = d.add_task(format!("join{s}"), flops).expect("unique name");
        for w in workers {
            d.add_edge(w, join, bytes).expect("valid edge");
        }
        hub = join;
    }
    d
}

/// Map-reduce: a splitter fans out to `maps` mappers, an all-pairs
/// shuffle feeds `reducers` reducers, and a sink collects the results.
/// `maps + reducers + 2` tasks; shuffle and fan edges carry `bytes`.
pub fn map_reduce(
    maps: usize,
    reducers: usize,
    map_flops: u64,
    reduce_flops: u64,
    bytes: usize,
) -> TaskDag {
    let mut d = TaskDag::new("mapreduce", PS_PER_FLOP);
    let split = d.add_task("split", 1).expect("fresh dag");
    let mut map_ids = Vec::with_capacity(maps);
    for i in 0..maps {
        let m = d
            .add_task(format!("map{i}"), map_flops)
            .expect("unique name");
        d.add_edge(split, m, bytes).expect("valid edge");
        map_ids.push(m);
    }
    let sink = d.add_task("sink", 1).expect("unique name");
    for j in 0..reducers {
        let r = d
            .add_task(format!("reduce{j}"), reduce_flops)
            .expect("unique name");
        for &m in &map_ids {
            d.add_edge(m, r, bytes).expect("valid edge");
        }
        d.add_edge(r, sink, bytes).expect("valid edge");
    }
    d
}

/// splitmix64: the standard 64-bit mixing PRNG (public domain, Vigna).
/// Deterministic and platform-independent.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A random layered DAG: `layers` layers of `1..=width` tasks each;
/// every task past the first layer draws at least one predecessor from
/// the previous layer. Costs are uniform in `1..=max_flops` flops and
/// `1..=max_bytes` bytes. The same seed always builds the same DAG.
pub fn random_layered(
    seed: u64,
    layers: usize,
    width: usize,
    max_flops: u64,
    max_bytes: usize,
) -> TaskDag {
    let layers = layers.max(1);
    let width = width.max(1);
    let max_flops = max_flops.max(1);
    let max_bytes = max_bytes.max(1);
    let mut rng = seed;
    let mut d = TaskDag::new(format!("layered{seed}"), PS_PER_FLOP);
    let mut prev: Vec<usize> = Vec::new();
    for l in 0..layers {
        let count = 1 + (splitmix64(&mut rng) as usize) % width;
        let mut layer = Vec::with_capacity(count);
        for i in 0..count {
            let flops = 1 + splitmix64(&mut rng) % max_flops;
            let t = d.add_task(format!("l{l}t{i}"), flops).expect("unique name");
            if !prev.is_empty() {
                let picks = 1 + (splitmix64(&mut rng) as usize) % prev.len();
                let mut from = prev.clone();
                for _ in 0..picks {
                    let j = (splitmix64(&mut rng) as usize) % from.len();
                    let p = from.swap_remove(j);
                    let bytes = 1 + (splitmix64(&mut rng) as usize) % max_bytes;
                    d.add_edge(p, t, bytes).expect("valid edge");
                }
            }
            layer.push(t);
        }
        prev = layer;
    }
    d
}

/// Build a DAG from a generator spec:
///
/// * `forkjoin:WIDTH,STAGES,FLOPS,BYTES`
/// * `mapreduce:MAPS,REDUCERS,MAP_FLOPS,REDUCE_FLOPS,BYTES`
/// * `layered:SEED,LAYERS,WIDTH,MAX_FLOPS,MAX_BYTES`
pub fn from_spec(spec: &str) -> Result<TaskDag, String> {
    let (kind, body) = spec
        .split_once(':')
        .ok_or_else(|| format!("dag spec '{spec}' has no ':' (expected KIND:ARGS)"))?;
    let nums: Vec<u64> = body
        .split(',')
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("dag spec '{spec}': '{s}' is not an unsigned integer"))
        })
        .collect::<Result<_, _>>()?;
    let arity = |n: usize, shape: &str| {
        if nums.len() == n {
            Ok(())
        } else {
            Err(format!("dag spec '{spec}': expected {shape}"))
        }
    };
    let dag = match kind {
        "forkjoin" => {
            arity(4, "forkjoin:WIDTH,STAGES,FLOPS,BYTES")?;
            fork_join(
                nums[0] as usize,
                nums[1] as usize,
                nums[2],
                nums[3] as usize,
            )
        }
        "mapreduce" => {
            arity(5, "mapreduce:MAPS,REDUCERS,MAP_FLOPS,REDUCE_FLOPS,BYTES")?;
            map_reduce(
                nums[0] as usize,
                nums[1] as usize,
                nums[2],
                nums[3],
                nums[4] as usize,
            )
        }
        "layered" => {
            arity(5, "layered:SEED,LAYERS,WIDTH,MAX_FLOPS,MAX_BYTES")?;
            random_layered(
                nums[0],
                nums[1] as usize,
                nums[2] as usize,
                nums[3],
                nums[4] as usize,
            )
        }
        other => return Err(format!("unknown dag generator '{other}'")),
    };
    dag.validate()?;
    Ok(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format;

    #[test]
    fn fork_join_has_the_documented_shape() {
        let d = fork_join(32, 1, 100_000, 8192);
        assert_eq!(d.tasks().len(), 34, "1 + 1 * (32 + 1)");
        assert_eq!(d.edges().len(), 64);
        d.validate().unwrap();
        let d2 = fork_join(4, 3, 10, 64);
        assert_eq!(d2.tasks().len(), 1 + 3 * 5);
        d2.validate().unwrap();
    }

    #[test]
    fn map_reduce_shuffles_all_pairs() {
        let d = map_reduce(4, 2, 1000, 2000, 256);
        assert_eq!(d.tasks().len(), 8);
        // 4 fan-out + 4*2 shuffle + 2 fan-in.
        assert_eq!(d.edges().len(), 14);
        d.validate().unwrap();
    }

    #[test]
    fn random_layered_is_deterministic_and_valid() {
        for seed in 0..20 {
            let d = random_layered(seed, 5, 6, 5000, 4096);
            d.validate().unwrap();
            assert_eq!(d, random_layered(seed, 5, 6, 5000, 4096));
            // Every non-root task has at least one predecessor.
            let roots = (0..d.tasks().len())
                .filter(|&t| d.preds(t).is_empty())
                .count();
            assert!(roots >= 1);
        }
        assert_ne!(
            random_layered(1, 5, 6, 5000, 4096),
            random_layered(2, 5, 6, 5000, 4096)
        );
    }

    #[test]
    fn specs_build_round_trippable_dags() {
        for spec in [
            "forkjoin:32,1,100000,8192",
            "mapreduce:8,4,50000,100000,4096",
            "layered:42,6,5,10000,2048",
        ] {
            let d = from_spec(spec).unwrap();
            let text = format::dump(&d);
            assert_eq!(format::parse(&text).unwrap(), d, "{spec}");
        }
        assert!(from_spec("forkjoin:1,2").is_err(), "arity");
        assert!(from_spec("ring:4").is_err(), "unknown kind");
        assert!(from_spec("forkjoin:a,b,c,d").is_err(), "bad int");
        assert!(from_spec("noargs").is_err(), "no colon");
    }
}
