//! Speedup estimation: simulate one DAG over a range of processor
//! counts and report the predicted curve.
//!
//! For each processor count the DAG is scheduled, lowered, and run
//! through the real simulator (never the scheduler's internal
//! estimate). Speedup and parallel efficiency are reported in exact
//! integer permille of the single-processor prediction, and the **knee**
//! — the largest processor count still at ≥ 50% parallel efficiency —
//! names the near-optimal configuration. The JSON document rendered by
//! [`SweepReport::to_value`] is the exact payload of `POST /v1/speedup`
//! and of `predsim dag-sweep --json` (byte-identical by test).

use crate::model::TaskDag;
use crate::sched::SchedulerKind;
use loggp::{MachineSpec, Time};
use predsim_core::{simulate_program, SimOptions};
use predsim_lint::json::Value;

/// Parallel efficiency (permille) at or above which a processor count
/// still counts as well-used; the knee is the largest such count.
pub const KNEE_EFFICIENCY_PERMILLE: u64 = 500;

/// One simulated configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// Processor count of this configuration.
    pub procs: usize,
    /// Predicted running time.
    pub total: Time,
    /// `T(1) / T(procs)` in permille.
    pub speedup_permille: u64,
    /// `speedup / procs` in permille.
    pub efficiency_permille: u64,
}

/// A full speedup sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepReport {
    /// Name of the swept DAG.
    pub dag: String,
    /// Task count.
    pub tasks: usize,
    /// Edge count.
    pub edges: usize,
    /// Scheduling policy used at every point.
    pub scheduler: &'static str,
    /// Machine name the sweep ran on.
    pub machine: String,
    /// The single-processor prediction all speedups are relative to.
    pub t1: Time,
    /// The near-optimal processor count (largest swept count at
    /// ≥ [`KNEE_EFFICIENCY_PERMILLE`] efficiency, else the smallest
    /// swept count).
    pub knee: usize,
    /// One entry per swept processor count, ascending.
    pub points: Vec<SweepPoint>,
}

/// Parse a `--procs` range: `N` (just that count) or `A..B` (inclusive).
/// Counts are capped at `max`.
pub fn parse_procs(s: &str, max: usize) -> Result<Vec<usize>, String> {
    let parse_one = |t: &str| -> Result<usize, String> {
        t.parse::<usize>()
            .map_err(|_| format!("'{t}' is not a processor count"))
    };
    let (lo, hi) = match s.split_once("..") {
        Some((a, b)) => (parse_one(a)?, parse_one(b)?),
        None => {
            let n = parse_one(s)?;
            (n, n)
        }
    };
    if lo == 0 {
        return Err("processor counts start at 1".into());
    }
    if hi < lo {
        return Err(format!("empty processor range {lo}..{hi}"));
    }
    if hi > max {
        return Err(format!("processor count {hi} exceeds the limit of {max}"));
    }
    Ok((lo..=hi).collect())
}

fn simulate_at(
    dag: &TaskDag,
    kind: SchedulerKind,
    spec: &MachineSpec,
    procs: usize,
) -> Result<Time, String> {
    let sub = spec.retarget(procs)?;
    let lowered = crate::lower::lower(dag, &kind.place(dag, &sub), &sub);
    let opts = SimOptions::new(commsim::SimConfig::new(sub.base));
    Ok(simulate_program(&lowered.program, &opts).total)
}

/// Sweep `dag` under scheduler `kind` on `spec` (which must describe at
/// least `max(procs)` processors) across the given processor counts.
///
/// `machine` is the name recorded in the report; `procs` must be
/// non-empty and ascending (as produced by [`parse_procs`]).
pub fn sweep(
    dag: &TaskDag,
    kind: SchedulerKind,
    machine: &str,
    spec: &MachineSpec,
    procs: &[usize],
) -> Result<SweepReport, String> {
    dag.validate()?;
    spec.validate()?;
    if procs.is_empty() {
        return Err("no processor counts to sweep".into());
    }
    let t1 = simulate_at(dag, kind, spec, 1)?;
    let mut points = Vec::with_capacity(procs.len());
    for &p in procs {
        let total = if p == 1 {
            t1
        } else {
            simulate_at(dag, kind, spec, p)?
        };
        // total == 0 cannot happen (validate forces at least one task
        // with ps_per_flop >= 1), but guard the division anyway.
        let speedup_permille = if total.is_zero() {
            1000
        } else {
            t1.as_ps().saturating_mul(1000) / total.as_ps()
        };
        let efficiency_permille = speedup_permille / p as u64;
        points.push(SweepPoint {
            procs: p,
            total,
            speedup_permille,
            efficiency_permille,
        });
    }
    let knee = points
        .iter()
        .filter(|pt| pt.efficiency_permille >= KNEE_EFFICIENCY_PERMILLE)
        .map(|pt| pt.procs)
        .max()
        .unwrap_or(points[0].procs);
    Ok(SweepReport {
        dag: dag.name().to_string(),
        tasks: dag.tasks().len(),
        edges: dag.edges().len(),
        scheduler: kind.name(),
        machine: machine.to_string(),
        t1,
        knee,
        points,
    })
}

impl SweepReport {
    /// The strict-JSON document: identical bytes from the CLI
    /// (`--json`, compact) and from `POST /v1/speedup`.
    pub fn to_value(&self) -> Value {
        let int = |n: u64| Value::Int(n as i64);
        Value::Object(vec![
            ("version".into(), Value::Int(1)),
            ("dag".into(), Value::Str(self.dag.clone())),
            ("tasks".into(), int(self.tasks as u64)),
            ("edges".into(), int(self.edges as u64)),
            ("scheduler".into(), Value::Str(self.scheduler.to_string())),
            ("machine".into(), Value::Str(self.machine.clone())),
            ("t1_ps".into(), int(self.t1.as_ps())),
            ("knee_procs".into(), int(self.knee as u64)),
            (
                "points".into(),
                Value::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("procs".into(), int(p.procs as u64)),
                                ("total_ps".into(), int(p.total.as_ps())),
                                ("speedup_permille".into(), int(p.speedup_permille)),
                                ("efficiency_permille".into(), int(p.efficiency_permille)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use loggp::presets;

    fn spec(p: usize) -> MachineSpec {
        MachineSpec::uniform(presets::meiko_cs2(p))
    }

    #[test]
    fn parse_procs_handles_ranges_and_rejects_nonsense() {
        assert_eq!(parse_procs("4", 64).unwrap(), vec![4]);
        assert_eq!(parse_procs("1..4", 64).unwrap(), vec![1, 2, 3, 4]);
        assert!(parse_procs("0..4", 64).is_err());
        assert!(parse_procs("4..2", 64).is_err());
        assert!(parse_procs("1..65", 64).is_err());
        assert!(parse_procs("x", 64).is_err());
        assert!(parse_procs("1..y", 64).is_err());
    }

    #[test]
    fn fork_join_speedup_grows_then_knee_is_reported() {
        let dag = generate::fork_join(32, 1, 1_000_000, 8192);
        let procs: Vec<usize> = (1..=16).collect();
        let report = sweep(&dag, SchedulerKind::Heft, "meiko", &spec(16), &procs).unwrap();
        assert_eq!(report.points.len(), 16);
        assert_eq!(report.points[0].speedup_permille, 1000);
        assert_eq!(report.points[0].efficiency_permille, 1000);
        // More processors never hurt a fork-join under HEFT enough to
        // fall below serial.
        let best = report
            .points
            .iter()
            .map(|p| p.speedup_permille)
            .max()
            .unwrap();
        assert!(best > 1500, "parallelism pays off: best {best} permille");
        assert!((1..=16).contains(&report.knee));
        let knee_pt = report
            .points
            .iter()
            .find(|p| p.procs == report.knee)
            .unwrap();
        assert!(knee_pt.efficiency_permille >= KNEE_EFFICIENCY_PERMILLE);
    }

    #[test]
    fn report_json_has_the_documented_shape() {
        let dag = generate::fork_join(4, 1, 50_000, 1024);
        let report = sweep(&dag, SchedulerKind::MinReady, "meiko", &spec(4), &[1, 2, 4]).unwrap();
        let v = report.to_value();
        assert_eq!(v.get("version").and_then(Value::as_int), Some(1));
        assert_eq!(v.get("dag").and_then(Value::as_str), Some("forkjoin"));
        assert_eq!(
            v.get("scheduler").and_then(Value::as_str),
            Some("min-ready")
        );
        let points = v.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].get("procs").and_then(Value::as_int), Some(1));
        // Compact render parses back with the workspace's strict parser.
        let text = v.to_compact();
        assert_eq!(predsim_lint::json::parse(&text).unwrap(), v);
    }

    #[test]
    fn sweep_rejects_empty_ranges_and_bad_machines() {
        let dag = generate::fork_join(4, 1, 1000, 64);
        assert!(sweep(&dag, SchedulerKind::Heft, "m", &spec(4), &[]).is_err());
        // A heterogeneous spec cannot be extended past its description.
        let mut het = spec(2);
        het.speed_permille = vec![2000, 1000];
        assert!(sweep(&dag, SchedulerKind::Heft, "m", &het, &[1, 4]).is_err());
    }
}
