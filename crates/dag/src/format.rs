//! The strict line-oriented DAG file format.
//!
//! ```text
//! # comment
//! dag name=pipeline ps_per_flop=500
//! task src 100000
//! task sink 100000
//! edge src sink 8192
//! ```
//!
//! One `dag` header line first, then `task NAME FLOPS` lines, then
//! `edge SRC DST BYTES` lines referencing task *names*. Blank lines and
//! `#` comments are skipped; anything else is a hard error with a line
//! number. [`parse`] ∘ [`dump`] is the identity on values and [`dump`]
//! is canonical, so files round-trip bit-exactly.

use crate::model::TaskDag;

/// A parse failure, located by 1-based line number (`0` = whole file).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input; `0` for whole-file errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn key_value<'a>(token: &'a str, key: &str, line: usize) -> Result<&'a str, ParseError> {
    match token.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(err(line, format!("expected '{key}=...', found '{token}'"))),
    }
}

fn int(s: &str, what: &str, line: usize) -> Result<u64, ParseError> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(err(
            line,
            format!("{what} must be an unsigned integer, found '{s}'"),
        ));
    }
    if s.len() > 1 && s.starts_with('0') {
        return Err(err(line, format!("{what}: leading zeros are not allowed")));
    }
    s.parse::<u64>()
        .map_err(|e| err(line, format!("{what}: {e}")))
}

/// Parse a DAG file. The result is validated (acyclic, non-empty,
/// costs in range).
pub fn parse(text: &str) -> Result<TaskDag, ParseError> {
    let mut dag: Option<TaskDag> = None;
    let mut seen_edge = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tokens = trimmed.split_ascii_whitespace();
        let kind = tokens.next().expect("non-empty line has a token");
        let rest: Vec<&str> = tokens.collect();
        match kind {
            "dag" => {
                if dag.is_some() {
                    return Err(err(line, "duplicate 'dag' header"));
                }
                if rest.len() != 2 {
                    return Err(err(line, "expected 'dag name=NAME ps_per_flop=N'"));
                }
                let name = key_value(rest[0], "name", line)?;
                let ppf = int(
                    key_value(rest[1], "ps_per_flop", line)?,
                    "ps_per_flop",
                    line,
                )?;
                dag = Some(TaskDag::new(name, ppf));
            }
            "task" => {
                let d = dag
                    .as_mut()
                    .ok_or_else(|| err(line, "'task' before the 'dag' header"))?;
                if seen_edge {
                    return Err(err(line, "'task' after the first 'edge' line"));
                }
                if rest.len() != 2 {
                    return Err(err(line, "expected 'task NAME FLOPS'"));
                }
                let flops = int(rest[1], "flops", line)?;
                d.add_task(rest[0], flops).map_err(|e| err(line, e))?;
            }
            "edge" => {
                let d = dag
                    .as_mut()
                    .ok_or_else(|| err(line, "'edge' before the 'dag' header"))?;
                seen_edge = true;
                if rest.len() != 3 {
                    return Err(err(line, "expected 'edge SRC DST BYTES'"));
                }
                let src = d
                    .task_index(rest[0])
                    .ok_or_else(|| err(line, format!("unknown task '{}'", rest[0])))?;
                let dst = d
                    .task_index(rest[1])
                    .ok_or_else(|| err(line, format!("unknown task '{}'", rest[1])))?;
                let bytes = int(rest[2], "bytes", line)?;
                let bytes = usize::try_from(bytes).map_err(|_| err(line, "bytes out of range"))?;
                d.add_edge(src, dst, bytes).map_err(|e| err(line, e))?;
            }
            other => {
                return Err(err(
                    line,
                    format!("unknown directive '{other}' (expected 'dag', 'task', or 'edge')"),
                ));
            }
        }
    }
    let dag = dag.ok_or_else(|| err(0, "missing 'dag' header"))?;
    dag.validate().map_err(|e| err(0, e))?;
    Ok(dag)
}

/// Render a DAG in the canonical file format (trailing newline).
pub fn dump(dag: &TaskDag) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "dag name={} ps_per_flop={}",
        dag.name(),
        dag.ps_per_flop()
    );
    for t in dag.tasks() {
        let _ = writeln!(s, "task {} {}", t.name, t.flops);
    }
    for e in dag.edges() {
        let _ = writeln!(
            s,
            "edge {} {} {}",
            dag.tasks()[e.src].name,
            dag.tasks()[e.dst].name,
            e.bytes
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const PIPELINE: &str = "\
# a two-stage pipeline
dag name=pipeline ps_per_flop=500

task src 100000
task mid 200000
task sink 50000
edge src mid 8192
edge mid sink 4096
";

    #[test]
    fn parse_dump_round_trips_bit_exactly() {
        let dag = parse(PIPELINE).unwrap();
        assert_eq!(dag.tasks().len(), 3);
        assert_eq!(dag.edges().len(), 2);
        let canonical = dump(&dag);
        let again = parse(&canonical).unwrap();
        assert_eq!(again, dag);
        assert_eq!(dump(&again), canonical, "dump is canonical");
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, line, why) in [
            ("task a 1\n", 1, "task before header"),
            ("dag name=x ps_per_flop=500\ntask a one\n", 2, "bad integer"),
            (
                "dag name=x ps_per_flop=500\ntask a 1\nedge a b 1\n",
                3,
                "unknown task",
            ),
            (
                "dag name=x ps_per_flop=500\nnode a 1\n",
                2,
                "unknown directive",
            ),
            (
                "dag name=x ps_per_flop=500\ntask a 1\ntask a 1\n",
                3,
                "duplicate",
            ),
            (
                "dag name=x ps_per_flop=500\ntask a 1\ntask b 1\nedge a b 1\ntask c 1\n",
                5,
                "task after edge",
            ),
            ("dag name=x ps_per_flop=500\ntask a 01\n", 2, "leading zero"),
        ] {
            let e = parse(text).unwrap_err();
            assert_eq!(e.line, line, "{why}: {e}");
        }
        assert_eq!(parse("").unwrap_err().line, 0, "missing header");
        // Cycles are whole-file errors (detected at validation).
        let cyc = "dag name=c ps_per_flop=1\ntask a 1\ntask b 1\nedge a b 1\nedge b a 1\n";
        let e = parse(cyc).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("cycle"), "{e}");
    }
}
