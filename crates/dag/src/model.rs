//! The task-DAG model: named tasks with flop costs, directed edges with
//! byte payloads.
//!
//! Costs stay integral end to end: a task's computation time is
//! `flops × ps_per_flop` picoseconds, so the same DAG predicts
//! bit-identically everywhere. Cycles, dangling edges, duplicate names,
//! and overflowing costs are all rejected by [`TaskDag::validate`].

use loggp::Time;

/// One unit of work: a name (unique within the DAG) and a flop cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Task {
    /// Task name (letters, digits, `-`, `_`, `.`).
    pub name: String,
    /// Work in floating-point operations; time is `flops × ps_per_flop`.
    pub flops: u64,
}

/// A data dependency: `dst` consumes `bytes` produced by `src` and may
/// not start before they arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Producing task index.
    pub src: usize,
    /// Consuming task index.
    pub dst: usize,
    /// Payload size; `0` is a pure precedence edge.
    pub bytes: usize,
}

/// A directed acyclic task graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskDag {
    name: String,
    ps_per_flop: u64,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

fn check_task_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("task name must not be empty".into());
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')))
    {
        return Err(format!(
            "task name '{name}' contains '{c}' (allowed: letters, digits, '-', '_', '.')"
        ));
    }
    Ok(())
}

impl TaskDag {
    /// An empty DAG charging `ps_per_flop` picoseconds per flop.
    pub fn new(name: impl Into<String>, ps_per_flop: u64) -> TaskDag {
        TaskDag {
            name: name.into(),
            ps_per_flop,
            tasks: Vec::new(),
            edges: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
        }
    }

    /// The DAG's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Picoseconds charged per flop.
    pub fn ps_per_flop(&self) -> u64 {
        self.ps_per_flop
    }

    /// The tasks, in insertion order (task indices index this slice).
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The edges, in insertion order (edge indices index this slice).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge indices whose `dst` is task `t`.
    pub fn preds(&self, t: usize) -> &[usize] {
        &self.preds[t]
    }

    /// Edge indices whose `src` is task `t`.
    pub fn succs(&self, t: usize) -> &[usize] {
        &self.succs[t]
    }

    /// Add a task; returns its index.
    pub fn add_task(&mut self, name: impl Into<String>, flops: u64) -> Result<usize, String> {
        let name = name.into();
        check_task_name(&name)?;
        if self.tasks.iter().any(|t| t.name == name) {
            return Err(format!("duplicate task name '{name}'"));
        }
        self.tasks.push(Task { name, flops });
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        Ok(self.tasks.len() - 1)
    }

    /// Add an edge `src → dst`; returns its index.
    pub fn add_edge(&mut self, src: usize, dst: usize, bytes: usize) -> Result<usize, String> {
        if src >= self.tasks.len() || dst >= self.tasks.len() {
            return Err(format!(
                "edge {src} -> {dst} references a task outside 0..{}",
                self.tasks.len()
            ));
        }
        if src == dst {
            return Err(format!("edge {src} -> {src} is a self-loop"));
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(format!(
                "duplicate edge '{}' -> '{}'",
                self.tasks[src].name, self.tasks[dst].name
            ));
        }
        self.edges.push(Edge { src, dst, bytes });
        let id = self.edges.len() - 1;
        self.preds[dst].push(id);
        self.succs[src].push(id);
        Ok(id)
    }

    /// Look a task up by name.
    pub fn task_index(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name == name)
    }

    /// The computation time of task `t` at base speed.
    pub fn comp_ps(&self, t: usize) -> Time {
        Time::from_ps(self.tasks[t].flops.saturating_mul(self.ps_per_flop))
    }

    /// A deterministic topological order (Kahn's algorithm, always
    /// picking the smallest ready task index), or an error naming a task
    /// on a cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, String> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = (0..n).map(|t| self.preds[t].len()).collect();
        let mut ready: BinaryHeap<Reverse<usize>> =
            (0..n).filter(|&t| indeg[t] == 0).map(Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(t)) = ready.pop() {
            order.push(t);
            for &e in &self.succs[t] {
                let d = self.edges[e].dst;
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    ready.push(Reverse(d));
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n).find(|&t| indeg[t] > 0).expect("cycle has a member");
            return Err(format!(
                "dependency cycle through task '{}'",
                self.tasks[stuck].name
            ));
        }
        Ok(order)
    }

    /// The length of the longest computation-only path (the lower bound
    /// no schedule can beat, ignoring communication).
    pub fn critical_path(&self) -> Time {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return Time::ZERO,
        };
        let mut cp = vec![Time::ZERO; self.tasks.len()];
        let mut best = Time::ZERO;
        for &t in &order {
            let mut start = Time::ZERO;
            for &e in &self.preds[t] {
                start = start.max(cp[self.edges[e].src]);
            }
            cp[t] = start.saturating_add(self.comp_ps(t));
            best = best.max(cp[t]);
        }
        best
    }

    /// Total computation across all tasks at base speed.
    pub fn total_comp(&self) -> Time {
        (0..self.tasks.len())
            .map(|t| self.comp_ps(t))
            .fold(Time::ZERO, |a, b| a.saturating_add(b))
    }

    /// Check every invariant: a valid name, at least one task, a
    /// positive flop charge that cannot overflow, and acyclicity.
    /// (Task-name and edge-shape errors are already rejected by
    /// [`TaskDag::add_task`]/[`TaskDag::add_edge`].)
    pub fn validate(&self) -> Result<(), String> {
        check_task_name(&self.name).map_err(|e| format!("dag name: {e}"))?;
        if self.tasks.is_empty() {
            return Err("dag has no tasks".into());
        }
        if self.ps_per_flop == 0 {
            return Err("ps_per_flop must be at least 1".into());
        }
        for t in &self.tasks {
            if t.flops.checked_mul(self.ps_per_flop).is_none() {
                return Err(format!(
                    "task '{}': {} flops x {} ps/flop overflows",
                    t.name, t.flops, self.ps_per_flop
                ));
            }
        }
        self.topo_order().map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskDag {
        let mut d = TaskDag::new("diamond", 500);
        let a = d.add_task("a", 10).unwrap();
        let b = d.add_task("b", 20).unwrap();
        let c = d.add_task("c", 30).unwrap();
        let s = d.add_task("s", 5).unwrap();
        d.add_edge(a, b, 100).unwrap();
        d.add_edge(a, c, 100).unwrap();
        d.add_edge(b, s, 50).unwrap();
        d.add_edge(c, s, 50).unwrap();
        d
    }

    #[test]
    fn construction_rejects_malformed_pieces() {
        let mut d = TaskDag::new("t", 1);
        assert!(d.add_task("", 1).is_err());
        assert!(d.add_task("has space", 1).is_err());
        d.add_task("a", 1).unwrap();
        assert!(d.add_task("a", 2).is_err(), "duplicate name");
        d.add_task("b", 1).unwrap();
        assert!(d.add_edge(0, 0, 1).is_err(), "self-loop");
        assert!(d.add_edge(0, 9, 1).is_err(), "dangling");
        d.add_edge(0, 1, 1).unwrap();
        assert!(d.add_edge(0, 1, 2).is_err(), "duplicate edge");
    }

    #[test]
    fn topo_order_is_deterministic_and_detects_cycles() {
        let d = diamond();
        assert_eq!(d.topo_order().unwrap(), vec![0, 1, 2, 3]);
        d.validate().unwrap();
        let mut cyc = TaskDag::new("cyc", 1);
        cyc.add_task("a", 1).unwrap();
        cyc.add_task("b", 1).unwrap();
        cyc.add_edge(0, 1, 1).unwrap();
        cyc.add_edge(1, 0, 1).unwrap();
        let err = cyc.validate().unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn costs_are_exact_integer_picoseconds() {
        let d = diamond();
        assert_eq!(d.comp_ps(0), Time::from_ps(5000));
        assert_eq!(d.total_comp(), Time::from_ps(500 * 65));
        // a -> c -> s is the longest comp path: (10 + 30 + 5) * 500.
        assert_eq!(d.critical_path(), Time::from_ps(500 * 45));
    }

    #[test]
    fn validate_rejects_empty_and_overflowing_dags() {
        assert!(TaskDag::new("empty", 1).validate().is_err());
        let mut d = TaskDag::new("big", u64::MAX);
        d.add_task("t", 2).unwrap();
        assert!(d.validate().is_err(), "cost overflow");
        let mut z = TaskDag::new("z", 0);
        z.add_task("t", 1).unwrap();
        assert!(z.validate().is_err(), "zero ps_per_flop");
    }
}
