//! Lowering soundness, verified against the simulator's own timeline.
//!
//! For random DAGs × schedulers × machines (uniform and heterogeneous):
//!
//! * the lowered program is lint-clean — no `PS01xx` well-formedness or
//!   `PS0201` deadlock *errors*;
//! * no task's step starts before every predecessor's edge message has
//!   arrived: for every cross-processor edge `u → v`, the simulator's
//!   trace shows the receive on `proc(v)` completing no later than the
//!   virtual-time front of `proc(v)` after step `level(v) - 1` — i.e.
//!   before `v`'s computation can begin.

use loggp::{presets, LinkOverride, MachineSpec};
use predsim_core::{simulate_program, simulate_program_traced, SimOptions};
use predsim_dag::{generate, lower, SchedulerKind};
use predsim_lint::{check_program, LintOptions, Severity};
use predsim_obs::{MemorySink, TraceEvent};
use proptest::prelude::*;

fn machine_for(procs: usize, hetero: u8) -> MachineSpec {
    let base = presets::meiko_cs2(procs);
    let mut spec = MachineSpec::uniform(base);
    if hetero % 2 == 1 {
        spec.speed_permille = (0..procs)
            .map(|p| 500 + 250 * ((p as u64 + hetero as u64) % 7))
            .collect();
    }
    if hetero % 3 == 2 && procs >= 2 {
        spec.links = vec![LinkOverride {
            src: 0,
            dst: procs - 1,
            latency: base.latency.saturating_mul(3),
            overhead: base.overhead,
            gap: base.gap,
            gap_per_byte: base.gap_per_byte,
        }];
    }
    spec.validate().expect("generated machine is valid");
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowered_dags_are_lint_clean_and_timeline_sound(
        seed in 0u64..1000,
        layers in 1usize..6,
        width in 1usize..6,
        procs in 1usize..6,
        hetero in 0u8..6,
        kind_idx in 0usize..3,
    ) {
        let dag = generate::random_layered(seed, layers, width, 20_000, 4096);
        dag.validate().expect("generator output validates");
        let machine = machine_for(procs, hetero);
        let kind = SchedulerKind::ALL[kind_idx];
        let lowered = lower(&dag, &kind.place(&dag, &machine), &machine);

        // Dependency edges always cross a step boundary.
        for e in dag.edges() {
            prop_assert!(lowered.level_of[e.src] < lowered.level_of[e.dst]);
        }

        // Lint-clean: no Error-severity diagnostics of any kind.
        let report = check_program(
            &lowered.program,
            &LintOptions {
                params: Some(machine.base),
                ..LintOptions::default()
            },
        );
        for d in report.diagnostics() {
            prop_assert!(
                d.severity != Severity::Error,
                "lint error on lowered program: {}",
                d.render()
            );
        }

        // Timeline: replay under the tracing simulator and check every
        // cross-processor edge's receive against the destination
        // processor's virtual-time front before its task's step.
        let opts = SimOptions::new(commsim::SimConfig::new(machine.base));
        let sink = MemorySink::new();
        let traced = simulate_program_traced(&lowered.program, &opts, &sink);
        let untraced = simulate_program(&lowered.program, &opts);
        prop_assert_eq!(traced.total, untraced.total, "tracing is bit-identical");

        let events = sink.events();
        let mut fronts = std::collections::HashMap::new();
        for ev in &events {
            if let TraceEvent::Front { step, proc, ps } = ev {
                fronts.insert((*step, *proc), *ps);
            }
        }
        for e in dag.edges() {
            let (src_proc, dst_proc) =
                (lowered.placement.proc_of[e.src], lowered.placement.proc_of[e.dst]);
            if src_proc == dst_proc {
                continue;
            }
            let msg_step = lowered.level_of[e.src] as u64;
            let dst_level = lowered.level_of[e.dst] as u64;
            // The latest matching receive in the message's step bounds
            // when this edge's payload was fully drained.
            let recv_end = events
                .iter()
                .filter_map(|ev| match ev {
                    TraceEvent::Recv { step, proc, peer, bytes, end_ps, .. }
                        if *step == msg_step
                            && *proc == dst_proc
                            && *peer == src_proc
                            && *bytes == e.bytes =>
                    {
                        Some(*end_ps)
                    }
                    _ => None,
                })
                .max();
            let recv_end = recv_end.expect("cross-processor edge produced a receive");
            let front = *fronts
                .get(&(dst_level - 1, dst_proc))
                .expect("front recorded for every proc and step");
            prop_assert!(
                recv_end <= front,
                "edge {} -> {} ({} bytes) arrives at {} after proc {}'s front {} \
                 before step {} ({:?}, {} procs)",
                e.src, e.dst, e.bytes, recv_end, dst_proc, front, dst_level, kind, procs
            );
        }
    }
}
