//! Static bounds bracket DAG-lowered programs, and uniform machine
//! specs predict bit-identically to the flat preset they wrap.

use loggp::{presets, MachineSpec};
use predsim_core::{simulate_program, SimOptions};
use predsim_dag::{generate, lower, sweep, SchedulerKind};
use predsim_lint::{analyze, BoundsConfig, ProgramView};

fn shipped_generators() -> Vec<predsim_dag::TaskDag> {
    vec![
        generate::fork_join(8, 2, 200_000, 8192),
        generate::map_reduce(6, 3, 150_000, 300_000, 4096),
        generate::random_layered(42, 6, 5, 50_000, 4096),
    ]
}

#[test]
fn static_bounds_bracket_std_and_worst_case_on_lowered_programs() {
    for dag in shipped_generators() {
        for kind in SchedulerKind::ALL {
            for procs in [1, 2, 4, 8] {
                let machine = MachineSpec::uniform(presets::meiko_cs2(procs));
                let lowered = lower(&dag, &kind.place(&dag, &machine), &machine);
                let bounds = analyze(
                    &ProgramView::of(&lowered.program),
                    &BoundsConfig::new(machine.base),
                )
                .expect("lowered programs are analyzable");
                let opts = SimOptions::new(commsim::SimConfig::new(machine.base));
                let std = simulate_program(&lowered.program, &opts).total;
                let wc = simulate_program(&lowered.program, &opts.worst_case()).total;
                let ctx = format!("{} / {:?} @ {procs}", dag.name(), kind);
                assert!(
                    bounds.lo <= std && std <= bounds.hi,
                    "{ctx}: std {std:?} outside [{:?}, {:?}]",
                    bounds.lo,
                    bounds.hi
                );
                assert!(
                    bounds.lo <= wc && wc <= bounds.hi,
                    "{ctx}: wc {wc:?} outside [{:?}, {:?}]",
                    bounds.lo,
                    bounds.hi
                );
            }
        }
    }
}

#[test]
fn uniform_machine_spec_predicts_bit_identically_to_the_flat_preset() {
    for dag in shipped_generators() {
        for kind in SchedulerKind::ALL {
            for procs in [1, 3, 8] {
                let flat = presets::meiko_cs2(procs);
                let spec = MachineSpec::uniform(flat);
                // An explicitly uniform speed vector must behave like the
                // empty one.
                let mut spelled = spec.clone();
                spelled.speed_permille = vec![1000; procs];

                let a = lower(&dag, &kind.place(&dag, &spec), &spec);
                let b = lower(&dag, &kind.place(&dag, &spelled), &spelled);
                assert_eq!(a.program, b.program, "spelled-out uniform speeds");

                let opts = SimOptions::new(commsim::SimConfig::new(flat));
                let p1 = simulate_program(&a.program, &opts);
                let p2 = simulate_program(&b.program, &opts);
                assert_eq!(p1.total, p2.total);
                assert_eq!(p1.per_proc_finish, p2.per_proc_finish);
            }
        }
    }
}

#[test]
fn a_2x_speed_factor_processor_shifts_the_predicted_schedule() {
    // Pinned: heterogeneity must be *visible* in the prediction. The
    // same fork-join DAG on 4 processors, uniform vs one 2x processor:
    // min-ready piles more work onto the fast processor and the
    // predicted total strictly improves.
    let dag = generate::fork_join(16, 2, 1_000_000, 4096);
    let uniform = MachineSpec::uniform(presets::meiko_cs2(4));
    let mut het = uniform.clone();
    het.speed_permille = vec![2000, 1000, 1000, 1000];
    het.validate().unwrap();

    let kind = SchedulerKind::MinReady;
    let lowered_u = lower(&dag, &kind.place(&dag, &uniform), &uniform);
    let lowered_h = lower(&dag, &kind.place(&dag, &het), &het);
    // The network is the shared base in both runs; only computation
    // scaling and placement differ.
    let opts = SimOptions::new(commsim::SimConfig::new(uniform.base));
    let total_u = simulate_program(&lowered_u.program, &opts).total;
    let total_h = simulate_program(&lowered_h.program, &opts).total;
    assert_ne!(total_u, total_h, "the 2x processor must shift the schedule");
    assert!(
        total_h < total_u,
        "a faster processor cannot slow the DAG down: {total_h:?} vs {total_u:?}"
    );
    // And the fast processor attracts strictly more tasks than its
    // uniform share.
    let fast_tasks = lowered_h
        .placement
        .proc_of
        .iter()
        .filter(|&&q| q == 0)
        .count();
    let uniform_share = dag.tasks().len() / 4;
    assert!(
        fast_tasks > uniform_share,
        "2x processor got {fast_tasks} of {} tasks",
        dag.tasks().len()
    );
}

#[test]
fn sweeps_on_a_uniform_spec_match_the_flat_preset_at_every_point() {
    let dag = generate::fork_join(8, 1, 500_000, 2048);
    let spec = MachineSpec::uniform(presets::meiko_cs2(8));
    let procs: Vec<usize> = (1..=8).collect();
    let report = sweep(&dag, SchedulerKind::Heft, "meiko", &spec, &procs).unwrap();
    for pt in &report.points {
        let flat = presets::meiko_cs2(pt.procs);
        let sub = MachineSpec::uniform(flat);
        let lowered = lower(&dag, &SchedulerKind::Heft.place(&dag, &sub), &sub);
        let opts = SimOptions::new(commsim::SimConfig::new(flat));
        let total = simulate_program(&lowered.program, &opts).total;
        assert_eq!(pt.total, total, "procs {}", pt.procs);
    }
}
