//! Property-based tests for the LogGP model substrate.

use loggp::{LogGpParams, ProcClock, Time};
use proptest::prelude::*;

/// Arbitrary valid parameter sets: g >= o, everything bounded so that the
/// arithmetic stays far from overflow.
fn arb_params() -> impl Strategy<Value = LogGpParams> {
    (
        0u64..1_000_000, // L in ns
        0u64..100_000,   // o in ns
        0u64..1_000_000, // extra gap over o, in ns
        0u64..10_000,    // G in ps/byte
        1usize..64,      // P
    )
        .prop_map(|(l, o, extra_g, g_byte, p)| LogGpParams {
            latency: Time::from_ns(l),
            overhead: Time::from_ns(o),
            gap: Time::from_ns(o + extra_g),
            gap_per_byte: Time::from_ps(g_byte),
            procs: p,
        })
}

proptest! {
    #[test]
    fn generated_params_validate(p in arb_params()) {
        prop_assert!(p.validate().is_ok());
    }

    /// Message cost is monotone non-decreasing in the message size.
    #[test]
    fn message_cost_monotone_in_bytes(p in arb_params(), a in 0usize..100_000, b in 0usize..100_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(p.message_cost(lo) <= p.message_cost(hi));
    }

    /// Arrival time is the send start plus o + (k-1)G + L exactly.
    #[test]
    fn arrival_decomposition(p in arb_params(), start_ns in 0u64..1_000_000_000, k in 0usize..1_000_000) {
        let start = Time::from_ns(start_ns);
        prop_assert_eq!(
            p.arrival_time(start, k),
            start + p.overhead + p.wire_time(k) + p.latency
        );
    }

    /// A sequence of committed operations always respects both the gap rule
    /// and the single-port (no overlap) rule, whatever availability times
    /// are thrown at the clock.
    #[test]
    fn clock_sequences_respect_gap_and_port(
        p in arb_params(),
        avail in proptest::collection::vec(0u64..10_000_000u64, 1..40),
    ) {
        let mut clock = ProcClock::new();
        let mut prev_start: Option<Time> = None;
        let mut prev_end = Time::ZERO;
        for a in avail {
            let start = clock.earliest_start(&p, Time::from_ns(a));
            let end = clock.commit(&p, start);
            if let Some(ps) = prev_start {
                prop_assert!(start >= ps + p.gap, "gap violated");
            }
            prop_assert!(start >= prev_end, "overlap");
            prop_assert!(start >= Time::from_ns(a), "started before available");
            prev_start = Some(start);
            prev_end = end;
        }
    }

    /// Operations are issued greedily: the committed start is never later
    /// than both constraints require.
    #[test]
    fn clock_is_greedy(p in arb_params(), a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let mut clock = ProcClock::new();
        let s1 = clock.earliest_start(&p, Time::from_ns(a));
        prop_assert_eq!(s1, Time::from_ns(a));
        clock.commit(&p, s1);
        let s2 = clock.earliest_start(&p, Time::from_ns(b));
        let bound = (s1 + p.gap).max(s1 + p.overhead).max(Time::from_ns(b));
        prop_assert_eq!(s2, bound);
    }

    /// Fitting synthetic ping samples recovers G and 2o+L exactly for any
    /// valid parameter set with a non-zero G.
    #[test]
    fn ping_fit_roundtrip(p in arb_params()) {
        prop_assume!(!p.gap_per_byte.is_zero());
        let sizes = [1usize, 17, 64, 1000, 4096, 65536];
        let samples = loggp::fit::synthetic_samples(&p, &sizes);
        let fit = loggp::fit::fit_point_to_point(&samples);
        // Allow 1 ps of rounding slack from the float regression.
        let dg = fit.gap_per_byte.as_ps().abs_diff(p.gap_per_byte.as_ps());
        prop_assert!(dg <= 1, "G: {} vs {}", fit.gap_per_byte, p.gap_per_byte);
        let want = p.overhead * 2 + p.latency;
        let de = fit.endpoint.as_ps().abs_diff(want.as_ps());
        prop_assert!(de <= 8, "endpoint: {} vs {}", fit.endpoint, want);
    }

    /// Time roundtrips through microsecond floats within rounding error.
    #[test]
    fn time_us_roundtrip(ps in 0u64..u64::MAX / 2) {
        let t = Time::from_ps(ps);
        let back = Time::from_us(t.as_us_f64());
        // f64 has 52 bits of mantissa; tolerate relative error 1e-12.
        let diff = if back > t { back - t } else { t - back };
        prop_assert!(diff.as_ps() as f64 <= 1.0 + ps as f64 * 1e-12);
    }
}
