//! The LogGP machine model.
//!
//! This crate is the model substrate for the whole `predsim` workspace. It
//! provides:
//!
//! * [`Time`] — an integer (picosecond-resolution) simulation time type, so
//!   every simulation in the workspace is exactly deterministic and totally
//!   ordered;
//! * [`LogGpParams`] — the five LogGP parameters (L, o, g, G, P) of
//!   Culler et al. (LogP) and Alexandrov et al. (LogGP), with validation and
//!   the message-timing arithmetic of the model;
//! * [`gap`] — the *extended* gap rule of Rugina & Schauser (IPPS'98,
//!   Figure 1): the gap `g` separates **every** pairing of consecutive
//!   operations at a processor (send→send, recv→recv, send→recv, recv→send),
//!   not just same-kind pairs;
//! * [`presets`] — parameter sets for a few machines, most importantly the
//!   Meiko CS-2 the paper evaluated on;
//! * [`registry`] — file-backed *fitted* presets: named parameter sets
//!   produced by calibration, persisted as small JSON files and resolvable
//!   through [`presets::by_name`] like the built-ins;
//! * [`hetero`] — [`MachineSpec`]: per-processor speed factors and
//!   per-link parameter overrides wrapped around a flat preset, for
//!   scheduling task DAGs onto non-uniform machines.
//!
//! # Model summary
//!
//! A message of `k` bytes sent at time `t` occupies the sender's CPU for the
//! overhead `o`; its last byte is put on the wire at `t + o + (k-1)·G`; it
//! becomes *available* at the destination `L` later; receiving it occupies
//! the destination CPU for another `o`. The model is single-port: a
//! processor is engaged in at most one send or receive at a time, and
//! consecutive operation starts are separated by at least `g`.
//!
//! ```
//! use loggp::{presets, Time};
//!
//! let m = presets::meiko_cs2(8);
//! // End-to-end cost of a single 1100-byte message, receiver idle:
//! let t = m.message_cost(1100);
//! assert_eq!(t, m.overhead + m.wire_time(1100) + m.latency + m.overhead);
//! assert!(t > Time::from_us(40.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod gap;
pub mod hetero;
pub mod params;
pub mod presets;
pub mod registry;
pub mod time;

pub use gap::{GapRule, OpKind, ProcClock};
pub use hetero::{LinkOverride, MachineSpec};
pub use params::{LogGpParams, ParamError};
pub use time::Time;
