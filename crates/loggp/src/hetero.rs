//! Heterogeneous machine descriptions: per-processor speed factors and
//! per-link parameter overrides layered over a flat LogGP preset.
//!
//! The paper's model (and every simulator in this workspace) assumes a
//! *uniform* machine: one `(L, o, g, G, P)` tuple for the whole network
//! and identical processors. A [`MachineSpec`] wraps such a base preset
//! and adds what uniformity leaves out:
//!
//! * **speed factors** — one integer permille per processor (`1000` =
//!   the base speed, `2000` = twice as fast, so computation charges
//!   halve). Consumers scale per-processor *computation* by these; the
//!   network stays the base preset's.
//! * **link overrides** — sparse `(src, dst) → (L, o, g, G)` entries for
//!   links that are slower or faster than the base network. Schedulers
//!   use these to estimate the cost of moving data between specific
//!   processors; the step simulators themselves stay uniform.
//!
//! A uniform spec (no speed entries, no links) is *exactly* its base
//! preset — the registry persists it byte-identically to a flat preset,
//! and every consumer must predict bit-identically to the wrapped
//! parameters (pinned by tests here and in `predsim-dag`).

use crate::params::LogGpParams;
use crate::time::Time;

/// Speed factor denominator: a factor of `SPEED_BASE` permille is the
/// base preset's speed.
pub const SPEED_BASE: u64 = 1000;

/// Largest accepted speed factor (a thousand-fold speedup) — bounds the
/// arithmetic so scaling can never overflow.
pub const MAX_SPEED_PERMILLE: u64 = 1_000_000;

/// One directed link whose LogGP parameters differ from the base
/// network's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkOverride {
    /// Sending processor.
    pub src: usize,
    /// Receiving processor.
    pub dst: usize,
    /// Link latency `L`.
    pub latency: Time,
    /// Per-message CPU overhead `o` on this link.
    pub overhead: Time,
    /// Minimum inter-operation gap `g` on this link.
    pub gap: Time,
    /// Per-byte gap `G` on this link.
    pub gap_per_byte: Time,
}

impl LinkOverride {
    /// The override expressed as full parameters (procs copied from
    /// `base`).
    pub fn params(&self, base: &LogGpParams) -> LogGpParams {
        LogGpParams {
            latency: self.latency,
            overhead: self.overhead,
            gap: self.gap,
            gap_per_byte: self.gap_per_byte,
            procs: base.procs,
        }
    }
}

/// A possibly-heterogeneous machine: a flat base preset plus optional
/// per-processor speed factors and per-link overrides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineSpec {
    /// The wrapped preset: the uniform network parameters and the
    /// processor count.
    pub base: LogGpParams,
    /// Per-processor speed factors in permille of the base speed; empty
    /// means every processor runs at `SPEED_BASE` (uniform).
    pub speed_permille: Vec<u64>,
    /// Sparse per-link overrides; links not listed use `base`.
    pub links: Vec<LinkOverride>,
}

impl MachineSpec {
    /// A uniform machine: exactly the wrapped preset.
    pub fn uniform(base: LogGpParams) -> MachineSpec {
        MachineSpec {
            base,
            speed_permille: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.base.procs
    }

    /// True iff this spec carries no heterogeneity at all — consumers
    /// must then behave bit-identically to the flat `base`.
    pub fn is_uniform(&self) -> bool {
        self.links.is_empty() && self.speed_permille.iter().all(|&s| s == SPEED_BASE)
    }

    /// The speed factor of processor `p` (permille of base speed).
    pub fn speed_of(&self, p: usize) -> u64 {
        self.speed_permille.get(p).copied().unwrap_or(SPEED_BASE)
    }

    /// Scale a computation charge by processor `p`'s speed: a `2000`
    /// permille processor finishes the same work in half the time.
    /// Exact for the uniform factor (`t * 1000 / 1000 == t`).
    pub fn scale_comp(&self, p: usize, t: Time) -> Time {
        let speed = self.speed_of(p);
        if speed == SPEED_BASE {
            return t;
        }
        Time::from_ps(t.as_ps().saturating_mul(SPEED_BASE) / speed)
    }

    /// The LogGP parameters governing the `src → dst` link: the override
    /// when one is listed, the base network otherwise.
    pub fn link_params(&self, src: usize, dst: usize) -> LogGpParams {
        for l in &self.links {
            if l.src == src && l.dst == dst {
                return l.params(&self.base);
            }
        }
        self.base
    }

    /// Re-target the spec to `procs` processors. A uniform spec
    /// re-targets freely (like [`LogGpParams::with_procs`]); a
    /// heterogeneous one can only *shrink* — the first `procs`
    /// processors and the links among them are kept, because invented
    /// speed factors for processors that were never described would be
    /// silent fiction.
    pub fn retarget(&self, procs: usize) -> Result<MachineSpec, String> {
        if procs == 0 {
            return Err("machine needs at least one processor".into());
        }
        if procs == self.procs() {
            return Ok(self.clone());
        }
        if self.is_uniform() {
            return Ok(MachineSpec::uniform(self.base.with_procs(procs)));
        }
        if procs > self.procs() {
            return Err(format!(
                "heterogeneous machine describes {} processors; cannot extend to {procs}",
                self.procs()
            ));
        }
        let mut speed = self.speed_permille.clone();
        speed.truncate(procs);
        let links = self
            .links
            .iter()
            .filter(|l| l.src < procs && l.dst < procs)
            .copied()
            .collect();
        Ok(MachineSpec {
            base: self.base.with_procs(procs),
            speed_permille: speed,
            links,
        })
    }

    /// Check every invariant: the base validates, speed factors cover
    /// exactly the processors (or are absent) and stay in range, and
    /// links reference real processor pairs exactly once with parameters
    /// that validate.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate().map_err(|e| e.to_string())?;
        if !self.speed_permille.is_empty() && self.speed_permille.len() != self.base.procs {
            return Err(format!(
                "speed_permille lists {} factors for {} processors",
                self.speed_permille.len(),
                self.base.procs
            ));
        }
        for (p, &s) in self.speed_permille.iter().enumerate() {
            if s == 0 || s > MAX_SPEED_PERMILLE {
                return Err(format!(
                    "processor {p}: speed factor {s} outside 1..={MAX_SPEED_PERMILLE} permille"
                ));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.src >= self.base.procs || l.dst >= self.base.procs {
                return Err(format!(
                    "link {} -> {} references a processor outside 0..{}",
                    l.src, l.dst, self.base.procs
                ));
            }
            if l.src == l.dst {
                return Err(format!("link {} -> {} is a self-loop", l.src, l.dst));
            }
            if self.links[..i]
                .iter()
                .any(|m| m.src == l.src && m.dst == l.dst)
            {
                return Err(format!("duplicate link override {} -> {}", l.src, l.dst));
            }
            l.params(&self.base)
                .validate()
                .map_err(|e| format!("link {} -> {}: {e}", l.src, l.dst))?;
        }
        Ok(())
    }
}

/// Resolve a machine name to a (possibly heterogeneous) spec for
/// `procs` processors: built-in presets and flat registered presets
/// become uniform specs; names registered from a heterogeneous preset
/// file resolve with their speed factors and links intact (shrunk to
/// `procs` when fewer are asked for).
pub fn resolve(name: &str, procs: usize) -> Result<MachineSpec, String> {
    if let Some(spec) = crate::registry::registered_spec(name) {
        return spec
            .retarget(procs)
            .map_err(|e| format!("machine '{name}': {e}"));
    }
    match crate::presets::by_name(name, procs) {
        Some(params) => Ok(MachineSpec::uniform(params)),
        None => Err(format!("unknown machine '{name}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn hetero() -> MachineSpec {
        let base = presets::meiko_cs2(4);
        MachineSpec {
            base,
            speed_permille: vec![2000, 1000, 1000, 500],
            links: vec![LinkOverride {
                src: 0,
                dst: 3,
                latency: base.latency + base.latency,
                overhead: base.overhead,
                gap: base.gap,
                gap_per_byte: base.gap_per_byte,
            }],
        }
    }

    #[test]
    fn uniform_spec_is_exactly_the_base() {
        let spec = MachineSpec::uniform(presets::meiko_cs2(8));
        assert!(spec.is_uniform());
        spec.validate().unwrap();
        let t = Time::from_us(10.0);
        for p in 0..8 {
            assert_eq!(spec.scale_comp(p, t), t);
        }
        assert_eq!(spec.link_params(0, 7), spec.base);
        assert_eq!(spec.retarget(16).unwrap().base, presets::meiko_cs2(16));
    }

    #[test]
    fn speed_factors_scale_computation_exactly() {
        let spec = hetero();
        spec.validate().unwrap();
        assert!(!spec.is_uniform());
        let t = Time::from_ps(1000);
        assert_eq!(spec.scale_comp(0, t), Time::from_ps(500), "2x faster");
        assert_eq!(spec.scale_comp(1, t), t);
        assert_eq!(spec.scale_comp(3, t), Time::from_ps(2000), "2x slower");
    }

    #[test]
    fn link_overrides_resolve_per_pair() {
        let spec = hetero();
        assert_eq!(
            spec.link_params(0, 3).latency,
            spec.base.latency + spec.base.latency
        );
        assert_eq!(spec.link_params(3, 0), spec.base, "direction matters");
        assert_eq!(spec.link_params(1, 2), spec.base);
    }

    #[test]
    fn retarget_shrinks_but_never_invents_processors() {
        let spec = hetero();
        let small = spec.retarget(2).unwrap();
        assert_eq!(small.procs(), 2);
        assert_eq!(small.speed_permille, vec![2000, 1000]);
        assert!(small.links.is_empty(), "0 -> 3 fell outside the prefix");
        assert!(spec.retarget(8).is_err());
        assert!(spec.retarget(0).is_err());
    }

    #[test]
    fn validate_catches_bad_specs() {
        let base = presets::meiko_cs2(4);
        let mut spec = MachineSpec::uniform(base);
        spec.speed_permille = vec![1000, 1000];
        assert!(spec.validate().is_err(), "wrong speed arity");
        spec.speed_permille = vec![1000, 0, 1000, 1000];
        assert!(spec.validate().is_err(), "zero speed");
        let link = |src, dst| LinkOverride {
            src,
            dst,
            latency: base.latency,
            overhead: base.overhead,
            gap: base.gap,
            gap_per_byte: base.gap_per_byte,
        };
        spec.speed_permille.clear();
        spec.links = vec![link(0, 4)];
        assert!(spec.validate().is_err(), "out of range");
        spec.links = vec![link(1, 1)];
        assert!(spec.validate().is_err(), "self-loop");
        spec.links = vec![link(0, 1), link(0, 1)];
        assert!(spec.validate().is_err(), "duplicate");
        spec.links = vec![link(0, 1)];
        spec.validate().unwrap();
    }

    #[test]
    fn resolve_builds_uniform_specs_from_builtins() {
        let spec = resolve("meiko", 8).unwrap();
        assert_eq!(spec, MachineSpec::uniform(presets::meiko_cs2(8)));
        assert!(resolve("cray-t3e", 8).is_err());
    }
}
