//! The LogGP parameter set and message-timing arithmetic.

use crate::time::{Time, PS_PER_US};
use std::fmt;

/// The five LogGP parameters.
///
/// * `latency` (**L**) — upper bound on the network latency of a message;
/// * `overhead` (**o**) — time a processor is engaged in the transmission or
///   reception of each message;
/// * `gap` (**g**) — minimum interval between consecutive message operations
///   at a processor (extended by the paper to all four send/receive
///   pairings, see [`crate::gap`]);
/// * `gap_per_byte` (**G**) — time per byte for long messages;
/// * `procs` (**P**) — number of processors.
///
/// The model is *single-port*: at any time a processor is engaged in at most
/// one send or one receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogGpParams {
    /// L: network latency.
    pub latency: Time,
    /// o: per-message CPU overhead (both send and receive side).
    pub overhead: Time,
    /// g: minimum interval between consecutive operation starts.
    pub gap: Time,
    /// G: per-byte gap for long messages (time per byte).
    pub gap_per_byte: Time,
    /// P: number of processors.
    pub procs: usize,
}

/// Validation failure for a [`LogGpParams`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// P must be at least 1.
    NoProcessors,
    /// In LogP/LogGP the gap is defined as ≥ the overhead: a processor
    /// cannot issue operations faster than it can execute them.
    GapBelowOverhead {
        /// The offending gap.
        gap: Time,
        /// The overhead it is below.
        overhead: Time,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NoProcessors => write!(f, "LogGP machine must have at least 1 processor"),
            ParamError::GapBelowOverhead { gap, overhead } => {
                write!(f, "gap g = {gap} is below overhead o = {overhead}")
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl LogGpParams {
    /// Build a parameter set from values in microseconds (the paper's unit).
    ///
    /// `gap_per_byte_us` is the per-byte gap G in µs/byte, e.g. `0.03` for
    /// ~33 MB/s long-message bandwidth.
    pub fn from_us(
        latency: f64,
        overhead: f64,
        gap: f64,
        gap_per_byte_us: f64,
        procs: usize,
    ) -> Self {
        LogGpParams {
            latency: Time::from_us(latency),
            overhead: Time::from_us(overhead),
            gap: Time::from_us(gap),
            gap_per_byte: Time::from_us(gap_per_byte_us),
            procs,
        }
    }

    /// Check the internal consistency of the parameters.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.procs == 0 {
            return Err(ParamError::NoProcessors);
        }
        if self.gap < self.overhead {
            return Err(ParamError::GapBelowOverhead {
                gap: self.gap,
                overhead: self.overhead,
            });
        }
        Ok(())
    }

    /// Minimum separation between the *starts* of two consecutive
    /// operations at one processor: `max(g, o)` (an operation occupies the
    /// CPU for `o` and the gap rule demands `g`).
    #[inline]
    pub fn op_separation(&self) -> Time {
        self.gap.max(self.overhead)
    }

    /// Wire time of a `k`-byte message beyond the first byte: `(k-1)·G`.
    ///
    /// Zero-byte (pure control) messages take no wire time.
    #[inline]
    pub fn wire_time(&self, bytes: usize) -> Time {
        self.gap_per_byte
            .saturating_mul(bytes.saturating_sub(1) as u64)
    }

    /// Arrival time at the destination of a `k`-byte message whose send
    /// *starts* at `send_start`: the message becomes available for reception
    /// at `send_start + o + (k-1)·G + L`.
    #[inline]
    pub fn arrival_time(&self, send_start: Time, bytes: usize) -> Time {
        send_start + self.overhead + self.wire_time(bytes) + self.latency
    }

    /// End-to-end cost of a single `k`-byte message between idle
    /// processors: `o + (k-1)·G + L + o` (LogGP's point-to-point time).
    #[inline]
    pub fn message_cost(&self, bytes: usize) -> Time {
        self.overhead + self.wire_time(bytes) + self.latency + self.overhead
    }

    /// Long-message asymptotic bandwidth in bytes per second implied by G.
    ///
    /// Returns `f64::INFINITY` when `G` is zero (e.g. the ideal machine).
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        if self.gap_per_byte.is_zero() {
            f64::INFINITY
        } else {
            PS_PER_US as f64 * 1e6 / self.gap_per_byte.as_ps() as f64
        }
    }

    /// Small-message rate limit in messages per second implied by g.
    pub fn messages_per_sec(&self) -> f64 {
        if self.gap.is_zero() {
            f64::INFINITY
        } else {
            1e12 / self.gap.as_ps() as f64
        }
    }

    /// A copy of these parameters for a different processor count.
    pub fn with_procs(mut self, procs: usize) -> Self {
        self.procs = procs;
        self
    }

    /// A copy with a different latency (for sensitivity sweeps).
    pub fn with_latency(mut self, latency: Time) -> Self {
        self.latency = latency;
        self
    }

    /// A copy with a different gap (for sensitivity sweeps).
    pub fn with_gap(mut self, gap: Time) -> Self {
        self.gap = gap;
        self
    }

    /// A copy with a different overhead (for sensitivity sweeps).
    pub fn with_overhead(mut self, overhead: Time) -> Self {
        self.overhead = overhead;
        self
    }

    /// A copy with a different per-byte gap (for sensitivity sweeps).
    pub fn with_gap_per_byte(mut self, gap_per_byte: Time) -> Self {
        self.gap_per_byte = gap_per_byte;
        self
    }
}

impl fmt::Display for LogGpParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LogGP(L={}, o={}, g={}, G={}/B, P={})",
            self.latency, self.overhead, self.gap, self.gap_per_byte, self.procs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn validate_accepts_presets() {
        for p in presets::all(8) {
            p.params
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn validate_rejects_zero_procs() {
        let p = LogGpParams::from_us(1.0, 1.0, 2.0, 0.0, 0);
        assert_eq!(p.validate(), Err(ParamError::NoProcessors));
    }

    #[test]
    fn validate_rejects_gap_below_overhead() {
        let p = LogGpParams::from_us(1.0, 5.0, 2.0, 0.0, 4);
        assert!(matches!(
            p.validate(),
            Err(ParamError::GapBelowOverhead { .. })
        ));
    }

    #[test]
    fn wire_time_is_k_minus_one_g() {
        let p = LogGpParams::from_us(9.0, 6.0, 16.0, 0.03, 8);
        assert_eq!(p.wire_time(0), Time::ZERO);
        assert_eq!(p.wire_time(1), Time::ZERO);
        assert_eq!(p.wire_time(2), Time::from_us(0.03));
        assert_eq!(p.wire_time(1100), Time::from_us(0.03) * 1099);
    }

    #[test]
    fn message_cost_decomposes() {
        let p = LogGpParams::from_us(9.0, 6.0, 16.0, 0.03, 8);
        let k = 1100;
        assert_eq!(
            p.message_cost(k),
            p.overhead + p.wire_time(k) + p.latency + p.overhead
        );
        // o + (k-1)G + L + o = 6 + 32.97 + 9 + 6 = 53.97 us
        assert_eq!(p.message_cost(k), Time::from_us(53.97));
    }

    #[test]
    fn arrival_precedes_completion_by_o() {
        let p = LogGpParams::from_us(9.0, 6.0, 16.0, 0.03, 8);
        let start = Time::from_us(5.0);
        assert_eq!(
            p.arrival_time(start, 64) + p.overhead,
            start + p.message_cost(64)
        );
    }

    #[test]
    fn op_separation_is_max_g_o() {
        let p = LogGpParams::from_us(1.0, 6.0, 16.0, 0.0, 2);
        assert_eq!(p.op_separation(), Time::from_us(16.0));
        let q = LogGpParams::from_us(1.0, 6.0, 6.0, 0.0, 2);
        assert_eq!(q.op_separation(), Time::from_us(6.0));
    }

    #[test]
    fn derived_rates() {
        let p = LogGpParams::from_us(9.0, 6.0, 16.0, 0.03, 8);
        // G = 0.03 us/byte -> 33.3 MB/s
        let bw = p.bandwidth_bytes_per_sec();
        assert!((bw - 33.33e6).abs() / 33.33e6 < 0.01, "bw = {bw}");
        // g = 16 us -> 62500 msg/s
        assert!((p.messages_per_sec() - 62_500.0).abs() < 1.0);
        let ideal = LogGpParams::from_us(0.0, 0.0, 0.0, 0.0, 8);
        assert!(ideal.bandwidth_bytes_per_sec().is_infinite());
        assert!(ideal.messages_per_sec().is_infinite());
    }

    #[test]
    fn with_builders() {
        let p = presets::meiko_cs2(8)
            .with_procs(16)
            .with_latency(Time::from_us(1.0))
            .with_gap(Time::from_us(20.0))
            .with_overhead(Time::from_us(2.0))
            .with_gap_per_byte(Time::from_ns(1));
        assert_eq!(p.procs, 16);
        assert_eq!(p.latency, Time::from_us(1.0));
        assert_eq!(p.gap, Time::from_us(20.0));
        assert_eq!(p.overhead, Time::from_us(2.0));
        assert_eq!(p.gap_per_byte, Time::from_ns(1));
    }

    #[test]
    fn display_contains_all_fields() {
        let s = presets::meiko_cs2(8).to_string();
        assert!(s.contains("L=9.000us"), "{s}");
        assert!(s.contains("P=8"), "{s}");
    }
}
