//! LogGP parameter presets for a few historical machines.
//!
//! The values for the Meiko CS-2 are the ones the paper reports using
//! ("close to the Meiko CS-2 parameters"). The scanned text dropped digits
//! ("L=9 s, o= s, g=1 s, G=.3 s"); we fix them as L = 9 µs, o = 6 µs,
//! g = 16 µs, G = 0.03 µs/byte — consistent with the surviving digits and
//! with the CS-2 measurements in the LogGP paper (Alexandrov, Ionescu,
//! Schauser & Scheiman, SPAA'95). A sensitivity ablation in `crates/bench`
//! shows the paper's qualitative results are stable under ±50% parameter
//! perturbations.

use crate::params::LogGpParams;

/// A named parameter set.
#[derive(Clone, Copy, Debug)]
pub struct Preset {
    /// Human-readable machine name.
    pub name: &'static str,
    /// The parameters.
    pub params: LogGpParams,
}

/// The Meiko CS-2 of the paper's evaluation: L = 9 µs, o = 6 µs, g = 16 µs,
/// G = 0.03 µs/byte.
pub fn meiko_cs2(procs: usize) -> LogGpParams {
    LogGpParams::from_us(9.0, 6.0, 16.0, 0.03, procs)
}

/// Intel Paragon (LogP-era measurements): L ≈ 7.5 µs, o ≈ 3 µs, g ≈ 8 µs,
/// G ≈ 0.007 µs/byte (~140 MB/s).
pub fn intel_paragon(procs: usize) -> LogGpParams {
    LogGpParams::from_us(7.5, 3.0, 8.0, 0.007, procs)
}

/// A Myrinet workstation cluster with user-level messaging:
/// L ≈ 10 µs, o ≈ 5 µs, g ≈ 13 µs, G ≈ 0.025 µs/byte.
pub fn myrinet_cluster(procs: usize) -> LogGpParams {
    LogGpParams::from_us(10.0, 5.0, 13.0, 0.025, procs)
}

/// A commodity Ethernet cluster with kernel TCP: high overhead and latency.
/// L ≈ 100 µs, o ≈ 50 µs, g ≈ 100 µs, G ≈ 0.08 µs/byte (~12 MB/s).
pub fn ethernet_cluster(procs: usize) -> LogGpParams {
    LogGpParams::from_us(100.0, 50.0, 100.0, 0.08, procs)
}

/// The idealized PRAM-like machine: free communication. Useful as a
/// baseline that isolates pure computation time.
pub fn ideal(procs: usize) -> LogGpParams {
    LogGpParams::from_us(0.0, 0.0, 0.0, 0.0, procs)
}

/// The short names accepted by [`by_name`] (the CLI and the serve API
/// agree on these).
pub const SHORT_NAMES: [&str; 5] = ["meiko", "paragon", "myrinet", "ethernet", "ideal"];

/// Look a preset up by its short name (`meiko`, `paragon`, `myrinet`,
/// `ethernet`, `ideal`) at a given processor count. Every front end that
/// accepts a machine name — the CLI flags and the serve API's `machine`
/// field — resolves it through here, so the spellings cannot drift.
///
/// Names that are not built-ins fall back to the fitted-preset
/// [`registry`](crate::registry): anything registered there (from a
/// calibration run or a loaded preset file) resolves exactly like a
/// built-in, re-targeted to `procs` processors.
pub fn by_name(name: &str, procs: usize) -> Option<LogGpParams> {
    Some(match name {
        "meiko" => meiko_cs2(procs),
        "paragon" => intel_paragon(procs),
        "myrinet" => myrinet_cluster(procs),
        "ethernet" => ethernet_cluster(procs),
        "ideal" => ideal(procs),
        _ => return crate::registry::registered(name, procs),
    })
}

/// All named presets at a given processor count (the ideal machine last).
pub fn all(procs: usize) -> Vec<Preset> {
    vec![
        Preset {
            name: "Meiko CS-2",
            params: meiko_cs2(procs),
        },
        Preset {
            name: "Intel Paragon",
            params: intel_paragon(procs),
        },
        Preset {
            name: "Myrinet cluster",
            params: myrinet_cluster(procs),
        },
        Preset {
            name: "Ethernet cluster",
            params: ethernet_cluster(procs),
        },
        Preset {
            name: "ideal",
            params: ideal(procs),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn meiko_matches_paper_digits() {
        let p = meiko_cs2(8);
        assert_eq!(p.latency, Time::from_us(9.0)); // "L=9 s"
        assert_eq!(p.gap_per_byte, Time::from_us(0.03)); // "G=.3 s" -> 0.03
        assert_eq!(p.procs, 8);
        // g begins with '1' in the scan.
        assert_eq!(p.gap, Time::from_us(16.0));
    }

    #[test]
    fn all_presets_validate() {
        for preset in all(4) {
            preset.params.validate().expect(preset.name);
        }
    }

    #[test]
    fn ideal_machine_communicates_for_free() {
        let p = ideal(4);
        assert_eq!(p.message_cost(1 << 20), Time::ZERO);
    }

    #[test]
    fn by_name_covers_every_short_name() {
        for name in SHORT_NAMES {
            let p = by_name(name, 4).expect(name);
            assert_eq!(p.procs, 4);
        }
        assert!(by_name("cray", 4).is_none());
        assert_eq!(by_name("meiko", 8), Some(meiko_cs2(8)));
    }

    #[test]
    fn presets_ordered_by_quality() {
        // Paragon moves a long message faster than the Ethernet cluster.
        let k = 100_000;
        assert!(intel_paragon(4).message_cost(k) < ethernet_cluster(4).message_cost(k));
    }
}
