//! The gap rules (paper §3, Figure 1) and per-processor clocks.
//!
//! LogGP specifies the gap `g` only between consecutive sends and between
//! consecutive receives. Rugina & Schauser additionally assume a gap
//! between a send and the next receive and between a receive and the next
//! send, so that **any** two consecutive operations at one processor have
//! their start times separated by at least `g` — the
//! [`GapRule::Extended`] rule this workspace defaults to. The classic
//! [`GapRule::SameKindOnly`] reading is retained as a model ablation:
//! there, mixed pairs are constrained only by the single-port rule (the
//! `o`-long operations may not overlap).
//!
//! [`ProcClock`] tracks exactly this per-processor state for the
//! simulation algorithms in the `commsim` crate.

use crate::params::LogGpParams;
use crate::time::Time;

/// The kind of a communication operation at a processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Transmission of a message (costs `o`, engages the network port).
    Send,
    /// Reception of a message (costs `o`, engages the network port).
    Recv,
}

impl OpKind {
    /// Short label used by the Gantt renderer.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Send => "S",
            OpKind::Recv => "R",
        }
    }
}

/// Which pairs of consecutive operations the gap `g` separates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GapRule {
    /// The paper's extension (Figure 1): `g` between *all four* pairings.
    /// Default throughout the workspace.
    #[default]
    Extended,
    /// Classic LogGP: `g` only between consecutive sends and between
    /// consecutive receives; mixed pairs are limited only by the
    /// single-port (no-overlap) rule.
    SameKindOnly,
}

/// Per-processor communication clock.
///
/// Tracks when the previous operations started and ended so the next
/// operation can be scheduled at the earliest instant that satisfies the
/// active [`GapRule`] and the single-port rule (`next.start ≥ prev.end`).
///
/// This is the `ctime` variable of the paper's Figure 2, enriched with
/// per-kind operation starts so both gap rules can be enforced exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcClock {
    last_send_start: Option<Time>,
    last_recv_start: Option<Time>,
    last_op_end: Time,
}

impl ProcClock {
    /// A clock for a processor that has not yet communicated; its first
    /// operation may start at [`Time::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Start of the most recent operation of either kind, if any.
    fn last_any_start(&self) -> Option<Time> {
        match (self.last_send_start, self.last_recv_start) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Earliest instant the next operation of `kind` may *start* under
    /// `rule` and the single-port rule. This is the processor's "current
    /// simulation time" (`ctime` in the paper) for that operation kind.
    #[inline]
    pub fn ready_at_kind(&self, params: &LogGpParams, rule: GapRule, kind: OpKind) -> Time {
        let gap_anchor = match rule {
            GapRule::Extended => self.last_any_start(),
            GapRule::SameKindOnly => match kind {
                OpKind::Send => self.last_send_start,
                OpKind::Recv => self.last_recv_start,
            },
        };
        match gap_anchor {
            None => self.last_op_end,
            Some(s) => (s + params.gap).max(self.last_op_end),
        }
    }

    /// [`ProcClock::ready_at_kind`] under the default extended rule, where
    /// the operation kind is irrelevant.
    #[inline]
    pub fn ready_at(&self, params: &LogGpParams) -> Time {
        self.ready_at_kind(params, GapRule::Extended, OpKind::Send)
    }

    /// Earliest feasible start for an operation of `kind` that
    /// additionally cannot begin before `available` (e.g. a receive before
    /// its message arrives).
    #[inline]
    pub fn earliest_start_kind(
        &self,
        params: &LogGpParams,
        rule: GapRule,
        kind: OpKind,
        available: Time,
    ) -> Time {
        self.ready_at_kind(params, rule, kind).max(available)
    }

    /// [`ProcClock::earliest_start_kind`] under the extended rule.
    #[inline]
    pub fn earliest_start(&self, params: &LogGpParams, available: Time) -> Time {
        self.earliest_start_kind(params, GapRule::Extended, OpKind::Recv, available)
    }

    /// Record that an operation of `kind` started at `start` (it occupies
    /// the CPU until `start + o`). Returns the operation's end time.
    ///
    /// # Panics
    /// In debug builds, panics if `start` violates `rule`, which would
    /// indicate a simulator bug.
    #[inline]
    pub fn commit_kind(
        &mut self,
        params: &LogGpParams,
        rule: GapRule,
        kind: OpKind,
        start: Time,
    ) -> Time {
        debug_assert!(
            start >= self.ready_at_kind(params, rule, kind),
            "operation start {start} violates gap rule (ready at {})",
            self.ready_at_kind(params, rule, kind)
        );
        let end = start + params.overhead;
        match kind {
            OpKind::Send => self.last_send_start = Some(start),
            OpKind::Recv => self.last_recv_start = Some(start),
        }
        self.last_op_end = end;
        end
    }

    /// [`ProcClock::commit_kind`] under the extended rule (kind recorded
    /// as a send; under the extended rule the distinction is irrelevant).
    #[inline]
    pub fn commit(&mut self, params: &LogGpParams, start: Time) -> Time {
        self.commit_kind(params, GapRule::Extended, OpKind::Send, start)
    }

    /// Force the clock forward so that no operation may start before `t`
    /// (used when a computation phase occupies the processor until `t`).
    #[inline]
    pub fn advance_to(&mut self, t: Time) {
        if t > self.last_op_end {
            self.last_op_end = t;
        }
    }

    /// Time the last committed operation ended ([`Time::ZERO`] if none).
    #[inline]
    pub fn last_end(&self) -> Time {
        self.last_op_end
    }

    /// Start of the last committed operation, if any.
    #[inline]
    pub fn last_start(&self) -> Option<Time> {
        self.last_any_start()
    }
}

/// Start times of the two operations in a Figure 1 pairing under `rule`,
/// with the first operation starting at time zero and the second issued
/// as early as the model allows. Returns `(first_start, second_start)`.
pub fn pairing_starts_ruled(
    params: &LogGpParams,
    rule: GapRule,
    first: OpKind,
    second: OpKind,
) -> (Time, Time) {
    let mut clock = ProcClock::new();
    let s1 = clock.earliest_start_kind(params, rule, first, Time::ZERO);
    clock.commit_kind(params, rule, first, s1);
    let s2 = clock.earliest_start_kind(params, rule, second, Time::ZERO);
    (s1, s2)
}

/// [`pairing_starts_ruled`] under the paper's extended rule.
pub fn pairing_starts(params: &LogGpParams, first: OpKind, second: OpKind) -> (Time, Time) {
    pairing_starts_ruled(params, GapRule::Extended, first, second)
}

/// All four Figure 1 pairings with their operation start separations under
/// the given rule.
pub fn figure1_pairings_ruled(params: &LogGpParams, rule: GapRule) -> Vec<(OpKind, OpKind, Time)> {
    use OpKind::*;
    [(Send, Send), (Recv, Recv), (Recv, Send), (Send, Recv)]
        .into_iter()
        .map(|(a, b)| {
            let (s1, s2) = pairing_starts_ruled(params, rule, a, b);
            (a, b, s2 - s1)
        })
        .collect()
}

/// All four Figure 1 pairings under the paper's extended rule.
pub fn figure1_pairings(params: &LogGpParams) -> Vec<(OpKind, OpKind, Time)> {
    figure1_pairings_ruled(params, GapRule::Extended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn first_op_starts_at_zero() {
        let p = presets::meiko_cs2(8);
        let clock = ProcClock::new();
        assert_eq!(clock.ready_at(&p), Time::ZERO);
    }

    #[test]
    fn consecutive_ops_separated_by_gap() {
        let p = presets::meiko_cs2(8); // g = 16 > o = 6
        let mut clock = ProcClock::new();
        let s1 = clock.earliest_start(&p, Time::ZERO);
        clock.commit(&p, s1);
        let s2 = clock.earliest_start(&p, Time::ZERO);
        assert_eq!(s2 - s1, p.gap);
    }

    #[test]
    fn overhead_dominates_when_gap_small() {
        // g == o here, so separation = o = g.
        let p = LogGpParams::from_us(5.0, 8.0, 8.0, 0.0, 2);
        let mut clock = ProcClock::new();
        clock.commit(&p, Time::ZERO);
        assert_eq!(clock.ready_at(&p), Time::from_us(8.0));
    }

    #[test]
    fn availability_delays_start() {
        let p = presets::meiko_cs2(8);
        let mut clock = ProcClock::new();
        clock.commit(&p, Time::ZERO);
        // Message arrives well after the gap would allow.
        let arrival = Time::from_us(100.0);
        assert_eq!(clock.earliest_start(&p, arrival), arrival);
        // Or before it: gap wins.
        assert_eq!(clock.earliest_start(&p, Time::from_us(1.0)), p.gap);
    }

    #[test]
    fn commit_returns_end() {
        let p = presets::meiko_cs2(8);
        let mut clock = ProcClock::new();
        let end = clock.commit(&p, Time::from_us(3.0));
        assert_eq!(end, Time::from_us(3.0) + p.overhead);
        assert_eq!(clock.last_end(), end);
        assert_eq!(clock.last_start(), Some(Time::from_us(3.0)));
    }

    #[test]
    fn advance_to_blocks_earlier_ops() {
        let p = presets::meiko_cs2(8);
        let mut clock = ProcClock::new();
        clock.advance_to(Time::from_us(50.0));
        assert_eq!(clock.ready_at(&p), Time::from_us(50.0));
        // Advancing backwards is a no-op.
        clock.advance_to(Time::from_us(10.0));
        assert_eq!(clock.ready_at(&p), Time::from_us(50.0));
    }

    #[test]
    fn extended_rule_gaps_all_four_pairings() {
        let p = presets::meiko_cs2(8);
        let pairings = figure1_pairings(&p);
        assert_eq!(pairings.len(), 4);
        for (a, b, sep) in pairings {
            assert_eq!(sep, p.gap, "{a:?}->{b:?}");
        }
    }

    #[test]
    fn same_kind_rule_gaps_only_matching_pairs() {
        let p = presets::meiko_cs2(8); // g=16, o=6
        for (a, b, sep) in figure1_pairings_ruled(&p, GapRule::SameKindOnly) {
            if a == b {
                assert_eq!(sep, p.gap, "{a:?}->{b:?}");
            } else {
                // Mixed pairs: only the single-port rule applies.
                assert_eq!(sep, p.overhead, "{a:?}->{b:?}");
            }
        }
    }

    #[test]
    fn same_kind_rule_tracks_kinds_independently() {
        let p = presets::meiko_cs2(8);
        let rule = GapRule::SameKindOnly;
        let mut clock = ProcClock::new();
        // Send at 0; a receive may go at o=6; the *next send* still waits
        // for the send-send gap from t=0.
        clock.commit_kind(&p, rule, OpKind::Send, Time::ZERO);
        let r = clock.ready_at_kind(&p, rule, OpKind::Recv);
        assert_eq!(r, p.overhead);
        clock.commit_kind(&p, rule, OpKind::Recv, r);
        assert_eq!(clock.ready_at_kind(&p, rule, OpKind::Send), p.gap);
        // And the next receive waits for the recv-recv gap from t=6.
        assert_eq!(clock.ready_at_kind(&p, rule, OpKind::Recv), r + p.gap);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "violates gap rule")]
    fn committing_too_early_panics_in_debug() {
        let p = presets::meiko_cs2(8);
        let mut clock = ProcClock::new();
        clock.commit(&p, Time::ZERO);
        clock.commit(&p, Time::from_us(1.0)); // < g after the first
    }
}
