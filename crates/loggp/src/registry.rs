//! File-backed named machine presets.
//!
//! [`presets::by_name`](crate::presets::by_name) resolves the built-in
//! machines; this module adds the *fitted* ones: parameter sets produced
//! by calibration (or written by hand) that live in small JSON files and
//! in a process-wide registry consulted as a fallback by `by_name`.
//!
//! The file format is deliberately tiny — integer picoseconds only, no
//! floats, so a preset round-trips bit-exactly through save/load:
//!
//! ```json
//! {
//!   "version": 1,
//!   "presets": [
//!     { "name": "ge-fit", "latency_ps": 9000000, "overhead_ps": 6000000,
//!       "gap_ps": 16000000, "gap_per_byte_ps": 30000, "procs": 8 }
//!   ]
//! }
//! ```
//!
//! `loggp` sits below the workspace's strict JSON parser
//! (`predsim_lint::json` depends on this crate), so the loader here is a
//! self-contained parser for exactly this schema: objects, arrays,
//! strings without escapes, and unsigned integers. Anything else is a
//! hard error — same spirit as the wire format, scoped to one file kind.

use crate::hetero::{LinkOverride, MachineSpec};
use crate::params::LogGpParams;
use crate::time::Time;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{OnceLock, RwLock};

/// Current preset-file schema version.
pub const FILE_VERSION: u64 = 1;

/// A named parameter set as stored in a preset file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedPreset {
    /// Registry name (letters, digits, `-`, `_`, `.`; must not collide
    /// with a built-in short name).
    pub name: String,
    /// The parameters (procs included: the count the fit was made at;
    /// `by_name` re-targets it to the requested processor count).
    pub params: LogGpParams,
}

/// A named, possibly heterogeneous machine as stored in a preset file.
///
/// Uniform specs render byte-identically to a flat [`NamedPreset`];
/// heterogeneous ones carry the optional `speed_permille` and `links`
/// fields. Flat consumers ([`parse_file`], [`registered`]) see only the
/// base parameters of a heterogeneous entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedSpec {
    /// Registry name (same rules as [`NamedPreset`]).
    pub name: String,
    /// The machine description.
    pub spec: MachineSpec,
}

/// Validate a registry name: non-empty, and only characters that cannot
/// collide with the `--machine` spec grammar (`@file:name`) or the
/// serve API's comma-separated machine lists.
pub fn check_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("preset name must not be empty".into());
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')))
    {
        return Err(format!(
            "preset name '{name}' contains '{c}' (allowed: letters, digits, '-', '_', '.')"
        ));
    }
    if crate::presets::SHORT_NAMES.contains(&name) {
        return Err(format!("preset name '{name}' shadows a built-in machine"));
    }
    Ok(())
}

fn global() -> &'static RwLock<HashMap<String, LogGpParams>> {
    static GLOBAL: OnceLock<RwLock<HashMap<String, LogGpParams>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Register a fitted preset under `name` in the process-wide registry.
///
/// Rejects invalid names, names shadowing built-ins, parameters that do
/// not validate, and re-registration under an existing name with
/// *different* parameters. Re-registering identical parameters is
/// idempotent (so loading the same preset file twice is harmless).
pub fn register(name: &str, params: LogGpParams) -> Result<(), String> {
    check_name(name)?;
    params
        .validate()
        .map_err(|e| format!("preset '{name}': {e}"))?;
    let mut map = global().write().expect("preset registry poisoned");
    match map.get(name) {
        Some(existing) if *existing != params => Err(format!(
            "preset '{name}' is already registered with different parameters"
        )),
        _ => {
            map.insert(name.to_string(), params);
            Ok(())
        }
    }
}

/// Look a registered preset up by name, re-targeted to `procs`
/// processors. Built-in machines are *not* consulted here; use
/// [`presets::by_name`](crate::presets::by_name) for the combined view.
pub fn registered(name: &str, procs: usize) -> Option<LogGpParams> {
    let map = global().read().expect("preset registry poisoned");
    map.get(name).map(|p| p.with_procs(procs))
}

/// The names currently registered, sorted.
pub fn registered_names() -> Vec<String> {
    let map = global().read().expect("preset registry poisoned");
    let mut names: Vec<String> = map.keys().cloned().collect();
    names.sort();
    names
}

fn spec_global() -> &'static RwLock<HashMap<String, MachineSpec>> {
    static GLOBAL: OnceLock<RwLock<HashMap<String, MachineSpec>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Register a (possibly heterogeneous) machine spec under `name`.
///
/// The base parameters always land in the flat registry, so
/// [`registered`] and [`presets::by_name`](crate::presets::by_name)
/// resolve the name too (seeing the uniform base); the heterogeneity is
/// kept alongside and surfaces through [`registered_spec`]. The same
/// rules as [`register`] apply: re-registering an identical spec is
/// idempotent, anything different under an existing name is an error —
/// including adding heterogeneity to a name registered flat.
pub fn register_spec(name: &str, spec: &MachineSpec) -> Result<(), String> {
    check_name(name)?;
    spec.validate()
        .map_err(|e| format!("preset '{name}': {e}"))?;
    {
        let specs = spec_global()
            .read()
            .expect("machine-spec registry poisoned");
        match specs.get(name) {
            Some(existing) if existing != spec => {
                return Err(format!(
                    "preset '{name}' is already registered with different parameters"
                ));
            }
            Some(_) => return Ok(()),
            None => {}
        }
        if !spec.is_uniform() {
            let flat = global().read().expect("preset registry poisoned");
            if flat.contains_key(name) {
                return Err(format!(
                    "preset '{name}' is already registered with different parameters"
                ));
            }
        }
    }
    register(name, spec.base)?;
    if !spec.is_uniform() {
        let mut specs = spec_global()
            .write()
            .expect("machine-spec registry poisoned");
        specs.insert(name.to_string(), spec.clone());
    }
    Ok(())
}

/// Look a registered machine spec up by name, at its *registered*
/// processor count (use [`MachineSpec::retarget`] or
/// [`hetero::resolve`](crate::hetero::resolve) to change it). Names
/// registered flat come back as uniform specs.
pub fn registered_spec(name: &str) -> Option<MachineSpec> {
    {
        let specs = spec_global()
            .read()
            .expect("machine-spec registry poisoned");
        if let Some(s) = specs.get(name) {
            return Some(s.clone());
        }
    }
    let map = global().read().expect("preset registry poisoned");
    map.get(name).map(|p| MachineSpec::uniform(*p))
}

/// Parse a preset file's contents down to the flat view: heterogeneous
/// entries contribute their *base* parameters. Duplicate names within
/// the file are rejected; every entry must validate.
pub fn parse_file(text: &str) -> Result<Vec<NamedPreset>, String> {
    Ok(parse_file_specs(text)?
        .into_iter()
        .map(|s| NamedPreset {
            name: s.name,
            params: s.spec.base,
        })
        .collect())
}

fn parse_link(i: usize, j: usize, entry: Value) -> Result<LinkOverride, String> {
    let mut l = entry.into_object(&format!("presets[{i}].links[{j}]"))?;
    let link = LinkOverride {
        src: usize::try_from(l.take_int("src")?)
            .map_err(|_| format!("links[{j}]: src out of range"))?,
        dst: usize::try_from(l.take_int("dst")?)
            .map_err(|_| format!("links[{j}]: dst out of range"))?,
        latency: Time::from_ps(l.take_int("latency_ps")?),
        overhead: Time::from_ps(l.take_int("overhead_ps")?),
        gap: Time::from_ps(l.take_int("gap_ps")?),
        gap_per_byte: Time::from_ps(l.take_int("gap_per_byte_ps")?),
    };
    l.finish(&format!("links[{j}]"))?;
    Ok(link)
}

/// Parse a preset file's contents with heterogeneity intact. Entries
/// without `speed_permille`/`links` fields come back as uniform specs —
/// every flat preset file is a valid spec file.
pub fn parse_file_specs(text: &str) -> Result<Vec<NamedSpec>, String> {
    let value = Parser::new(text).document()?;
    let mut obj = value.into_object("preset file")?;
    let version = obj.take_int("version")?;
    if version != FILE_VERSION {
        return Err(format!(
            "unsupported preset file version {version} (expected {FILE_VERSION})"
        ));
    }
    let entries = obj.take_array("presets")?;
    obj.finish("preset file")?;
    let mut out = Vec::new();
    for (i, entry) in entries.into_iter().enumerate() {
        let mut e = entry.into_object(&format!("presets[{i}]"))?;
        let name = e.take_str("name")?;
        check_name(&name)?;
        if out.iter().any(|p: &NamedSpec| p.name == name) {
            return Err(format!("duplicate preset name '{name}' in file"));
        }
        let params = LogGpParams {
            latency: Time::from_ps(e.take_int("latency_ps")?),
            overhead: Time::from_ps(e.take_int("overhead_ps")?),
            gap: Time::from_ps(e.take_int("gap_ps")?),
            gap_per_byte: Time::from_ps(e.take_int("gap_per_byte_ps")?),
            procs: usize::try_from(e.take_int("procs")?)
                .map_err(|_| format!("preset '{name}': procs out of range"))?,
        };
        let mut speed_permille = Vec::new();
        if let Some(v) = e.take_opt("speed_permille") {
            let items = match v {
                Value::Array(items) => items,
                _ => return Err(format!("preset '{name}': speed_permille must be an array")),
            };
            for item in items {
                match item {
                    Value::Int(n) => speed_permille.push(n),
                    _ => {
                        return Err(format!(
                            "preset '{name}': speed_permille entries must be unsigned integers"
                        ));
                    }
                }
            }
        }
        let mut links = Vec::new();
        if let Some(v) = e.take_opt("links") {
            let items = match v {
                Value::Array(items) => items,
                _ => return Err(format!("preset '{name}': links must be an array")),
            };
            for (j, item) in items.into_iter().enumerate() {
                links.push(parse_link(i, j, item).map_err(|e| format!("preset '{name}': {e}"))?);
            }
        }
        e.finish(&name)?;
        let spec = MachineSpec {
            base: params,
            speed_permille,
            links,
        };
        spec.validate()
            .map_err(|err| format!("preset '{name}': {err}"))?;
        out.push(NamedSpec { name, spec });
    }
    Ok(out)
}

/// Render presets in the file format (pretty-printed, trailing newline).
pub fn render_file(presets: &[NamedPreset]) -> String {
    let specs: Vec<NamedSpec> = presets
        .iter()
        .map(|p| NamedSpec {
            name: p.name.clone(),
            spec: MachineSpec::uniform(p.params),
        })
        .collect();
    render_file_specs(&specs)
}

/// Render machine specs in the file format. Uniform entries render
/// byte-identically to the flat [`render_file`] output (pinned by test);
/// heterogeneous ones append `speed_permille` and/or `links` fields.
pub fn render_file_specs(specs: &[NamedSpec]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": {FILE_VERSION},");
    s.push_str("  \"presets\": [");
    for (i, p) in specs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    { ");
        let _ = write!(
            s,
            "\"name\": \"{}\", \"latency_ps\": {}, \"overhead_ps\": {}, \
             \"gap_ps\": {}, \"gap_per_byte_ps\": {}, \"procs\": {}",
            p.name,
            p.spec.base.latency.as_ps(),
            p.spec.base.overhead.as_ps(),
            p.spec.base.gap.as_ps(),
            p.spec.base.gap_per_byte.as_ps(),
            p.spec.base.procs
        );
        if !p.spec.speed_permille.is_empty() {
            s.push_str(", \"speed_permille\": [");
            for (j, f) in p.spec.speed_permille.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{f}");
            }
            s.push(']');
        }
        if !p.spec.links.is_empty() {
            s.push_str(", \"links\": [");
            for (j, l) in p.spec.links.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(
                    s,
                    "{{ \"src\": {}, \"dst\": {}, \"latency_ps\": {}, \"overhead_ps\": {}, \
                     \"gap_ps\": {}, \"gap_per_byte_ps\": {} }}",
                    l.src,
                    l.dst,
                    l.latency.as_ps(),
                    l.overhead.as_ps(),
                    l.gap.as_ps(),
                    l.gap_per_byte.as_ps()
                );
            }
            s.push(']');
        }
        s.push_str(" }");
    }
    if specs.is_empty() {
        s.push_str("]\n}\n");
    } else {
        s.push_str("\n  ]\n}\n");
    }
    s
}

/// Load a preset file from disk (parse only — nothing is registered).
pub fn load_file(path: &str) -> Result<Vec<NamedPreset>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read preset file {path}: {e}"))?;
    parse_file(&text).map_err(|e| format!("{path}: {e}"))
}

/// Load a preset file from disk with heterogeneity intact (parse only —
/// nothing is registered).
pub fn load_file_specs(path: &str) -> Result<Vec<NamedSpec>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read preset file {path}: {e}"))?;
    parse_file_specs(&text).map_err(|e| format!("{path}: {e}"))
}

/// Write presets to a file in the canonical format.
///
/// The write is atomic: the rendered file goes to a sibling temp file
/// first and is renamed over `path` only once fully written, so a crash
/// (or kill) mid-save can never leave a truncated registry behind — the
/// previous contents survive untouched.
pub fn save_file(path: &str, presets: &[NamedPreset]) -> Result<(), String> {
    for p in presets {
        check_name(&p.name)?;
        if presets.iter().filter(|q| q.name == p.name).count() > 1 {
            return Err(format!("duplicate preset name '{}'", p.name));
        }
    }
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, render_file(presets))
        .map_err(|e| format!("cannot write preset file {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot move preset file into place at {path}: {e}")
    })
}

/// Write machine specs to a file in the canonical format, atomically
/// (same strategy as [`save_file`]).
pub fn save_file_specs(path: &str, specs: &[NamedSpec]) -> Result<(), String> {
    for p in specs {
        check_name(&p.name)?;
        p.spec
            .validate()
            .map_err(|e| format!("preset '{}': {e}", p.name))?;
        if specs.iter().filter(|q| q.name == p.name).count() > 1 {
            return Err(format!("duplicate preset name '{}'", p.name));
        }
    }
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, render_file_specs(specs))
        .map_err(|e| format!("cannot write preset file {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot move preset file into place at {path}: {e}")
    })
}

/// Load a preset file and register every entry in the process-wide
/// registry — heterogeneity intact, so `@file:name` machine specs
/// resolve with their speed factors and link overrides through
/// [`registered_spec`]. Returns the names registered, in file order.
pub fn register_file(path: &str) -> Result<Vec<String>, String> {
    let specs = load_file_specs(path)?;
    let mut names = Vec::with_capacity(specs.len());
    for p in &specs {
        register_spec(&p.name, &p.spec).map_err(|e| format!("{path}: {e}"))?;
        names.push(p.name.clone());
    }
    Ok(names)
}

// ---------------------------------------------------------------------
// The schema-local JSON subset parser.
// ---------------------------------------------------------------------

enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Str(String),
    Int(u64),
}

/// An object under consumption: fields are taken by name and any
/// leftover (unknown) field is a hard error via [`Fields::finish`].
struct Fields(Vec<(String, Value)>);

impl Value {
    fn into_object(self, what: &str) -> Result<Fields, String> {
        match self {
            Value::Object(fields) => Ok(Fields(fields)),
            _ => Err(format!("{what}: expected an object")),
        }
    }
}

impl Fields {
    fn take(&mut self, key: &str) -> Result<Value, String> {
        let idx = self
            .0
            .iter()
            .position(|(k, _)| k == key)
            .ok_or_else(|| format!("missing field '{key}'"))?;
        Ok(self.0.remove(idx).1)
    }

    fn take_opt(&mut self, key: &str) -> Option<Value> {
        let idx = self.0.iter().position(|(k, _)| k == key)?;
        Some(self.0.remove(idx).1)
    }

    fn take_int(&mut self, key: &str) -> Result<u64, String> {
        match self.take(key)? {
            Value::Int(n) => Ok(n),
            _ => Err(format!("field '{key}' must be an unsigned integer")),
        }
    }

    fn take_str(&mut self, key: &str) -> Result<String, String> {
        match self.take(key)? {
            Value::Str(s) => Ok(s),
            _ => Err(format!("field '{key}' must be a string")),
        }
    }

    fn take_array(&mut self, key: &str) -> Result<Vec<Value>, String> {
        match self.take(key)? {
            Value::Array(items) => Ok(items),
            _ => Err(format!("field '{key}' must be an array")),
        }
    }

    fn finish(self, what: &str) -> Result<(), String> {
        match self.0.first() {
            None => Ok(()),
            Some((k, _)) => Err(format!("{what}: unknown field '{k}'")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn document(&mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err("trailing content after document".into());
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of preset file".into())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b'0'..=b'9' => Ok(Value::Int(self.integer()?)),
            c => Err(format!("unexpected character '{}'", c as char)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = match self.peek()? {
                b'"' => self.string()?,
                _ => return Err("expected a quoted key".into()),
            };
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key '{key}'"));
            }
            self.eat(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => return Err("escape sequences are not supported in preset files".into()),
                0x00..=0x1f => return Err("control character in string".into()),
                _ => self.pos += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn integer(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if digits.len() > 1 && digits.starts_with('0') {
            return Err("leading zeros are not allowed".into());
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err("floats are not allowed in preset files (use integer picoseconds)".into());
        }
        digits
            .parse::<u64>()
            .map_err(|e| format!("bad integer: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn fitted(latency_us: f64) -> LogGpParams {
        LogGpParams::from_us(latency_us, 4.0, 12.0, 0.02, 8)
    }

    #[test]
    fn file_round_trips_bit_exactly() {
        let presets = vec![
            NamedPreset {
                name: "ge-fit".into(),
                params: fitted(7.25),
            },
            NamedPreset {
                name: "stencil.v2".into(),
                params: fitted(11.5),
            },
        ];
        let text = render_file(&presets);
        let back = parse_file(&text).unwrap();
        assert_eq!(back, presets);
        // And the empty file round-trips too.
        assert_eq!(parse_file(&render_file(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn parser_rejects_malformed_files() {
        for (bad, why) in [
            ("", "empty"),
            ("{\"version\": 2, \"presets\": []}", "wrong version"),
            ("{\"version\": 1}", "missing presets"),
            (
                "{\"version\": 1, \"presets\": [], \"extra\": 1}",
                "unknown field",
            ),
            ("{\"version\": 1.0, \"presets\": []}", "floats are rejected"),
            (
                "{\"version\": 1, \"presets\": [{\"name\": \"x\"}]}",
                "missing params",
            ),
        ] {
            assert!(parse_file(bad).is_err(), "{why}");
        }
    }

    #[test]
    fn duplicate_names_are_rejected_in_files_and_on_save() {
        let p = NamedPreset {
            name: "dup".into(),
            params: fitted(5.0),
        };
        let text = render_file(&[p.clone(), p.clone()]);
        let err = parse_file(&text).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = save_file("/dev/null", &[p.clone(), p]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn a_save_killed_mid_write_cannot_truncate_the_registry_file() {
        let dir = std::env::temp_dir().join(format!("predsim-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("presets.json");
        let path = path.to_str().unwrap();
        let v1 = vec![NamedPreset {
            name: "survivor".into(),
            params: fitted(5.0),
        }];
        save_file(path, &v1).unwrap();

        // A writer that died mid-save leaves only a partial sibling temp
        // file — exactly what save_file would have produced up to the
        // kill. The registry file itself must still parse as v1.
        let abandoned = format!("{path}.tmp.99999");
        std::fs::write(&abandoned, "{\"version\": 1, \"pres").unwrap();
        assert_eq!(load_file(path).unwrap(), v1);

        // A later complete save replaces it whole, stale temp and all.
        let v2 = vec![NamedPreset {
            name: "replacement".into(),
            params: fitted(9.0),
        }];
        save_file(path, &v2).unwrap();
        assert_eq!(load_file(path).unwrap(), v2);
        let _ = std::fs::remove_file(&abandoned);
    }

    #[test]
    fn registry_rejects_shadowing_and_conflicting_registration() {
        assert!(register("meiko", fitted(5.0)).is_err(), "builtin shadow");
        assert!(register("has space", fitted(5.0)).is_err(), "bad name");
        assert!(register("a@b", fitted(5.0)).is_err(), "spec metachar");
        register("reg-test-conflict", fitted(5.0)).unwrap();
        // Idempotent re-registration is fine; different params are not.
        register("reg-test-conflict", fitted(5.0)).unwrap();
        let err = register("reg-test-conflict", fitted(6.0)).unwrap_err();
        assert!(err.contains("different parameters"), "{err}");
    }

    #[test]
    fn by_name_falls_back_to_the_registry() {
        assert!(presets::by_name("reg-test-lookup", 4).is_none());
        register("reg-test-lookup", fitted(5.0)).unwrap();
        let p = presets::by_name("reg-test-lookup", 16).expect("registered");
        assert_eq!(p.procs, 16, "re-targeted to the requested procs");
        assert_eq!(p.latency, fitted(5.0).latency);
        assert!(registered_names().contains(&"reg-test-lookup".to_string()));
    }

    fn hetero_spec() -> MachineSpec {
        let base = fitted(7.25);
        MachineSpec {
            base,
            speed_permille: vec![2000, 1000, 1000, 1000, 1000, 1000, 1000, 500],
            links: vec![LinkOverride {
                src: 0,
                dst: 7,
                latency: Time::from_ps(base.latency.as_ps() * 3),
                overhead: base.overhead,
                gap: base.gap,
                gap_per_byte: base.gap_per_byte,
            }],
        }
    }

    #[test]
    fn uniform_spec_files_are_byte_identical_to_flat_preset_files() {
        let flat = vec![
            NamedPreset {
                name: "u1".into(),
                params: fitted(7.25),
            },
            NamedPreset {
                name: "u2".into(),
                params: fitted(11.5),
            },
        ];
        let specs: Vec<NamedSpec> = flat
            .iter()
            .map(|p| NamedSpec {
                name: p.name.clone(),
                spec: MachineSpec::uniform(p.params),
            })
            .collect();
        assert_eq!(render_file_specs(&specs), render_file(&flat));
        // And a flat file parses to uniform specs.
        assert_eq!(parse_file_specs(&render_file(&flat)).unwrap(), specs);
    }

    #[test]
    fn hetero_spec_files_round_trip_bit_exactly() {
        let specs = vec![
            NamedSpec {
                name: "flat-entry".into(),
                spec: MachineSpec::uniform(fitted(5.0)),
            },
            NamedSpec {
                name: "het-entry".into(),
                spec: hetero_spec(),
            },
        ];
        let text = render_file_specs(&specs);
        let back = parse_file_specs(&text).unwrap();
        assert_eq!(back, specs);
        assert_eq!(render_file_specs(&back), text, "render is canonical");
        // The flat view of the same file sees the base parameters only.
        let flat = parse_file(&text).unwrap();
        assert_eq!(flat[1].params, specs[1].spec.base);
    }

    #[test]
    fn spec_parse_rejects_heterogeneity_that_does_not_validate() {
        let base = NamedSpec {
            name: "bad-het".into(),
            spec: MachineSpec {
                base: fitted(5.0),
                speed_permille: vec![1000, 1000], // wrong arity for 8 procs
                links: Vec::new(),
            },
        };
        assert!(parse_file_specs(&render_file_specs(&[base])).is_err());
    }

    #[test]
    fn register_spec_round_trips_and_rejects_conflicts() {
        let spec = hetero_spec();
        register_spec("reg-test-het", &spec).unwrap();
        register_spec("reg-test-het", &spec).unwrap(); // idempotent
        assert_eq!(registered_spec("reg-test-het"), Some(spec.clone()));
        // The flat view resolves too, seeing the base parameters.
        assert_eq!(registered("reg-test-het", 8), Some(spec.base));
        // A different spec under the same name is a conflict.
        let mut other = spec.clone();
        other.speed_permille[0] = 3000;
        let err = register_spec("reg-test-het", &other).unwrap_err();
        assert!(err.contains("different parameters"), "{err}");
        // Adding heterogeneity to a flat-registered name is a conflict too.
        register("reg-test-het-flat", spec.base).unwrap();
        let mut renamed = spec.clone();
        renamed.base = spec.base;
        assert!(register_spec("reg-test-het-flat", &renamed).is_err());
        // Flat-registered names come back as uniform specs.
        assert_eq!(
            registered_spec("reg-test-het-flat"),
            Some(MachineSpec::uniform(spec.base))
        );
    }

    #[test]
    fn invalid_params_are_rejected_at_parse_and_register() {
        // g < o violates LogGP validation.
        let text = "{\"version\": 1, \"presets\": [{ \"name\": \"bad\", \
                    \"latency_ps\": 1, \"overhead_ps\": 10, \"gap_ps\": 5, \
                    \"gap_per_byte_ps\": 0, \"procs\": 4 }]}";
        assert!(parse_file(text).is_err());
        let bad = LogGpParams {
            gap: Time::from_us(1.0),
            overhead: Time::from_us(2.0),
            ..fitted(5.0)
        };
        assert!(register("reg-test-invalid", bad).is_err());
    }
}
