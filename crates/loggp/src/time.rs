//! Integer simulation time.
//!
//! All simulators in this workspace do their arithmetic on [`Time`], a
//! newtype over a `u64` count of **picoseconds**. Integer time makes every
//! simulation bit-for-bit deterministic (no float rounding, no platform
//! variation) while picosecond resolution keeps sub-nanosecond quantities —
//! such as the per-byte gap `G` of fast networks — exact.
//!
//! The paper reports times in microseconds; [`Time`]'s `Display` prints µs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// A point in (or length of) simulated time, in integer picoseconds.
///
/// `Time` is totally ordered and supports saturating/checked arithmetic.
/// Subtraction panics on underflow in debug builds (like primitive
/// integers); use [`Time::saturating_sub`] when clamping to zero is wanted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Zero time; the start of every simulation.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time (~213 days). Used as an "infinity"
    /// sentinel by the simulation algorithms, mirroring the paper's
    /// `start_recv = ∞` when a processor has nothing to receive.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * PS_PER_NS)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_us_int(us: u64) -> Self {
        Time(us * PS_PER_US)
    }

    /// Construct from (possibly fractional) microseconds.
    ///
    /// Rounds to the nearest picosecond. Panics if `us` is negative or not
    /// finite.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us} us");
        Time((us * PS_PER_US as f64).round() as u64)
    }

    /// Construct from (possibly fractional) milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_us(ms * 1_000.0)
    }

    /// Construct from (possibly fractional) seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s} s");
        Time((s * PS_PER_SEC as f64).round() as u64)
    }

    /// The raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition, clamping at [`Time::MAX`].
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: Time) -> Option<Time> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True iff this is the zero time.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer count, saturating.
    #[inline]
    pub const fn saturating_mul(self, n: u64) -> Time {
        Time(self.0.saturating_mul(n))
    }

    /// Convert a wall-clock [`std::time::Duration`] (e.g. from a host
    /// measurement) into simulated time, saturating at [`Time::MAX`]
    /// (≈213 days — far beyond any simulated run).
    pub fn from_duration(d: std::time::Duration) -> Time {
        let ns = d.as_nanos();
        Time((ns.saturating_mul(PS_PER_NS as u128)).min(u64::MAX as u128) as u64)
    }

    /// This simulated time as a wall-clock [`std::time::Duration`]
    /// (truncated to nanoseconds).
    pub fn to_duration(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0 / PS_PER_NS)
    }
}

impl From<std::time::Duration> for Time {
    fn from(d: std::time::Duration) -> Time {
        Time::from_duration(d)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Time> for Time {
    fn sum<I: Iterator<Item = &'a Time>>(iter: I) -> Time {
        iter.copied().sum()
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Time {
    /// Prints in microseconds, the paper's unit (e.g. `76.300us`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}us", prec, self.as_us_f64())
        } else {
            write!(f, "{:.3}us", self.as_us_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us_int(1), Time::from_ns(1_000));
        assert_eq!(Time::from_us(1.0), Time::from_us_int(1));
        assert_eq!(Time::from_ms(1.0), Time::from_us_int(1_000));
        assert_eq!(Time::from_secs(1.0), Time::from_us_int(1_000_000));
    }

    #[test]
    fn fractional_us_rounds_to_ps() {
        assert_eq!(Time::from_us(0.03).as_ps(), 30_000);
        assert_eq!(Time::from_us(1.5).as_ps(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(a * 3, Time::from_ns(30));
        assert_eq!(a / 2, Time::from_ns(5));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.saturating_sub(b), Time::from_ns(6));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert!(a > b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(Time::ZERO.min(Time::MAX), Time::ZERO);
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Time::from_ns(1), Time::from_ns(2), Time::from_ns(3)];
        let s: Time = v.iter().sum();
        assert_eq!(s, Time::from_ns(6));
        let s2: Time = v.into_iter().sum();
        assert_eq!(s2, Time::from_ns(6));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::MAX.saturating_add(Time::from_ns(1)), Time::MAX);
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
        assert_eq!(
            Time::from_ns(1).checked_add(Time::from_ns(1)),
            Some(Time::from_ns(2))
        );
        assert_eq!(Time::MAX.checked_add(Time::from_ps(1)), None);
        assert_eq!(Time::ZERO.checked_sub(Time::from_ps(1)), None);
    }

    #[test]
    fn display_in_microseconds() {
        let t = Time::from_us(76.3);
        assert_eq!(format!("{t}"), "76.300us");
        assert_eq!(format!("{t:.1}"), "76.3us");
    }

    #[test]
    fn duration_interop() {
        use std::time::Duration;
        let d = Duration::from_micros(1500);
        let t = Time::from_duration(d);
        assert_eq!(t, Time::from_us(1500.0));
        assert_eq!(t.to_duration(), d);
        let via_from: Time = Duration::from_nanos(7).into();
        assert_eq!(via_from, Time::from_ns(7));
        // Sub-nanosecond residue truncates on the way back out.
        assert_eq!(Time::from_ps(1_500).to_duration(), Duration::from_nanos(1));
        // Gigantic durations saturate instead of overflowing.
        assert_eq!(
            Time::from_duration(Duration::from_secs(u64::MAX)),
            Time::MAX
        );
    }

    #[test]
    #[should_panic]
    fn negative_us_panics() {
        let _ = Time::from_us(-1.0);
    }

    #[test]
    fn as_float_accessors() {
        let t = Time::from_us_int(2);
        assert_eq!(t.as_ns_f64(), 2_000.0);
        assert_eq!(t.as_us_f64(), 2.0);
        assert_eq!(t.as_ms_f64(), 0.002);
        assert!((t.as_secs_f64() - 2e-6).abs() < 1e-18);
    }
}
