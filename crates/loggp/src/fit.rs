//! Fitting LogGP parameters from measurements — how the paper's authors
//! (and the LogGP paper before them) obtained machine parameters: time a
//! ping across message sizes, then read the model parameters off the
//! regression.
//!
//! Under LogGP, the one-way time of a `k`-byte message between idle
//! processors is affine in the size: `T(k) = (2o + L − G) + G·k`. A least
//! squares line through `(k, T)` samples therefore yields `G` (slope) and
//! the combined endpoint cost `2o + L` (intercept + slope). The gap `g` is
//! fitted separately from a message-rate measurement (time per message of
//! a long back-to-back burst), and `o` from a CPU-occupancy measurement;
//! given `o`, `L` falls out of the intercept.

use crate::params::LogGpParams;
use crate::time::Time;

/// The result of [`fit_point_to_point`].
#[derive(Clone, Copy, Debug)]
pub struct PingFit {
    /// Fitted per-byte gap `G`.
    pub gap_per_byte: Time,
    /// Fitted combined endpoint cost `2o + L`.
    pub endpoint: Time,
    /// Root-mean-square residual of the fit.
    pub rms_residual: Time,
}

/// Least-squares fit of one-way times `samples = [(bytes, time), …]` to
/// the LogGP affine law `T(k) = (2o + L − G) + G·k`.
///
/// # Panics
/// Panics with fewer than two distinct message sizes.
pub fn fit_point_to_point(samples: &[(usize, Time)]) -> PingFit {
    assert!(samples.len() >= 2, "need at least two samples");
    let n = samples.len() as f64;
    let xs: Vec<f64> = samples.iter().map(|&(k, _)| k as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, t)| t.as_ps() as f64).collect();
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "need at least two distinct message sizes");
    let sxy: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx; // ps per byte = G
    let intercept = mean_y - slope * mean_x; // 2o + L - G

    let rss: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    PingFit {
        gap_per_byte: Time::from_ps(slope.max(0.0).round() as u64),
        endpoint: Time::from_ps((intercept + slope).max(0.0).round() as u64),
        rms_residual: Time::from_ps((rss / n).sqrt().round() as u64),
    }
}

/// Assemble a full parameter set from the three standard micro-benchmarks:
/// the ping fit, a measured per-message burst interval (`g`), and a
/// measured send overhead (`o`). `L` is recovered as `endpoint − 2o`
/// (clamped at zero).
pub fn assemble(fit: &PingFit, gap: Time, overhead: Time, procs: usize) -> LogGpParams {
    LogGpParams {
        latency: fit.endpoint.saturating_sub(overhead * 2),
        overhead,
        gap: gap.max(overhead),
        gap_per_byte: fit.gap_per_byte,
        procs,
    }
}

/// Generate the ideal one-way samples a given machine would produce —
/// used by tests and by calibration round-trip checks.
pub fn synthetic_samples(params: &LogGpParams, sizes: &[usize]) -> Vec<(usize, Time)> {
    sizes.iter().map(|&k| (k, params.message_cost(k))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_on_noise_free_samples() {
        for preset in presets::all(8) {
            let p = preset.params;
            if p.gap_per_byte.is_zero() {
                continue; // the ideal machine has no slope to fit
            }
            let sizes = [16usize, 64, 256, 1024, 4096, 16384];
            let fit = fit_point_to_point(&synthetic_samples(&p, &sizes));
            assert_eq!(fit.gap_per_byte, p.gap_per_byte, "{}", preset.name);
            assert_eq!(fit.endpoint, p.overhead * 2 + p.latency, "{}", preset.name);
            assert_eq!(fit.rms_residual, Time::ZERO, "{}", preset.name);
            let back = assemble(&fit, p.gap, p.overhead, p.procs);
            assert_eq!(back, p, "{}", preset.name);
        }
    }

    #[test]
    fn tolerates_measurement_noise() {
        let p = presets::meiko_cs2(8);
        let mut rng = SmallRng::seed_from_u64(42);
        let samples: Vec<(usize, Time)> = [64usize, 256, 1024, 4096, 16384, 65536]
            .iter()
            .map(|&k| {
                let exact = p.message_cost(k).as_ps() as f64;
                let noisy = exact * rng.gen_range(0.98..1.02);
                (k, Time::from_ps(noisy as u64))
            })
            .collect();
        let fit = fit_point_to_point(&samples);
        // G within 5%.
        let g = fit.gap_per_byte.as_ps() as f64;
        let want = p.gap_per_byte.as_ps() as f64;
        assert!((g - want).abs() / want < 0.05, "G fitted {g} vs {want}");
        assert!(fit.rms_residual > Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "two distinct")]
    fn needs_two_sizes() {
        let t = Time::from_us(10.0);
        let _ = fit_point_to_point(&[(64, t), (64, t)]);
    }

    #[test]
    fn assemble_clamps_degenerate_values() {
        let fit = PingFit {
            gap_per_byte: Time::from_ns(1),
            endpoint: Time::from_us(5.0),
            rms_residual: Time::ZERO,
        };
        // Overhead larger than the endpoint: latency clamps to zero, and
        // the gap is floored at o so the params still validate.
        let p = assemble(&fit, Time::from_us(1.0), Time::from_us(4.0), 4);
        assert_eq!(p.latency, Time::ZERO);
        assert_eq!(p.gap, Time::from_us(4.0));
        p.validate().unwrap();
    }
}
