//! Property-based tests for the stencil application.

use blockops::Matrix;
use proptest::prelude::*;
use stencil::{jacobi_banded, jacobi_reference, trace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Banded execution equals the reference for any band count and
    /// iteration count.
    #[test]
    fn banded_equals_reference(
        n in 3usize..20,
        procs_idx in any::<prop::sample::Index>(),
        iters in 0usize..6,
        seed in any::<u64>(),
    ) {
        let procs = 1 + procs_idx.index(n);
        let grid = Matrix::random(n, n, seed);
        let mut want = grid.clone();
        for _ in 0..iters {
            want = jacobi_reference(&want);
        }
        let got = jacobi_banded(&grid, procs, iters);
        prop_assert!(got.approx_eq(&want, 1e-12), "n={n} procs={procs} iters={iters}");
    }

    /// Jacobi is a contraction toward the boundary values: the interior
    /// max never exceeds the global max of the previous grid.
    #[test]
    fn max_principle(n in 3usize..16, seed in any::<u64>()) {
        let grid = Matrix::random(n, n, seed);
        let out = jacobi_reference(&grid);
        let max_in = grid.as_slice().iter().cloned().fold(f64::MIN, f64::max);
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                prop_assert!(out[(i, j)] <= max_in + 1e-12);
            }
        }
    }

    /// Trace invariants: per-iteration comp load is proportional to band
    /// rows, and halos are exactly `8n` bytes.
    #[test]
    fn trace_invariants(n in 4usize..40, procs in 1usize..8, iters in 1usize..4) {
        let procs = procs.min(n);
        let g = trace::generate(n, procs, iters, 25_000);
        prop_assert_eq!(g.program.len(), iters);
        for s in g.program.steps() {
            for m in s.comm.messages() {
                prop_assert_eq!(m.bytes, 8 * n);
            }
            // Comp entries proportional to rows: ratio check between the
            // largest and smallest band.
            let max = s.comp.iter().max().unwrap();
            let min = s.comp.iter().min().unwrap();
            let rows_max = (0..procs).map(|p| trace::band_rows(n, procs, p)).max().unwrap();
            let rows_min = (0..procs).map(|p| trace::band_rows(n, procs, p)).min().unwrap();
            prop_assert_eq!(
                max.as_ps() * rows_min as u64,
                min.as_ps() * rows_max as u64
            );
        }
    }
}
