//! Jacobi 5-point stencil iteration — the third application, a systolic
//! member of the paper's program class (input-independent halo-exchange
//! communication, strictly alternating computation and communication).
//!
//! The grid is decomposed into horizontal bands, one per processor; each
//! iteration is one program step: update your band (4 flops per interior
//! cell), then exchange boundary rows with the neighbours.
//!
//! [`trace::generate`] emits the oblivious program; [`exec`] provides the
//! real banded execution validated against a whole-grid reference sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod trace;

pub use exec::{jacobi_banded, jacobi_reference};
pub use trace::{generate, StencilProgram};
