//! Real Jacobi execution: whole-grid reference and banded (distributed)
//! variants, checked against each other by the tests.

use blockops::Matrix;

/// One Jacobi sweep over the whole grid: every interior cell becomes the
/// average of its four neighbours; the boundary is held fixed.
pub fn jacobi_reference(grid: &Matrix) -> Matrix {
    let (rows, cols) = (grid.rows(), grid.cols());
    let mut out = grid.clone();
    for i in 1..rows.saturating_sub(1) {
        for j in 1..cols.saturating_sub(1) {
            out[(i, j)] =
                0.25 * (grid[(i - 1, j)] + grid[(i + 1, j)] + grid[(i, j - 1)] + grid[(i, j + 1)]);
        }
    }
    out
}

/// `iters` banded Jacobi sweeps: the grid is split into `procs` horizontal
/// bands; every iteration updates each band using explicit halo rows
/// "received" from the neighbouring bands — the same data flow as the
/// distributed algorithm the trace generator describes.
///
/// # Panics
/// Panics if `procs` is zero or exceeds the number of rows.
pub fn jacobi_banded(grid: &Matrix, procs: usize, iters: usize) -> Matrix {
    let n = grid.rows();
    assert!(procs > 0 && procs <= n, "need 1..=n bands");
    // Band boundaries.
    let mut starts = Vec::with_capacity(procs + 1);
    let mut acc = 0;
    for p in 0..procs {
        starts.push(acc);
        acc += crate::trace::band_rows(n, procs, p);
    }
    starts.push(n);

    let mut cur = grid.clone();
    for _ in 0..iters {
        // Gather halos first (synchronous exchange), then update bands.
        let halos: Vec<(Vec<f64>, Vec<f64>)> = (0..procs)
            .map(|p| {
                let top = if starts[p] > 0 {
                    cur.row(starts[p] - 1).to_vec()
                } else {
                    Vec::new()
                };
                let bot = if starts[p + 1] < n {
                    cur.row(starts[p + 1]).to_vec()
                } else {
                    Vec::new()
                };
                (top, bot)
            })
            .collect();
        let mut next = cur.clone();
        for p in 0..procs {
            let (r0, r1) = (starts[p], starts[p + 1]);
            for i in r0..r1 {
                if i == 0 || i == n - 1 {
                    continue; // fixed boundary
                }
                for j in 1..cur.cols() - 1 {
                    let up = if i == r0 {
                        halos[p].0[j]
                    } else {
                        cur[(i - 1, j)]
                    };
                    let down = if i == r1 - 1 {
                        halos[p].1[j]
                    } else {
                        cur[(i + 1, j)]
                    };
                    next[(i, j)] = 0.25 * (up + down + cur[(i, j - 1)] + cur[(i, j + 1)]);
                }
            }
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_plate(n: usize) -> Matrix {
        // Top edge hot, rest cold.
        Matrix::from_fn(n, n, |i, _| if i == 0 { 100.0 } else { 0.0 })
    }

    #[test]
    fn banded_matches_reference() {
        let n = 16;
        let mut want = hot_plate(n);
        for _ in 0..5 {
            want = jacobi_reference(&want);
        }
        for procs in [1, 2, 3, 5, 16] {
            let got = jacobi_banded(&hot_plate(n), procs, 5);
            assert!(
                got.approx_eq(&want, 1e-12),
                "procs={procs} diff={}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn boundary_is_fixed() {
        let g = hot_plate(8);
        let out = jacobi_banded(&g, 2, 3);
        for j in 0..8 {
            assert_eq!(out[(0, j)], 100.0);
            assert_eq!(out[(7, j)], 0.0);
        }
    }

    #[test]
    fn heat_diffuses_downward() {
        let out = jacobi_banded(&hot_plate(8), 4, 10);
        assert!(out[(1, 4)] > out[(4, 4)]);
        assert!(out[(1, 4)] > 0.0);
    }

    #[test]
    fn zero_iters_is_identity() {
        let g = hot_plate(6);
        assert!(jacobi_banded(&g, 3, 0).approx_eq(&g, 0.0));
    }

    #[test]
    fn tiny_grids_do_not_panic() {
        let g = Matrix::zeros(1, 1);
        let _ = jacobi_reference(&g);
        let _ = jacobi_banded(&g, 1, 2);
        let g2 = Matrix::zeros(2, 2);
        let _ = jacobi_banded(&g2, 2, 2);
    }

    #[test]
    #[should_panic(expected = "bands")]
    fn too_many_bands_rejected() {
        let _ = jacobi_banded(&Matrix::zeros(4, 4), 5, 1);
    }
}
