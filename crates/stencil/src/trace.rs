//! Trace generation for the banded Jacobi iteration.

use commsim::CommPattern;
use loggp::Time;
use predsim_core::{Program, Step, StepLoad};

/// A generated stencil program plus emulator metadata.
#[derive(Clone, Debug)]
pub struct StencilProgram {
    /// One step per Jacobi iteration (computation + halo exchange).
    pub program: Program,
    /// Work profiles parallel to the steps.
    pub loads: Vec<StepLoad>,
    /// Grid dimension (`n × n` cells).
    pub n: usize,
    /// Number of processors (horizontal bands).
    pub procs: usize,
    /// Number of iterations.
    pub iters: usize,
}

impl StencilProgram {
    /// Bytes of one halo row (`8·n`).
    pub fn halo_bytes(&self) -> usize {
        8 * self.n
    }
}

/// Rows of band `p` when `n` rows are dealt to `procs` bands as evenly as
/// possible (first `n % procs` bands get one extra row).
pub fn band_rows(n: usize, procs: usize, p: usize) -> usize {
    n / procs + usize::from(p < n % procs)
}

/// Generate the stencil trace: an `n × n` grid on `procs` bands for
/// `iters` iterations, charging `ps_per_flop` picoseconds per flop
/// (4 flops per updated cell).
///
/// # Panics
/// Panics if `procs == 0` or `procs > n` (a band needs at least one row).
pub fn generate(n: usize, procs: usize, iters: usize, ps_per_flop: u64) -> StencilProgram {
    assert!(
        procs > 0 && procs <= n,
        "need 1..=n bands, got {procs} for n={n}"
    );
    let mut program = Program::new(procs);
    let mut loads = Vec::new();

    let comp: Vec<Time> = (0..procs)
        .map(|p| Time::from_ps(4 * ps_per_flop * (band_rows(n, procs, p) * n) as u64))
        .collect();

    for it in 0..iters {
        let mut pattern = CommPattern::new(procs);
        for p in 0..procs {
            if p + 1 < procs {
                pattern.add(p, p + 1, 8 * n); // bottom halo down
                pattern.add(p + 1, p, 8 * n); // top halo up
            }
        }
        let mut load = StepLoad::new(procs);
        for p in 0..procs {
            load.add_visits(p, band_rows(n, procs, p) as u32);
            // The whole band (two grid copies) is the step's working set;
            // bands get disjoint address ranges.
            let band_bytes = (16 * n * band_rows(n, procs, p)) as u32;
            load.touch(p, (p * 16 * n * (n / procs + 1)) as u64, band_bytes);
        }
        program.push(
            Step::new(format!("iter {it}"))
                .with_comp(comp.clone())
                .with_comm(pattern),
        );
        loads.push(load);
    }

    StencilProgram {
        program,
        loads,
        n,
        procs,
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::SimConfig;
    use loggp::presets;
    use predsim_core::{simulate_program, SimOptions};

    #[test]
    fn band_rows_partition() {
        for (n, procs) in [(10, 3), (16, 4), (7, 7), (100, 8)] {
            let total: usize = (0..procs).map(|p| band_rows(n, procs, p)).sum();
            assert_eq!(total, n);
            let sizes: Vec<usize> = (0..procs).map(|p| band_rows(n, procs, p)).collect();
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn trace_shape() {
        let g = generate(32, 4, 5, 25_000);
        assert_eq!(g.program.len(), 5);
        assert_eq!(g.loads.len(), 5);
        assert_eq!(g.halo_bytes(), 256);
        // Interior bands exchange 2 halos each way; ends only one.
        let pat = &g.program.steps()[0].comm;
        assert_eq!(pat.send_counts(), vec![1, 2, 2, 1]);
        assert_eq!(pat.recv_counts(), vec![1, 2, 2, 1]);
    }

    #[test]
    fn single_band_has_no_communication() {
        let g = generate(16, 1, 3, 25_000);
        assert_eq!(g.program.total_messages(), 0);
    }

    #[test]
    fn computation_balanced() {
        let g = generate(64, 8, 1, 25_000);
        let load = g.program.comp_load();
        let max = load.iter().max().unwrap();
        let min = load.iter().min().unwrap();
        assert_eq!(max, min, "64 rows / 8 bands is perfectly even");
    }

    #[test]
    fn predictor_scales_with_iters() {
        let cfg = SimConfig::new(presets::meiko_cs2(4));
        let one = simulate_program(&generate(32, 4, 1, 25_000).program, &SimOptions::new(cfg));
        let five = simulate_program(&generate(32, 4, 5, 25_000).program, &SimOptions::new(cfg));
        assert!(five.total > one.total * 4);
        assert!(five.total < one.total * 6);
    }

    #[test]
    #[should_panic(expected = "bands")]
    fn rejects_more_bands_than_rows() {
        let _ = generate(4, 8, 1, 25_000);
    }
}
