//! Trace generation for Cannon's algorithm.

use blockops::{CostModel, OpClass};
use commsim::CommPattern;
use predsim_core::{Program, Step, StepLoad};

/// A generated Cannon program plus emulator metadata.
#[derive(Clone, Debug)]
pub struct CannonProgram {
    /// The oblivious program: skew, then `q` rounds of multiply + rotate.
    pub program: Program,
    /// Work profiles parallel to `program.steps()`.
    pub loads: Vec<StepLoad>,
    /// Matrix dimension.
    pub n: usize,
    /// Processor grid side (`P = q²`).
    pub q: usize,
    /// Per-processor block dimension (`n / q`).
    pub m: usize,
}

impl CannonProgram {
    /// Bytes of one `m × m` block.
    pub fn block_bytes(&self) -> usize {
        8 * self.m * self.m
    }
}

fn proc_of(q: usize, i: usize, j: usize) -> usize {
    i * q + j
}

/// Block identifiers for the emulator's cache model: each processor `p`
/// works on three blocks (its A, B and C tiles).
fn a_id(_q: usize, p: usize) -> u64 {
    p as u64
}
fn b_id(q: usize, p: usize) -> u64 {
    (q * q + p) as u64
}
fn c_id(q: usize, p: usize) -> u64 {
    (2 * q * q + p) as u64
}

/// Generate the Cannon trace for an `n × n` product on a `q × q` grid.
/// Computation is charged as the multiply-accumulate [`OpClass::Op4`] of
/// the cost model (the same `2·m³`-flop kernel).
///
/// # Panics
/// Panics if `q` does not divide `n` or `q == 0`.
pub fn generate(n: usize, q: usize, cost: &dyn CostModel) -> CannonProgram {
    assert!(
        q > 0 && n.is_multiple_of(q),
        "grid side {q} must divide the matrix size {n}"
    );
    let m = n / q;
    let procs = q * q;
    let mut program = Program::new(procs);
    let mut loads = Vec::new();

    // --- skew step: A row i left by i, B column j up by j ---------------
    let mut skew = CommPattern::new(procs);
    for i in 0..q {
        for j in 0..q {
            let src = proc_of(q, i, j);
            let a_dst = proc_of(q, i, (j + q - i % q) % q);
            let b_dst = proc_of(q, (i + q - j % q) % q, j);
            skew.add(src, a_dst, 8 * m * m);
            skew.add(src, b_dst, 8 * m * m);
        }
    }
    program.push(Step::new("skew").with_comm(skew));
    loads.push(StepLoad::new(procs));

    // --- q rounds: multiply, then rotate (no rotate after the last) -----
    for round in 0..q {
        let comp: Vec<loggp::Time> = (0..procs).map(|_| cost.op_cost(OpClass::Op4, m)).collect();
        let mut load = StepLoad::new(procs);
        let tile = (8 * m * m) as u32;
        for p in 0..procs {
            load.add_visits(p, 1);
            load.touch(p, a_id(q, p) * tile as u64, tile);
            load.touch(p, b_id(q, p) * tile as u64, tile);
            load.touch(p, c_id(q, p) * tile as u64, tile);
        }
        let mut step = Step::new(format!("round {round}")).with_comp(comp);
        if round + 1 < q {
            let mut shift = CommPattern::new(procs);
            for i in 0..q {
                for j in 0..q {
                    let src = proc_of(q, i, j);
                    shift.add(src, proc_of(q, i, (j + q - 1) % q), 8 * m * m); // A left
                    shift.add(src, proc_of(q, (i + q - 1) % q, j), 8 * m * m); // B up
                }
            }
            step = step.with_comm(shift);
        }
        program.push(step);
        loads.push(load);
    }

    CannonProgram {
        program,
        loads,
        n,
        q,
        m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockops::AnalyticCost;
    use commsim::{standard, worstcase, SimConfig};
    use loggp::presets;
    use predsim_core::{simulate_program, SimOptions};

    #[test]
    fn step_structure() {
        let g = generate(12, 3, &AnalyticCost::paper_default());
        assert_eq!(g.m, 4);
        // skew + q rounds.
        assert_eq!(g.program.len(), 1 + 3);
        assert_eq!(g.loads.len(), g.program.len());
        // Last round has no communication.
        assert!(g.program.steps().last().unwrap().comm.is_empty());
        assert_eq!(g.block_bytes(), 8 * 16);
    }

    #[test]
    fn shifts_are_cyclic_patterns() {
        let g = generate(12, 3, &AnalyticCost::paper_default());
        let shift = &g.program.steps()[1].comm;
        assert!(shift.has_cycle(), "ring shifts are cyclic");
        // Every processor sends exactly its A and B blocks.
        for p in 0..9 {
            assert_eq!(shift.send_counts().get(p), Some(&2));
        }
    }

    #[test]
    fn q1_degenerates_to_local_multiply() {
        let g = generate(8, 1, &AnalyticCost::paper_default());
        // skew is all self-messages; single round, no shifts.
        assert_eq!(g.program.total_messages(), 0, "everything is local");
        assert_eq!(g.program.len(), 2);
    }

    #[test]
    fn predictor_runs_both_algorithms() {
        let g = generate(16, 4, &AnalyticCost::paper_default());
        let cfg = SimConfig::new(presets::meiko_cs2(16));
        let st = simulate_program(&g.program, &SimOptions::new(cfg));
        let wc = simulate_program(&g.program, &SimOptions::new(cfg).worst_case());
        assert!(st.total > loggp::Time::ZERO);
        // Cyclic shifts force transmissions in the worst-case algorithm.
        assert!(wc.forced_sends > 0);
        assert!(wc.total >= st.total);
    }

    #[test]
    fn skew_row0_col0_are_self_messages() {
        let g = generate(12, 3, &AnalyticCost::paper_default());
        let skew = &g.program.steps()[0].comm;
        // Processor (0,0) skews both tiles onto itself.
        let p00_self = skew
            .messages()
            .iter()
            .filter(|m| m.src == 0 && m.is_self_message())
            .count();
        assert_eq!(p00_self, 2);
    }

    #[test]
    fn comm_steps_validate_under_standard_sim() {
        let g = generate(12, 3, &AnalyticCost::paper_default());
        let cfg = SimConfig::new(presets::meiko_cs2(9));
        for step in g.program.steps() {
            if step.comm.is_empty() {
                continue;
            }
            let r = standard::simulate(&step.comm, &cfg);
            commsim::validate::validate(&step.comm, &cfg, &r.timeline).unwrap();
            let w = worstcase::simulate(&step.comm, &cfg);
            assert!(w.finish >= loggp::Time::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_grid() {
        let _ = generate(10, 3, &AnalyticCost::paper_default());
    }
}
