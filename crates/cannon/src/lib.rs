//! Cannon's matrix-multiplication algorithm — the second application of
//! the paper's restricted program class ("Cannon's algorithm for matrix
//! multiplication or the parallel Gaussian Elimination algorithm … are
//! representative algorithms for this class").
//!
//! On a `q × q` processor grid each processor owns one `m × m` block of
//! `A`, `B` and `C` (`m = n/q`). After skewing (`A` row `i` rotated left by
//! `i`, `B` column `j` rotated up by `j`), the algorithm performs `q`
//! rounds of *multiply-accumulate, rotate `A` left, rotate `B` up*. Every
//! communication step is a ring shift — a **cyclic** pattern, which makes
//! Cannon the natural stress test for the worst-case algorithm's deadlock
//! breaking.
//!
//! [`trace::generate`] emits the oblivious program for the predictor;
//! [`exec::multiply`] executes the real algorithm on block matrices and is
//! verified against the plain product.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod trace;

pub use exec::multiply;
pub use trace::{generate, CannonProgram};
