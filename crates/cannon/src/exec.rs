//! Real execution of Cannon's algorithm over an explicit block grid.
//!
//! Single address space, but the data movement is exactly the algorithm's:
//! blocks are skewed, multiplied and rotated between grid positions. The
//! test suite checks the result against the plain matrix product, which
//! validates that the *trace generator's* communication structure (the
//! same shifts) computes the right thing.

use blockops::gemm::gemm_acc;
use blockops::Matrix;

/// Multiply `a · b` with Cannon's algorithm on a `q × q` virtual grid.
///
/// # Panics
/// Panics if the matrices are not square, not equal-sized, or `q` does not
/// divide their dimension.
// Grid indices are also rotation amounts and block coordinates.
#[allow(clippy::needless_range_loop)]
pub fn multiply(a: &Matrix, b: &Matrix, q: usize) -> Matrix {
    assert!(a.is_square() && b.is_square(), "square matrices only");
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    let n = a.rows();
    assert!(
        q > 0 && n.is_multiple_of(q),
        "grid side {q} must divide the matrix size {n}"
    );
    let m = n / q;

    // Deal blocks onto the grid.
    let mut ga: Vec<Vec<Matrix>> = (0..q)
        .map(|i| (0..q).map(|j| a.block(i * m, j * m, m, m)).collect())
        .collect();
    let mut gb: Vec<Vec<Matrix>> = (0..q)
        .map(|i| (0..q).map(|j| b.block(i * m, j * m, m, m)).collect())
        .collect();
    let mut gc: Vec<Vec<Matrix>> = (0..q)
        .map(|_| (0..q).map(|_| Matrix::zeros(m, m)).collect())
        .collect();

    // Skew: A row i left by i; B column j up by j.
    for i in 0..q {
        ga[i].rotate_left(i);
    }
    for j in 0..q {
        let col: Vec<Matrix> = (0..q).map(|i| gb[(i + j) % q][j].clone()).collect();
        for (i, blk) in col.into_iter().enumerate() {
            gb[i][j] = blk;
        }
    }

    // q rounds of multiply-accumulate + rotate.
    for round in 0..q {
        for i in 0..q {
            for j in 0..q {
                gemm_acc(&mut gc[i][j], &ga[i][j], &gb[i][j]);
            }
        }
        if round + 1 < q {
            for i in 0..q {
                ga[i].rotate_left(1);
            }
            gb.rotate_left(1);
        }
    }

    // Reassemble C.
    let mut c = Matrix::zeros(n, n);
    for i in 0..q {
        for j in 0..q {
            c.set_block(i * m, j * m, &gc[i][j]);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockops::gemm::matmul;

    fn check(n: usize, q: usize, seed: u64) {
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let got = multiply(&a, &b, q);
        let want = matmul(&a, &b);
        assert!(
            got.approx_eq(&want, 1e-9 * n as f64),
            "n={n} q={q} diff={}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn matches_reference_various_grids() {
        check(6, 1, 1);
        check(6, 2, 2);
        check(6, 3, 3);
        check(6, 6, 4);
        check(12, 4, 5);
        check(20, 5, 6);
    }

    #[test]
    fn identity_times_identity() {
        let id = Matrix::identity(8);
        let got = multiply(&id, &id, 4);
        assert!(got.approx_eq(&id, 1e-12));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_grid() {
        let a = Matrix::zeros(10, 10);
        let _ = multiply(&a, &a, 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_mismatched() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(6, 6);
        let _ = multiply(&a, &b, 2);
    }
}
