//! Property-based tests for Cannon's algorithm and its trace.

use blockops::gemm::matmul;
use blockops::{AnalyticCost, Matrix};
use commsim::SimConfig;
use loggp::presets;
use predsim_core::{simulate_program, SimOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cannon multiplication equals the plain product for every grid that
    /// divides the matrix.
    #[test]
    fn cannon_equals_reference(q in 1usize..6, m in 1usize..5, seed in any::<u64>()) {
        let n = q * m;
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed.wrapping_add(1));
        let got = cannon::multiply(&a, &b, q);
        let want = matmul(&a, &b);
        prop_assert!(got.approx_eq(&want, 1e-8 * n as f64));
    }

    /// Trace invariants: q rounds after the skew, all network messages are
    /// whole tiles, total per-round sends are 2 per processor except the
    /// last round.
    #[test]
    fn trace_structure(q in 1usize..6, m in 1usize..5) {
        let n = q * m;
        let g = cannon::generate(n, q, &AnalyticCost::paper_default());
        prop_assert_eq!(g.program.len(), 1 + q);
        let tile = 8 * m * m;
        for s in g.program.steps() {
            for msg in s.comm.messages() {
                prop_assert_eq!(msg.bytes, tile);
            }
        }
        prop_assert!(g.program.steps().last().unwrap().comm.is_empty());
    }

    /// Parallel grids beat the single processor, and the speedup never
    /// exceeds the processor count (no superlinear prediction). Strict
    /// monotonicity in q does NOT hold — per-round fixed costs and shifts
    /// produce genuine granularity crossovers at small n (proptest found
    /// q=4 slower than q=3 at n=24), exactly the effect the paper's
    /// block-size sweeps are about.
    #[test]
    fn speedup_bounded_by_grid(mbase in 2usize..5) {
        let n = 12 * mbase; // divisible by 1..4 grids
        let cost = AnalyticCost::paper_default();
        let t1 = {
            let g = cannon::generate(n, 1, &cost);
            let cfg = SimConfig::new(presets::meiko_cs2(1));
            simulate_program(&g.program, &SimOptions::new(cfg)).total
        };
        for q in [2usize, 3, 4] {
            let g = cannon::generate(n, q, &cost);
            let cfg = SimConfig::new(presets::meiko_cs2(q * q));
            let t = simulate_program(&g.program, &SimOptions::new(cfg)).total;
            prop_assert!(t < t1, "q={q}: {t} >= sequential {t1}");
            let speedup = t1.as_secs_f64() / t.as_secs_f64();
            prop_assert!(speedup <= (q * q) as f64 + 1e-9, "superlinear: {speedup}");
        }
    }
}
