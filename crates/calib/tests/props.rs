//! Property and regression tests for the calibration loop.

use commsim::{CommPattern, SimConfig};
use loggp::{presets, LogGpParams, Time};
use machine::EmulatorConfig;
use predsim_calib::{
    calibrate, measure, step_walls, FitConfig, MeasureConfig, MeasuredRun, MeasuredSet,
};
use predsim_core::{simulate_program, Program, SimOptions, Step};
use predsim_engine::{Engine, EngineConfig};
use predsim_faults::{FaultPlan, FaultSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// The identifiability probe (see the unit tests in `predsim-calib`):
/// point-to-point, a delayed handoff (splits o from L via the
/// receives-before-sends rule), a gap-bound burst, and large messages.
fn probe_program(procs: usize) -> Program {
    assert!(procs >= 4);
    let mut prog = Program::new(procs);
    let comp = vec![Time::from_us(3.0); procs];

    let mut pp = CommPattern::new(procs);
    pp.add(0, 1, 1024);
    pp.add(2, 3, 64);
    prog.push(Step::new("pp").with_comp(comp.clone()).with_comm(pp));

    let mut handoff_comp = vec![Time::from_us(1.0); procs];
    handoff_comp[1] = Time::from_us(40.0);
    let mut handoff = CommPattern::new(procs);
    handoff.add(0, 1, 64);
    handoff.add(1, 2, 64);
    prog.push(
        Step::new("handoff")
            .with_comp(handoff_comp)
            .with_comm(handoff),
    );

    let mut burst = CommPattern::new(procs);
    for _round in 0..2 {
        for d in 1..procs {
            burst.add(0, d, 64);
        }
    }
    prog.push(Step::new("burst").with_comp(comp.clone()).with_comm(burst));

    let mut big = CommPattern::new(procs);
    big.add(0, 1, 64 * 1024);
    big.add(2, 3, 48 * 1024);
    prog.push(Step::new("big").with_comp(comp).with_comm(big));

    prog
}

fn synthetic_set(prog: &Program, truth: LogGpParams, runs: usize) -> MeasuredSet {
    let pred = simulate_program(prog, &SimOptions::new(SimConfig::new(truth)));
    let walls = step_walls(&pred);
    MeasuredSet {
        source: "probe".into(),
        machine: "truth".into(),
        procs: prog.procs(),
        runs: (0..runs)
            .map(|i| MeasuredRun {
                seed: i as u64,
                total: pred.total,
                steps: walls.clone(),
            })
            .collect(),
    }
}

/// Truth parameters the probe can identify: the handoff step needs the
/// incoming message to land before the delayed processor's 40µs of
/// computation ends (`1µs + o + 63G + L < 40µs` — comfortably true for
/// these ranges), and g stays well above o so the burst is gap-bound.
fn arb_truth() -> impl Strategy<Value = LogGpParams> {
    (
        2_000_000u64..15_000_000, // L: 2–15µs
        500_000u64..6_000_000,    // o: 0.5–6µs
        130u64..400,              // g = o × factor/100: 1.3×–4× o
        5_000u64..100_000,        // G: 0.005–0.1µs per byte
    )
        .prop_map(|(l_ps, o_ps, factor_pct, g_per_byte_ps)| {
            presets::meiko_cs2(4)
                .with_latency(Time::from_ps(l_ps))
                .with_overhead(Time::from_ps(o_ps))
                .with_gap(Time::from_ps(o_ps * factor_pct / 100))
                .with_gap_per_byte(Time::from_ps(g_per_byte_ps))
        })
}

fn within_5_pct(fitted: Time, truth: Time) -> bool {
    let (f, t) = (fitted.as_ps() as i128, truth.as_ps() as i128);
    (f - t).abs() * 20 <= t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zero-noise calibration is exact: fitting against the predictor's
    /// own walls recovers every parameter within 5% and restores the
    /// bracket on every held-out run.
    #[test]
    fn zero_noise_fit_recovers_all_parameters(truth in arb_truth()) {
        let prog = Arc::new(probe_program(4));
        let set = synthetic_set(&prog, truth, 3);
        let engine = Engine::new(EngineConfig::default().with_jobs(1));
        let mut cfg = FitConfig::new(presets::meiko_cs2(4));
        cfg.holdout = 1;
        let report = calibrate(&prog, &set, &engine, &cfg).unwrap();
        prop_assert!(report.converged, "did not converge: {report:?}");
        prop_assert!(
            within_5_pct(report.params.latency, truth.latency),
            "L: fitted {} vs truth {}", report.params.latency, truth.latency
        );
        prop_assert!(
            within_5_pct(report.params.overhead, truth.overhead),
            "o: fitted {} vs truth {}", report.params.overhead, truth.overhead
        );
        prop_assert!(
            within_5_pct(report.params.gap, truth.gap),
            "g: fitted {} vs truth {}", report.params.gap, truth.gap
        );
        prop_assert!(
            within_5_pct(report.params.gap_per_byte, truth.gap_per_byte),
            "G: fitted {} vs truth {}", report.params.gap_per_byte, truth.gap_per_byte
        );
        prop_assert_eq!(report.bracket.hit_permille(), 1000);
    }
}

/// Calibrating against a machine that drops 10% of transmissions must
/// still converge — with an honestly degraded fit (retransmission delays
/// are outside the LogGP model), not a crash.
#[test]
fn faulted_calibration_converges_with_degraded_rmse() {
    let prog = probe_program(4);
    let engine = Engine::new(EngineConfig::default().with_jobs(1));
    let ecfg = EmulatorConfig::meiko_like(SimConfig::new(presets::meiko_cs2(4)));

    let clean = measure(
        &prog,
        &[],
        "probe",
        "meiko-like",
        &MeasureConfig {
            ecfg: ecfg.clone(),
            base_seed: 7,
            runs: 4,
            faults: None,
        },
    );
    let spec = FaultSpec::parse("drop:0.1").unwrap();
    let faulted = measure(
        &prog,
        &[],
        "probe",
        "meiko-like",
        &MeasureConfig {
            ecfg,
            base_seed: 7,
            runs: 4,
            faults: Some(FaultPlan::new(spec, 7)),
        },
    );

    let prog = Arc::new(prog);
    let cfg = FitConfig::new(presets::meiko_cs2(4));
    let clean_fit = calibrate(&prog, &clean, &engine, &cfg).unwrap();
    let faulted_fit = calibrate(&prog, &faulted, &engine, &cfg).unwrap();

    assert!(clean_fit.converged);
    assert!(
        faulted_fit.converged,
        "faulted fit must converge, not crash"
    );
    assert!(faulted_fit.rmse > Time::ZERO);
    assert!(
        faulted_fit.rmse >= clean_fit.rmse,
        "dropping 10% of messages should not improve the fit: faulted {} vs clean {}",
        faulted_fit.rmse,
        clean_fit.rmse
    );
}
