//! Closed-loop LogGP calibration: measured runs → fitted presets →
//! bracketing report.
//!
//! The paper's central loop compares *measured* running times against
//! simulator predictions under a LogGP machine model. This crate closes
//! that loop for the workspace: given per-step wall times measured on
//! the [`machine`] emulator (live, or recorded to a JSONL file), it
//! fits the four LogGP parameters by deterministic least-squares search
//! *over the simulator itself*, and scores the fit by the paper's own
//! criterion — the standard algorithm should under-approximate and the
//! worst-case algorithm over-approximate what the machine measures.
//!
//! * [`measure`] — collecting runs from the emulator and the strict
//!   JSONL measured-file format;
//! * [`fit`] — the objective (asymmetric least squares against the
//!   per-step measured floor) and the coordinate-descent /
//!   golden-section search, memoized through the engine;
//! * [`bracket`] — the `standard ≤ measured ≤ worst-case` hit rate on
//!   held-out runs;
//! * [`export_metrics`] — publishing a fit into a
//!   [`predsim_obs::Registry`] (`calib_*` series, visible at the serve
//!   layer's `/metrics`).
//!
//! Fitted parameters persist as named presets through
//! [`loggp::registry`], so anything that accepts `--machine` can run
//! against a calibrated machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bracket;
pub mod fit;
pub mod measure;

pub use bracket::{bracket, BracketReport};
pub use fit::{calibrate, rmse_against, FitConfig, FitReport};
pub use measure::{measure, step_walls, MeasureConfig, MeasuredRun, MeasuredSet};

use predsim_obs::Registry;

/// Publish a fit report's quality numbers into `registry` as the
/// `calib_*` metric family (gauges reflect the most recent fit;
/// counters accumulate across fits).
pub fn export_metrics(registry: &Registry, report: &FitReport) {
    registry
        .gauge("calib_fit_rmse_ps", "step-wall RMSE of the latest fit")
        .set(report.rmse.as_ps());
    registry
        .gauge(
            "calib_fit_objective_ps",
            "final search objective of the latest fit",
        )
        .set(report.objective.as_ps());
    registry
        .gauge(
            "calib_bracket_hit_permille",
            "held-out std<=measured<=wc hit rate of the latest fit, permille",
        )
        .set(report.bracket.hit_permille());
    registry
        .gauge(
            "calib_fit_converged",
            "1 when the latest fit converged, else 0",
        )
        .set(u64::from(report.converged));
    registry
        .gauge("calib_fit_rounds", "descent rounds of the latest fit")
        .set(report.rounds as u64);
    registry
        .counter("calib_fits_total", "calibrations performed")
        .inc();
    registry
        .counter(
            "calib_fit_evaluations_total",
            "objective evaluations across all fits",
        )
        .add(report.evaluations);
    registry
        .counter(
            "calib_bracket_hits_total",
            "held-out runs inside the bracket, across all fits",
        )
        .add(report.bracket.hits as u64);
    registry
        .counter(
            "calib_bracket_checks_total",
            "held-out runs checked, across all fits",
        )
        .add(report.bracket.total as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{CommPattern, SimConfig};
    use loggp::{presets, LogGpParams, Time};
    use predsim_core::{simulate_program, Program, SimOptions, Step};
    use predsim_engine::{Engine, EngineConfig};
    use std::sync::Arc;

    /// A probe program that makes all four parameters identifiable.
    /// Within a step sends never wait for data, so plain patterns only
    /// expose the lumped combinations `2o + L + kG` (point-to-point) and
    /// `o + (n−1)g` (bursts) — rank-deficient in (L, o, g). The
    /// "handoff" step breaks the degeneracy through the
    /// receives-before-sends rule: a long computation delays the middle
    /// processor past an incoming arrival, so it receives first and
    /// sends one *gap* later, making the far wall `g + 2o + L + kG` and
    /// the system full-rank.
    fn probe_program(procs: usize) -> Program {
        assert!(procs >= 4);
        let mut prog = Program::new(procs);
        let comp = vec![Time::from_us(3.0); procs];

        let mut pp = CommPattern::new(procs);
        pp.add(0, 1, 1024);
        pp.add(2, 3, 64);
        prog.push(Step::new("pp").with_comp(comp.clone()).with_comm(pp));

        let mut handoff_comp = vec![Time::from_us(1.0); procs];
        handoff_comp[1] = Time::from_us(40.0);
        let mut handoff = CommPattern::new(procs);
        handoff.add(0, 1, 64);
        handoff.add(1, 2, 64);
        prog.push(
            Step::new("handoff")
                .with_comp(handoff_comp)
                .with_comm(handoff),
        );

        let mut burst = CommPattern::new(procs);
        for _round in 0..2 {
            for d in 1..procs {
                burst.add(0, d, 64);
            }
        }
        prog.push(Step::new("burst").with_comp(comp.clone()).with_comm(burst));

        let mut big = CommPattern::new(procs);
        big.add(0, 1, 64 * 1024);
        big.add(2, 3, 48 * 1024);
        prog.push(Step::new("big").with_comp(comp).with_comm(big));

        prog
    }

    /// Zero-noise measured set: the predictor itself under `truth`.
    fn synthetic_set(prog: &Program, truth: LogGpParams, runs: usize) -> MeasuredSet {
        let pred = simulate_program(prog, &SimOptions::new(SimConfig::new(truth)));
        let walls = step_walls(&pred);
        MeasuredSet {
            source: "probe".into(),
            machine: "truth".into(),
            procs: prog.procs(),
            runs: (0..runs)
                .map(|i| MeasuredRun {
                    seed: i as u64,
                    total: pred.total,
                    steps: walls.clone(),
                })
                .collect(),
        }
    }

    #[test]
    fn zero_noise_fit_reaches_zero_objective_and_full_bracket() {
        let prog = Arc::new(probe_program(4));
        let truth = LogGpParams::from_us(7.0, 3.0, 11.0, 0.025, 4);
        let set = synthetic_set(&prog, truth, 3);
        let engine = Engine::new(EngineConfig::default().with_jobs(1));
        let mut cfg = FitConfig::new(presets::meiko_cs2(4));
        cfg.holdout = 1;
        let report = calibrate(&prog, &set, &engine, &cfg).unwrap();
        assert!(report.converged, "zero-noise fit must converge");
        assert!(
            report.objective <= Time::from_ns(100),
            "objective should be ~0, got {}",
            report.objective
        );
        assert_eq!(report.bracket.hits, report.bracket.total);
        assert_eq!(report.bracket.hit_permille(), 1000);
        assert!(report.train_runs == 2 && report.holdout_runs == 1);
        assert!(report.unique_evaluations <= report.evaluations);
    }

    #[test]
    fn max_rounds_zero_reports_non_convergence() {
        let prog = Arc::new(probe_program(4));
        let truth = LogGpParams::from_us(7.0, 3.0, 11.0, 0.025, 4);
        let set = synthetic_set(&prog, truth, 2);
        let engine = Engine::new(EngineConfig::default().with_jobs(1));
        let mut cfg = FitConfig::new(presets::meiko_cs2(4));
        cfg.max_rounds = 0;
        let report = calibrate(&prog, &set, &engine, &cfg).unwrap();
        assert!(!report.converged);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let prog = Arc::new(probe_program(4));
        let truth = LogGpParams::from_us(7.0, 3.0, 11.0, 0.025, 4);
        let engine = Engine::new(EngineConfig::default().with_jobs(1));
        let cfg = FitConfig::new(presets::meiko_cs2(4));

        let mut wrong_steps = synthetic_set(&prog, truth, 2);
        wrong_steps.runs[0].steps.pop();
        assert!(calibrate(&prog, &wrong_steps, &engine, &cfg).is_err());

        let mut wrong_procs = synthetic_set(&prog, truth, 2);
        wrong_procs.procs = 8;
        assert!(calibrate(&prog, &wrong_procs, &engine, &cfg).is_err());

        let mut too_much_holdout = cfg.clone();
        too_much_holdout.holdout = 2;
        let set = synthetic_set(&prog, truth, 2);
        assert!(calibrate(&prog, &set, &engine, &too_much_holdout).is_err());
    }

    #[test]
    fn metrics_export_publishes_the_calib_family() {
        let prog = Arc::new(probe_program(4));
        let truth = LogGpParams::from_us(7.0, 3.0, 11.0, 0.025, 4);
        let set = synthetic_set(&prog, truth, 2);
        let engine = Engine::new(EngineConfig::default().with_jobs(1));
        let mut cfg = FitConfig::new(presets::meiko_cs2(4));
        cfg.max_rounds = 2;
        let report = calibrate(&prog, &set, &engine, &cfg).unwrap();
        let registry = Registry::new();
        export_metrics(&registry, &report);
        export_metrics(&registry, &report);
        let snap = registry.snapshot();
        assert_eq!(snap.scalar("calib_fits_total", &[]), Some(2));
        assert_eq!(
            snap.scalar("calib_fit_rmse_ps", &[]),
            Some(report.rmse.as_ps())
        );
        assert_eq!(
            snap.scalar("calib_bracket_hit_permille", &[]),
            Some(report.bracket.hit_permille())
        );
        let prom = snap.to_prometheus();
        assert!(prom.contains("calib_fit_rmse_ps"), "{prom}");
    }
}
