//! Measured-run collection and the recorded-measurement file format.
//!
//! A [`MeasuredSet`] is what calibration consumes: per-run, per-step
//! wall times of a program on some machine — produced live by the
//! [`machine`] emulator ([`measure`]) or parsed back from a recorded
//! JSONL file (`predsim emulate --measure-out`).
//!
//! The file format is strict flat JSONL in the workspace wire format
//! ([`predsim_lint::json`]: integers only, unknown fields rejected). The
//! first line is a header carrying the source spec and shape; every
//! further line is one run:
//!
//! ```text
//! {"kind":"predsim-measured","version":1,"source":"ge:960,32,diagonal,8","machine":"meiko","procs":8,"steps":57}
//! {"seed":1,"total_ps":2411125577000,"steps_ps":[40000000,...]}
//! ```

use loggp::Time;
use machine::{emulate_faulted, EmulatorConfig};
use predsim_core::{Prediction, Program, StepLoad};
use predsim_faults::FaultPlan;
use predsim_lint::json::{self, Value};

/// The measured-file header kind tag.
pub const MEASURED_KIND: &str = "predsim-measured";
/// Current measured-file schema version.
pub const MEASURED_VERSION: i64 = 1;

/// One emulated (or recorded) run of the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeasuredRun {
    /// The emulator seed that produced the run.
    pub seed: u64,
    /// Measured total running time.
    pub total: Time,
    /// Measured wall time of each program step (`comm_end − start`).
    pub steps: Vec<Time>,
}

/// A set of measured runs of one program on one machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeasuredSet {
    /// The program source spec the runs came from (e.g.
    /// `ge:960,32,diagonal,8`); recorded so a measured file is
    /// self-contained.
    pub source: String,
    /// Label of the machine model the emulator ran (informational).
    pub machine: String,
    /// Processor count of the program.
    pub procs: usize,
    /// The runs, in collection order.
    pub runs: Vec<MeasuredRun>,
}

/// Per-step wall times of a prediction (`comm_end − start` per step).
pub fn step_walls(pred: &Prediction) -> Vec<Time> {
    pred.steps.iter().map(|s| s.comm_end - s.start).collect()
}

/// How [`measure`] drives the emulator.
#[derive(Clone, Debug)]
pub struct MeasureConfig {
    /// The emulated machine; its seed is overridden per run.
    pub ecfg: EmulatorConfig,
    /// Seed of the first run; run `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Number of runs to collect (must be ≥ 1).
    pub runs: usize,
    /// Faults injected into the emulated hardware, if any (the same plan
    /// for every run — the per-run variation comes from the jitter seed).
    pub faults: Option<FaultPlan>,
}

/// Emulate `prog` `cfg.runs` times under consecutive seeds and collect
/// the measured wall times.
pub fn measure(
    prog: &Program,
    loads: &[StepLoad],
    source: &str,
    machine_label: &str,
    cfg: &MeasureConfig,
) -> MeasuredSet {
    assert!(cfg.runs >= 1, "need at least one run");
    let mut runs = Vec::with_capacity(cfg.runs);
    for i in 0..cfg.runs {
        let seed = cfg.base_seed + i as u64;
        let mut ecfg = cfg.ecfg.clone();
        ecfg.cfg = ecfg.cfg.with_seed(seed);
        let m = emulate_faulted(prog, loads, &ecfg, cfg.faults.as_ref());
        runs.push(MeasuredRun {
            seed,
            total: m.prediction.total,
            steps: step_walls(&m.prediction),
        });
    }
    MeasuredSet {
        source: source.to_string(),
        machine: machine_label.to_string(),
        procs: prog.procs(),
        runs,
    }
}

fn time_int(t: Time) -> Result<Value, String> {
    i64::try_from(t.as_ps())
        .map(Value::Int)
        .map_err(|_| format!("time {t} exceeds the wire format's integer range"))
}

impl MeasuredSet {
    /// The common step count of the runs (they must agree).
    pub fn step_count(&self) -> Result<usize, String> {
        let first = self
            .runs
            .first()
            .ok_or_else(|| "measured set has no runs".to_string())?;
        for r in &self.runs {
            if r.steps.len() != first.steps.len() {
                return Err(format!(
                    "inconsistent step counts across runs: {} vs {}",
                    r.steps.len(),
                    first.steps.len()
                ));
            }
        }
        Ok(first.steps.len())
    }

    /// Render as strict JSONL (header line + one line per run).
    pub fn to_jsonl(&self) -> Result<String, String> {
        let steps = self.step_count()?;
        let header = Value::Object(vec![
            ("kind".into(), Value::Str(MEASURED_KIND.into())),
            ("version".into(), Value::Int(MEASURED_VERSION)),
            ("source".into(), Value::Str(self.source.clone())),
            ("machine".into(), Value::Str(self.machine.clone())),
            ("procs".into(), Value::Int(self.procs as i64)),
            ("steps".into(), Value::Int(steps as i64)),
        ]);
        let mut out = header.to_compact();
        out.push('\n');
        for r in &self.runs {
            let walls: Result<Vec<Value>, String> = r.steps.iter().map(|&w| time_int(w)).collect();
            let line = Value::Object(vec![
                (
                    "seed".into(),
                    Value::Int(i64::try_from(r.seed).map_err(|_| "seed exceeds i64".to_string())?),
                ),
                ("total_ps".into(), time_int(r.total)?),
                ("steps_ps".into(), Value::Array(walls?)),
            ]);
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        Ok(out)
    }

    /// Parse a recorded measured file. Strict: the header must come
    /// first, every field is checked, unknown fields are rejected, and
    /// every run line must match the header's step count.
    pub fn parse_jsonl(text: &str) -> Result<MeasuredSet, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header_line) = lines
            .next()
            .ok_or_else(|| "empty measured file".to_string())?;
        let header = json::parse(header_line).map_err(|e| format!("header: {e}"))?;
        check_fields(
            &header,
            &["kind", "version", "source", "machine", "procs", "steps"],
            "header",
        )?;
        let kind = header
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| "header: missing 'kind'".to_string())?;
        if kind != MEASURED_KIND {
            return Err(format!("header: kind '{kind}' is not '{MEASURED_KIND}'"));
        }
        let version = int_field(&header, "version", "header")?;
        if version != MEASURED_VERSION {
            return Err(format!(
                "header: unsupported version {version} (expected {MEASURED_VERSION})"
            ));
        }
        let source = str_field(&header, "source", "header")?;
        let machine = str_field(&header, "machine", "header")?;
        let procs = usize_field(&header, "procs", "header")?;
        let steps = usize_field(&header, "steps", "header")?;
        if procs == 0 {
            return Err("header: procs must be at least 1".into());
        }

        let mut runs = Vec::new();
        for (lineno, line) in lines {
            let where_ = format!("line {}", lineno + 1);
            let v = json::parse(line).map_err(|e| format!("{where_}: {e}"))?;
            check_fields(&v, &["seed", "total_ps", "steps_ps"], &where_)?;
            let seed = int_field(&v, "seed", &where_)?;
            let seed =
                u64::try_from(seed).map_err(|_| format!("{where_}: seed must be unsigned"))?;
            let total = time_field(&v, "total_ps", &where_)?;
            let walls = v
                .get("steps_ps")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("{where_}: 'steps_ps' must be an array"))?;
            if walls.len() != steps {
                return Err(format!(
                    "{where_}: {} step walls, header says {steps}",
                    walls.len()
                ));
            }
            let steps_t: Result<Vec<Time>, String> = walls
                .iter()
                .map(|w| {
                    w.as_int()
                        .and_then(|n| u64::try_from(n).ok())
                        .map(Time::from_ps)
                        .ok_or_else(|| format!("{where_}: step walls must be unsigned integers"))
                })
                .collect();
            runs.push(MeasuredRun {
                seed,
                total,
                steps: steps_t?,
            });
        }
        if runs.is_empty() {
            return Err("measured file has a header but no runs".into());
        }
        Ok(MeasuredSet {
            source,
            machine,
            procs,
            runs,
        })
    }

    /// Whether `text` starts with a measured-file header (used by the
    /// CLI to tell a recorded file from a trace file).
    pub fn sniff(text: &str) -> bool {
        text.lines()
            .find(|l| !l.trim().is_empty())
            .and_then(|l| json::parse(l).ok())
            .and_then(|v| v.get("kind").and_then(Value::as_str).map(String::from))
            .is_some_and(|k| k == MEASURED_KIND)
    }
}

fn check_fields(v: &Value, allowed: &[&str], where_: &str) -> Result<(), String> {
    let Value::Object(fields) = v else {
        return Err(format!("{where_}: expected an object"));
    };
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("{where_}: unknown field '{k}'"));
        }
    }
    Ok(())
}

fn str_field(v: &Value, key: &str, where_: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(String::from)
        .ok_or_else(|| format!("{where_}: missing string field '{key}'"))
}

fn int_field(v: &Value, key: &str, where_: &str) -> Result<i64, String> {
    v.get(key)
        .and_then(Value::as_int)
        .ok_or_else(|| format!("{where_}: missing integer field '{key}'"))
}

fn usize_field(v: &Value, key: &str, where_: &str) -> Result<usize, String> {
    usize::try_from(int_field(v, key, where_)?)
        .map_err(|_| format!("{where_}: field '{key}' out of range"))
}

fn time_field(v: &Value, key: &str, where_: &str) -> Result<Time, String> {
    let n = int_field(v, key, where_)?;
    u64::try_from(n)
        .map(Time::from_ps)
        .map_err(|_| format!("{where_}: field '{key}' must be unsigned"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{CommPattern, SimConfig};
    use loggp::presets;
    use predsim_core::Step;

    fn ring(procs: usize, steps: usize) -> Program {
        let mut prog = Program::new(procs);
        for s in 0..steps {
            let mut c = CommPattern::new(procs);
            for p in 0..procs {
                c.add(p, (p + 1) % procs, 512);
            }
            prog.push(
                Step::new(format!("ring-{s}"))
                    .with_comp(vec![Time::from_us(5.0); procs])
                    .with_comm(c),
            );
        }
        prog
    }

    fn collect(runs: usize) -> MeasuredSet {
        let prog = ring(4, 3);
        let cfg = MeasureConfig {
            ecfg: EmulatorConfig::meiko_like(SimConfig::new(presets::meiko_cs2(4))),
            base_seed: 7,
            runs,
            faults: None,
        };
        measure(&prog, &[], "ring-test", "meiko", &cfg)
    }

    #[test]
    fn measured_runs_vary_by_seed_and_round_trip() {
        let set = collect(4);
        assert_eq!(set.runs.len(), 4);
        assert_eq!(set.step_count().unwrap(), 3);
        assert_eq!(set.runs[0].seed, 7);
        assert!(
            set.runs.iter().any(|r| r.total != set.runs[0].total),
            "jitter should vary totals across seeds"
        );
        let text = set.to_jsonl().unwrap();
        assert!(MeasuredSet::sniff(&text));
        let back = MeasuredSet::parse_jsonl(&text).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn parser_rejects_malformed_measured_files() {
        let good = collect(2).to_jsonl().unwrap();
        let mut lines: Vec<&str> = good.lines().collect();
        // Header only — no runs.
        assert!(MeasuredSet::parse_jsonl(lines[0]).is_err());
        // A run line with a wrong wall count.
        let bad_run = r#"{"seed":1,"total_ps":10,"steps_ps":[1,2]}"#;
        let bad = format!("{}\n{}\n", lines[0], bad_run);
        assert!(MeasuredSet::parse_jsonl(&bad).is_err());
        // Unknown fields are rejected.
        let extra = r#"{"seed":1,"total_ps":10,"steps_ps":[1,2,3],"note":"x"}"#;
        let bad = format!("{}\n{}\n", lines[0], extra);
        assert!(MeasuredSet::parse_jsonl(&bad).is_err());
        // A float anywhere is rejected by the wire parser.
        let float = good.replace("\"total_ps\":", "\"total_ps\":0.5,\"x\":");
        assert!(MeasuredSet::parse_jsonl(&float).is_err());
        // Swapping the header away breaks sniffing and parsing.
        lines.rotate_left(1);
        let rotated = lines.join("\n");
        assert!(!MeasuredSet::sniff(&rotated));
        assert!(MeasuredSet::parse_jsonl(&rotated).is_err());
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let a = collect(3);
        let b = collect(3);
        assert_eq!(a, b);
    }
}
