//! Fitting LogGP parameters to measured step walls.
//!
//! The objective is least-squares *over the simulator itself*: a
//! candidate (L, o, g, G) is scored by running the standard-algorithm
//! predictor on the program and comparing its per-step wall times
//! against the measured floor — the per-step **minimum** across the
//! training runs. The floor is the right target because every effect
//! the emulator adds on top of pure LogGP (jitter, contention, cache
//! misses, loop overhead, local copies) only *adds* time: the fitted
//! standard prediction should sit just below what the machine ever
//! achieves, leaving the worst-case algorithm's margin to cover the
//! top of the bracket. Overshooting the floor is penalized harder than
//! undershooting ([`FitConfig::overshoot_weight`]) so the fit lands
//! below it, keeping `standard ≤ measured` on held-out runs.
//!
//! The search is deterministic coordinate descent: for each parameter
//! in turn, a coarse grid scan brackets the minimum and a
//! golden-section refinement pins it down, all in integer picoseconds.
//! A fifth "diagonal" coordinate searches along the `2o + L = const`
//! direction — the classic LogGP degeneracy (a one-hop message costs
//! `2o + L + (k−1)G`, so simple patterns cannot split `o` from `L`;
//! relays and gap-bound bursts can, but the valley is narrow and plain
//! per-axis descent stalls in it). Candidate points are evaluated
//! through the engine (sharing its step-pattern memo cache) and
//! memoized per parameter point, so revisited sweep points are free.

use crate::bracket::{bracket, BracketReport};
use crate::measure::{step_walls, MeasuredRun, MeasuredSet};
use commsim::SimConfig;
use loggp::{LogGpParams, Time};
use predsim_core::{Program, SimOptions};
use predsim_engine::{Engine, JobSource, JobSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// How [`calibrate`] searches.
#[derive(Clone, Debug)]
pub struct FitConfig {
    /// Starting point of the descent (a built-in preset works well).
    pub initial: LogGpParams,
    /// Maximum coordinate-descent rounds. `0` forces a non-converged
    /// report (useful to exercise failure paths).
    pub max_rounds: usize,
    /// A round improving the objective by less than this (relative,
    /// permille) ends the descent as converged.
    pub min_gain_permille: u64,
    /// Runs held out of the fit (taken from the end of the set) and
    /// used for the bracketing report. `0` brackets the training runs.
    pub holdout: usize,
    /// Penalty multiplier for predicted walls *above* the measured
    /// floor (overshoot). `1` is symmetric least squares; larger values
    /// bias the fit below the floor.
    pub overshoot_weight: u32,
}

impl FitConfig {
    /// Defaults around a starting point: 12 rounds, 0.1% gain
    /// threshold, no holdout, overshoot weighted 3×.
    pub fn new(initial: LogGpParams) -> Self {
        FitConfig {
            initial,
            max_rounds: 12,
            min_gain_permille: 1,
            holdout: 0,
            overshoot_weight: 3,
        }
    }
}

/// What a calibration produced.
#[derive(Clone, Debug)]
pub struct FitReport {
    /// The fitted parameters.
    pub params: LogGpParams,
    /// Unweighted RMSE of the fitted standard prediction's step walls
    /// against *all* training runs (not the floor) — the headline
    /// fit-quality number.
    pub rmse: Time,
    /// Final value of the (asymmetric) search objective against the
    /// per-step floor.
    pub objective: Time,
    /// Whether the descent converged (gain below threshold or exact
    /// fit) before the round budget ran out.
    pub converged: bool,
    /// Rounds actually run.
    pub rounds: usize,
    /// Objective evaluations requested (including memoized repeats).
    pub evaluations: u64,
    /// Distinct parameter points simulated.
    pub unique_evaluations: u64,
    /// Bracketing quality on the held-out runs (`standard ≤ measured ≤
    /// worst-case` per run).
    pub bracket: BracketReport,
    /// Runs used for fitting.
    pub train_runs: usize,
    /// Runs held out for the bracket report.
    pub holdout_runs: usize,
}

struct Objective<'a> {
    program: &'a Arc<Program>,
    engine: &'a Engine,
    /// Per-step measured floor, picoseconds.
    target: Vec<f64>,
    overshoot_weight: f64,
    cache: HashMap<(u64, u64, u64, u64), f64>,
    evaluations: u64,
}

impl Objective<'_> {
    fn walls(&self, params: LogGpParams) -> Vec<Time> {
        let spec = JobSpec::new(
            "calib",
            JobSource::Program(Arc::clone(self.program)),
            SimOptions::new(SimConfig::new(params)),
        );
        step_walls(&self.engine.run_one(&spec))
    }

    fn eval(&mut self, params: LogGpParams) -> f64 {
        self.evaluations += 1;
        let key = (
            params.latency.as_ps(),
            params.overhead.as_ps(),
            params.gap.as_ps(),
            params.gap_per_byte.as_ps(),
        );
        if let Some(&v) = self.cache.get(&key) {
            return v;
        }
        let walls = self.walls(params);
        let mut acc = 0.0;
        for (w, &t) in walls.iter().zip(&self.target) {
            let mut r = w.as_ps() as f64 - t;
            if r > 0.0 {
                r *= self.overshoot_weight;
            }
            acc += r * r;
        }
        let v = (acc / self.target.len() as f64).sqrt();
        self.cache.insert(key, v);
        v
    }
}

/// Integer golden-section refinement of `f` on `[a, b]`, returning the
/// best point seen. Assumes the grid scan already bracketed a minimum.
fn golden(f: &mut impl FnMut(u64) -> f64, mut a: u64, mut b: u64) -> (u64, f64) {
    let mut best = (a, f(a));
    let fb = f(b);
    if fb < best.1 {
        best = (b, fb);
    }
    for _ in 0..16 {
        if b - a <= 1 {
            break;
        }
        let d = b - a;
        let x1 = a + d * 382 / 1000;
        let x2 = a + d * 618 / 1000;
        let f1 = f(x1);
        let f2 = f(x2);
        if f1 < best.1 {
            best = (x1, f1);
        }
        if f2 < best.1 {
            best = (x2, f2);
        }
        if f1 <= f2 {
            b = x2.max(a + 1);
        } else {
            a = x1.min(b - 1);
        }
    }
    best
}

/// Grid scan + golden refinement of one line `apply(x)` for `x ∈ [lo,
/// hi]`. `apply` returns `None` for points violating the model
/// constraints. Returns the best valid `(params, objective)`.
fn line_search(
    obj: &mut Objective<'_>,
    apply: &dyn Fn(u64) -> Option<LogGpParams>,
    lo: u64,
    hi: u64,
) -> Option<(LogGpParams, f64)> {
    if hi <= lo {
        return None;
    }
    fn score(obj: &mut Objective<'_>, apply: &dyn Fn(u64) -> Option<LogGpParams>, x: u64) -> f64 {
        match apply(x) {
            Some(p) => obj.eval(p),
            None => f64::INFINITY,
        }
    }
    const GRID: u64 = 12;
    let mut xs: Vec<u64> = (0..=GRID).map(|i| lo + (hi - lo) / GRID * i).collect();
    xs.push(hi);
    xs.dedup();
    let scores: Vec<f64> = xs.iter().map(|&x| score(obj, apply, x)).collect();
    let best_i = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)?;
    let a = xs[best_i.saturating_sub(1)];
    let b = xs[(best_i + 1).min(xs.len() - 1)];
    let mut g = |x: u64| score(obj, apply, x);
    let (gx, gv) = golden(&mut g, a, b);
    let (x, v) = if gv <= scores[best_i] {
        (gx, gv)
    } else {
        (xs[best_i], scores[best_i])
    };
    apply(x).map(|p| (p, v))
}

/// Solve the 4×4 system `a·x = b` by Gaussian elimination with partial
/// pivoting. `None` when singular.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> Option<[f64; 4]> {
    for col in 0..4 {
        let piv = (col..4).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[piv][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for row in col + 1..4 {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, pk) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= f * pk;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0; 4];
    for col in (0..4).rev() {
        let mut s = b[col];
        for k in col + 1..4 {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

/// One damped Gauss–Newton move. Step walls are piecewise *linear* in
/// (L, o, g, G), so within one linear piece a single weighted
/// least-squares solve jumps straight to the piece's optimum — the move
/// axis-aligned and pattern searches only crawl toward when the
/// parameters are coupled. The Jacobian comes from finite differences
/// (exact on a linear piece); Levenberg damping keeps the move safe
/// near the kinks.
fn newton_move(obj: &mut Objective<'_>, current: LogGpParams) -> Option<(LogGpParams, f64)> {
    let n = obj.target.len();
    let p0 = [
        current.latency.as_ps(),
        current.overhead.as_ps(),
        current.gap.as_ps(),
        current.gap_per_byte.as_ps(),
    ];
    let make = |v: [u64; 4]| -> LogGpParams {
        current
            .with_latency(Time::from_ps(v[0]))
            .with_overhead(Time::from_ps(v[1]))
            .with_gap(Time::from_ps(v[2]))
            .with_gap_per_byte(Time::from_ps(v[3]))
    };
    let base: Vec<f64> = obj
        .walls(current)
        .iter()
        .map(|w| w.as_ps() as f64)
        .collect();
    let weights: Vec<f64> = base
        .iter()
        .zip(&obj.target)
        .map(|(w, &t)| if *w > t { obj.overshoot_weight } else { 1.0 })
        .collect();

    let mut jac = vec![[0.0f64; 4]; n];
    let mut pinned = [false; 4];
    for i in 0..4 {
        let h = 10_000u64.max(p0[i] / 64);
        let mut forward = p0;
        forward[i] += h;
        let (pert, signed_h) = if make(forward).validate().is_ok() {
            (forward, h as f64)
        } else {
            let mut backward = p0;
            match p0[i].checked_sub(h) {
                Some(v)
                    if make({
                        backward[i] = v;
                        backward
                    })
                    .validate()
                    .is_ok() =>
                {
                    backward[i] = v;
                    (backward, -(h as f64))
                }
                _ => {
                    pinned[i] = true;
                    continue;
                }
            }
        };
        let walls = obj.walls(make(pert));
        for (s, w) in walls.iter().enumerate() {
            jac[s][i] = (w.as_ps() as f64 - base[s]) / signed_h;
        }
    }

    let mut ata = [[0.0f64; 4]; 4];
    let mut atb = [0.0f64; 4];
    for s in 0..n {
        let w2 = weights[s] * weights[s];
        let r = base[s] - obj.target[s];
        for i in 0..4 {
            atb[i] -= w2 * jac[s][i] * r;
            for j in 0..4 {
                ata[i][j] += w2 * jac[s][i] * jac[s][j];
            }
        }
    }
    for (i, &pin) in pinned.iter().enumerate() {
        if pin || ata[i][i] == 0.0 {
            ata[i] = [0.0; 4];
            for row in &mut ata {
                row[i] = 0.0;
            }
            ata[i][i] = 1.0;
            atb[i] = 0.0;
        }
    }

    let mut best: Option<(LogGpParams, f64)> = None;
    for lambda in [1e-6, 1e-3, 1e-1, 10.0] {
        let mut damped = ata;
        for (i, row) in damped.iter_mut().enumerate() {
            row[i] *= 1.0 + lambda;
        }
        let Some(d) = solve4(damped, atb) else {
            continue;
        };
        let mut v = [0u64; 4];
        for i in 0..4 {
            v[i] = (p0[i] as f64 + d[i]).round().max(0.0) as u64;
        }
        if v[2] < v[1] {
            v[2] = v[1]; // keep g ≥ o
        }
        let p = make(v);
        if p.validate().is_err() {
            continue;
        }
        let score = obj.eval(p);
        if best.as_ref().is_none_or(|(_, b)| score < *b) {
            best = Some((p, score));
        }
    }
    best
}

/// Fit LogGP parameters for `program` to the measured runs in `set`.
///
/// The last `cfg.holdout` runs are excluded from the fit and scored by
/// the bracketing report; the rest are the training runs. Errors on
/// shape mismatches (program vs. measured steps/procs) and empty sets.
pub fn calibrate(
    program: &Arc<Program>,
    set: &MeasuredSet,
    engine: &Engine,
    cfg: &FitConfig,
) -> Result<FitReport, String> {
    let steps = set.step_count()?;
    if steps != program.len() {
        return Err(format!(
            "program has {} steps but the measured runs have {steps}",
            program.len()
        ));
    }
    if set.procs != program.procs() {
        return Err(format!(
            "program runs on {} processors but the measurements say {}",
            program.procs(),
            set.procs
        ));
    }
    if steps == 0 {
        return Err("cannot calibrate against an empty program".into());
    }
    if cfg.holdout >= set.runs.len() {
        return Err(format!(
            "holdout {} would leave no training runs (have {})",
            cfg.holdout,
            set.runs.len()
        ));
    }
    let split = set.runs.len() - cfg.holdout;
    let (train, holdout) = set.runs.split_at(split);

    // The per-step floor over the training runs.
    let target: Vec<f64> = (0..steps)
        .map(|s| train.iter().map(|r| r.steps[s].as_ps()).min().unwrap_or(0) as f64)
        .collect();
    let hi_wall = target.iter().fold(0u64, |m, &t| m.max(t as u64)).max(1000);

    let mut obj = Objective {
        program,
        engine,
        target,
        overshoot_weight: f64::from(cfg.overshoot_weight.max(1)),
        cache: HashMap::new(),
        evaluations: 0,
    };

    // Start from a valid point at the program's processor count.
    let mut current = cfg.initial.with_procs(set.procs);
    if current.gap < current.overhead {
        current = current.with_gap(current.overhead);
    }
    current
        .validate()
        .map_err(|e| format!("initial parameters: {e}"))?;
    let mut best = obj.eval(current);

    let mut rounds = 0usize;
    let mut converged = false;
    for _ in 0..cfg.max_rounds {
        let round_start = best;
        let start_p = current;
        for coord in 0..5u8 {
            let c = current;
            let improved = match coord {
                // G: bytes-proportional wire cost.
                0 => {
                    let hi = (c.gap_per_byte.as_ps().saturating_mul(16)).max(200_000);
                    line_search(
                        &mut obj,
                        &|x| Some(c.with_gap_per_byte(Time::from_ps(x))),
                        0,
                        hi,
                    )
                }
                // L: per-hop latency.
                1 => {
                    let hi = hi_wall.max(c.latency.as_ps().saturating_mul(2));
                    line_search(&mut obj, &|x| Some(c.with_latency(Time::from_ps(x))), 0, hi)
                }
                // o: send/receive overhead, bounded above by g.
                2 => line_search(
                    &mut obj,
                    &|x| Some(c.with_overhead(Time::from_ps(x))),
                    0,
                    c.gap.as_ps(),
                ),
                // g: inter-operation gap, bounded below by o.
                3 => {
                    let hi = hi_wall.max(c.gap.as_ps().saturating_mul(2));
                    line_search(
                        &mut obj,
                        &|x| Some(c.with_gap(Time::from_ps(x))),
                        c.overhead.as_ps(),
                        hi,
                    )
                }
                // The (L, o) diagonal: o' = u, L' = L + 2o − 2u keeps
                // 2o + L constant while redistributing between the two.
                _ => {
                    let budget = c.latency.as_ps() + 2 * c.overhead.as_ps();
                    let hi = (budget / 2).min(c.gap.as_ps());
                    line_search(
                        &mut obj,
                        &|u| {
                            let l = budget.checked_sub(2 * u)?;
                            Some(
                                c.with_overhead(Time::from_ps(u))
                                    .with_latency(Time::from_ps(l)),
                            )
                        },
                        0,
                        hi,
                    )
                }
            };
            if let Some((p, v)) = improved {
                if v < best {
                    best = v;
                    current = p;
                }
            }
        }
        // Pattern move (Hooke–Jeeves): per-axis descent zig-zags through
        // the curved valley the coupled (L, o, g) parameters form, so
        // extrapolate along the round's *net* movement — the valley
        // floor's direction — up to 16× the distance just travelled.
        if current != start_p {
            let c = current;
            const SCALE: u64 = 4;
            let along = |a: Time, b: Time, x: u64| -> Option<u64> {
                let base = a.as_ps() as i128;
                let d = b.as_ps() as i128 - base;
                u64::try_from(base + d * x as i128 / SCALE as i128).ok()
            };
            let improved = line_search(
                &mut obj,
                &|x| {
                    let p = start_p
                        .with_latency(Time::from_ps(along(start_p.latency, c.latency, x)?))
                        .with_overhead(Time::from_ps(along(start_p.overhead, c.overhead, x)?))
                        .with_gap(Time::from_ps(along(start_p.gap, c.gap, x)?))
                        .with_gap_per_byte(Time::from_ps(along(
                            start_p.gap_per_byte,
                            c.gap_per_byte,
                            x,
                        )?));
                    p.validate().ok().map(|_| p)
                },
                0,
                16 * SCALE,
            );
            if let Some((p, v)) = improved {
                if v < best {
                    best = v;
                    current = p;
                }
            }
        }
        if let Some((p, v)) = newton_move(&mut obj, current) {
            if v < best {
                best = v;
                current = p;
            }
        }
        rounds += 1;
        if best == 0.0 {
            converged = true;
            break;
        }
        let gain = round_start - best;
        if gain <= round_start * cfg.min_gain_permille as f64 / 1000.0 {
            converged = true;
            break;
        }
    }

    // Headline RMSE: the fitted prediction against every training run.
    let fitted_walls = obj.walls(current);
    let rmse = rmse_against(&fitted_walls, train);

    let scored = if holdout.is_empty() { train } else { holdout };
    let bracket = bracket(program, current, scored, engine);

    Ok(FitReport {
        params: current,
        rmse,
        objective: Time::from_ps(best as u64),
        converged,
        rounds,
        evaluations: obj.evaluations,
        unique_evaluations: obj.cache.len() as u64,
        bracket,
        train_runs: train.len(),
        holdout_runs: holdout.len(),
    })
}

/// Unweighted RMSE of predicted step walls against a set of runs —
/// exposed for reporting comparisons (e.g. degraded vs. clean fits).
pub fn rmse_against(walls: &[Time], runs: &[MeasuredRun]) -> Time {
    let mut acc = 0.0;
    let mut n = 0u64;
    for run in runs {
        for (w, m) in walls.iter().zip(&run.steps) {
            let r = w.as_ps() as f64 - m.as_ps() as f64;
            acc += r * r;
            n += 1;
        }
    }
    Time::from_ps((acc / n.max(1) as f64).sqrt() as u64)
}
