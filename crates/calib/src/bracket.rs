//! Bracketing quality: does the fitted machine bracket the measurements?
//!
//! The paper's headline property is that the standard algorithm
//! under-approximates and the worst-case algorithm over-approximates
//! real running times. A calibration is *good* when the fitted preset
//! restores that property on runs it never saw: for each held-out run,
//! `standard ≤ measured ≤ worst-case` on the total running time.

use crate::measure::MeasuredRun;
use commsim::SimConfig;
use loggp::{LogGpParams, Time};
use predsim_core::{Program, SimOptions};
use predsim_engine::{Engine, JobSource, JobSpec};
use std::sync::Arc;

/// The bracket check over a set of runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BracketReport {
    /// Runs with `standard ≤ measured ≤ worst-case`.
    pub hits: usize,
    /// Runs checked.
    pub total: usize,
    /// The fitted standard-algorithm total (the lower bound).
    pub std_total: Time,
    /// The fitted worst-case-algorithm total (the upper bound).
    pub wc_total: Time,
}

impl BracketReport {
    /// Hit rate in permille (integer, wire-format friendly); 0 when
    /// nothing was checked.
    pub fn hit_permille(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.hits as u64 * 1000) / self.total as u64
        }
    }

    /// Hit rate as a fraction in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Score `params` against measured `runs`: predict the program once
/// under the standard and once under the worst-case algorithm, and
/// count the runs whose measured total falls inside the bracket.
pub fn bracket(
    program: &Arc<Program>,
    params: LogGpParams,
    runs: &[MeasuredRun],
    engine: &Engine,
) -> BracketReport {
    let std_spec = JobSpec::new(
        "bracket-std",
        JobSource::Program(Arc::clone(program)),
        SimOptions::new(SimConfig::new(params)),
    );
    let wc_spec = JobSpec::new(
        "bracket-wc",
        JobSource::Program(Arc::clone(program)),
        SimOptions::new(SimConfig::new(params)).worst_case(),
    );
    let std_total = engine.run_one(&std_spec).total;
    let wc_total = engine.run_one(&wc_spec).total;
    let hits = runs
        .iter()
        .filter(|r| std_total <= r.total && r.total <= wc_total)
        .count();
    BracketReport {
        hits,
        total: runs.len(),
        std_total,
        wc_total,
    }
}
