//! Deterministic chaos injection for the serving layer.
//!
//! The simulation crates decide faults as pure hashes of `(seed, site)`
//! (see [`crate::FaultPlan`]); this module applies the same discipline to
//! *infrastructure* faults in `predsim-serve`: worker panics, worker
//! stalls, accept-loop hiccups, and mid-request connection drops. Every
//! decision is a splitmix64 hash of the plan seed, a four-byte domain
//! constant, and a monotonically increasing *site* counter — never of
//! wall-clock time — so a chaos run is exactly reproducible from
//! `(spec, seed)` alone when the request order is deterministic.
//!
//! The spec grammar mirrors [`crate::FaultSpec`]:
//!
//! ```text
//! panic:RATE | stall:RATE[:MILLIS] | hiccup:RATE[:MILLIS] | drop-conn:RATE
//! ```
//!
//! clauses joined by commas, rates in `0..=1`, or the literal `none`.
//!
//! ```
//! use predsim_faults::{ChaosPlan, ChaosSpec};
//!
//! let spec = ChaosSpec::parse("panic:0.05,stall:0.02:250").unwrap();
//! let plan = ChaosPlan::new(spec, 42);
//! // Same (seed, site) -> same decision, forever.
//! assert_eq!(plan.worker_panic(7), plan.worker_panic(7));
//! ```

use crate::spec::{parse_rate, PPM};

/// Hash domains, ASCII tags so they read in a debugger.
const DOMAIN_PANIC: u64 = 0x43_50_41_4e; // "CPAN"
const DOMAIN_STALL: u64 = 0x43_53_54_4c; // "CSTL"
const DOMAIN_HICCUP: u64 = 0x43_48_49_43; // "CHIC"
const DOMAIN_DROP: u64 = 0x43_44_52_50; // "CDRP"

/// Parsed chaos specification: which infrastructure faults to inject and
/// how often, in parts-per-million.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Probability (ppm) that a worker panics when it picks up a job.
    pub panic_ppm: u32,
    /// Probability (ppm) that a worker stalls (sleeps with its heartbeat
    /// frozen) when it picks up a job.
    pub stall_ppm: u32,
    /// How long a stalled worker sleeps, milliseconds.
    pub stall_ms: u64,
    /// Probability (ppm) that the accept loop pauses before handling an
    /// accepted connection.
    pub hiccup_ppm: u32,
    /// How long an accept hiccup lasts, milliseconds.
    pub hiccup_ms: u64,
    /// Probability (ppm) that an in-flight connection is dropped before
    /// its request is admitted.
    pub drop_ppm: u32,
}

impl ChaosSpec {
    /// Whether the spec injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.panic_ppm == 0 && self.stall_ppm == 0 && self.hiccup_ppm == 0 && self.drop_ppm == 0
    }

    /// Parse the comma-separated clause grammar; `"none"` and the empty
    /// string yield the no-op spec.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = ChaosSpec {
            stall_ms: 250,
            hiccup_ms: 50,
            ..ChaosSpec::default()
        };
        let text = text.trim();
        if text.is_empty() || text == "none" {
            return Ok(spec);
        }
        for clause in text.split(',') {
            let clause = clause.trim();
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("bad chaos clause '{clause}': expected KIND:RATE"))?;
            match kind {
                "panic" => spec.panic_ppm = parse_rate(rest, clause)?,
                "stall" => match rest.split_once(':') {
                    Some((rate, ms)) => {
                        spec.stall_ppm = parse_rate(rate, clause)?;
                        spec.stall_ms = parse_millis(ms, clause)?;
                    }
                    None => spec.stall_ppm = parse_rate(rest, clause)?,
                },
                "hiccup" => match rest.split_once(':') {
                    Some((rate, ms)) => {
                        spec.hiccup_ppm = parse_rate(rate, clause)?;
                        spec.hiccup_ms = parse_millis(ms, clause)?;
                    }
                    None => spec.hiccup_ppm = parse_rate(rest, clause)?,
                },
                "drop-conn" => spec.drop_ppm = parse_rate(rest, clause)?,
                other => {
                    return Err(format!(
                        "unknown chaos kind '{other}' in '{clause}' \
                         (expected panic, stall, hiccup, or drop-conn)"
                    ))
                }
            }
        }
        Ok(spec)
    }
}

impl std::fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        let mut sep = "";
        if self.panic_ppm > 0 {
            write!(f, "panic:{}", ppm_rate(self.panic_ppm))?;
            sep = ",";
        }
        if self.stall_ppm > 0 {
            write!(
                f,
                "{sep}stall:{}:{}",
                ppm_rate(self.stall_ppm),
                self.stall_ms
            )?;
            sep = ",";
        }
        if self.hiccup_ppm > 0 {
            write!(
                f,
                "{sep}hiccup:{}:{}",
                ppm_rate(self.hiccup_ppm),
                self.hiccup_ms
            )?;
            sep = ",";
        }
        if self.drop_ppm > 0 {
            write!(f, "{sep}drop-conn:{}", ppm_rate(self.drop_ppm))?;
        }
        Ok(())
    }
}

fn ppm_rate(ppm: u32) -> f64 {
    f64::from(ppm) / f64::from(PPM)
}

fn parse_millis(text: &str, clause: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|_| format!("bad millisecond count '{text}' in '{clause}'"))
}

/// A seeded chaos plan: the spec plus the seed that makes every decision
/// a pure function of its site index.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    spec: ChaosSpec,
    seed: u64,
}

impl ChaosPlan {
    /// Bind a spec to a seed.
    pub fn new(spec: ChaosSpec, seed: u64) -> Self {
        ChaosPlan { spec, seed }
    }

    /// The spec this plan injects.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// The seed all decisions hash from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn hash(&self, domain: u64, site: u64) -> u64 {
        let mut h = splitmix64(self.seed ^ domain);
        h = splitmix64(h.wrapping_add(site));
        h
    }

    fn hit(&self, hash: u64, ppm: u32) -> bool {
        ppm > 0 && hash < u64::from(ppm).saturating_mul(u64::MAX / u64::from(PPM))
    }

    /// Should the worker that picked up job-site `site` panic?
    pub fn worker_panic(&self, site: u64) -> bool {
        self.hit(self.hash(DOMAIN_PANIC, site), self.spec.panic_ppm)
    }

    /// Should the worker at job-site `site` stall, and for how long (ms)?
    pub fn worker_stall(&self, site: u64) -> Option<u64> {
        self.hit(self.hash(DOMAIN_STALL, site), self.spec.stall_ppm)
            .then_some(self.spec.stall_ms)
    }

    /// Should the accept loop pause before connection `site`, and for how
    /// long (ms)?
    pub fn accept_hiccup(&self, site: u64) -> Option<u64> {
        self.hit(self.hash(DOMAIN_HICCUP, site), self.spec.hiccup_ppm)
            .then_some(self.spec.hiccup_ms)
    }

    /// Should request `site` have its connection dropped before admission?
    pub fn conn_drop(&self, site: u64) -> bool {
        self.hit(self.hash(DOMAIN_DROP, site), self.spec.drop_ppm)
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar_round_trips_through_display() {
        let spec = ChaosSpec::parse("panic:0.05,stall:0.02:250,hiccup:0.1:50,drop-conn:0.5")
            .expect("parses");
        assert_eq!(spec.panic_ppm, 50_000);
        assert_eq!(spec.stall_ppm, 20_000);
        assert_eq!(spec.stall_ms, 250);
        assert_eq!(spec.hiccup_ppm, 100_000);
        assert_eq!(spec.hiccup_ms, 50);
        assert_eq!(spec.drop_ppm, 500_000);
        let reparsed = ChaosSpec::parse(&spec.to_string()).expect("display reparses");
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn none_and_empty_parse_to_the_noop_spec() {
        for text in ["none", "", "  "] {
            let spec = ChaosSpec::parse(text).expect("parses");
            assert!(spec.is_none());
            assert_eq!(spec.to_string(), "none");
        }
    }

    #[test]
    fn bad_clauses_are_rejected_with_context() {
        for text in ["panic", "panic:2.0", "explode:0.5", "stall:0.1:abc"] {
            let err = ChaosSpec::parse(text).expect_err("rejects");
            assert!(!err.is_empty(), "error for {text:?} should explain itself");
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_site() {
        let spec = ChaosSpec::parse("panic:0.3,stall:0.3:10,hiccup:0.3:10,drop-conn:0.3").unwrap();
        let a = ChaosPlan::new(spec.clone(), 99);
        let b = ChaosPlan::new(spec, 99);
        for site in 0..200 {
            assert_eq!(a.worker_panic(site), b.worker_panic(site));
            assert_eq!(a.worker_stall(site), b.worker_stall(site));
            assert_eq!(a.accept_hiccup(site), b.accept_hiccup(site));
            assert_eq!(a.conn_drop(site), b.conn_drop(site));
        }
    }

    #[test]
    fn different_seeds_give_different_decision_sequences() {
        let spec = ChaosSpec::parse("panic:0.5").unwrap();
        let a = ChaosPlan::new(spec.clone(), 1);
        let b = ChaosPlan::new(spec, 2);
        let seq = |p: &ChaosPlan| (0..64).map(|s| p.worker_panic(s)).collect::<Vec<_>>();
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn rates_zero_and_one_are_never_and_always() {
        let never = ChaosPlan::new(ChaosSpec::parse("none").unwrap(), 5);
        let always = ChaosPlan::new(ChaosSpec::parse("panic:1.0,drop-conn:1.0").unwrap(), 5);
        for site in 0..100 {
            assert!(!never.worker_panic(site));
            assert!(!never.conn_drop(site));
            assert!(always.worker_panic(site));
            assert!(always.conn_drop(site));
        }
    }

    #[test]
    fn hit_rate_tracks_the_requested_ppm() {
        let plan = ChaosPlan::new(ChaosSpec::parse("panic:0.25").unwrap(), 1234);
        let hits = (0..4000).filter(|&s| plan.worker_panic(s)).count();
        // 25% +/- 4 points over 4000 deterministic sites.
        assert!((840..=1160).contains(&hits), "hits = {hits}");
    }
}
