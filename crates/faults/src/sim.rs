//! Wiring a [`FaultPlan`] into the whole-program simulation.
//!
//! Three adapters plug the plan into the hooks the lower layers expose:
//!
//! * [`StepFaultView`] — a per-step [`commsim::StepFaults`] view answering
//!   the drop/retransmission queries of the communication algorithms;
//! * [`FaultedStepSimulator`] — a [`predsim_core::StepSimulator`] routing
//!   each step through `standard::simulate_faulted` or
//!   `worstcase::simulate_faulted` with the view (and a tracer) attached;
//! * [`FaultShaper`] — a [`predsim_core::CompShaper`] applying transient
//!   slowdowns and fail-stop outages to the computation charges.
//!
//! [`simulate_faulted`] and [`simulate_faulted_bounded`] assemble the
//! three into the standard entry points.

use crate::plan::FaultPlan;
use commsim::{standard, worstcase, Message, SimResult, StepFaults, StepTracer};
use loggp::Time;
use predsim_core::{
    simulate_program_driven, CommAlgo, CompShaper, FrontEmitter, NullObserver, Prediction, Program,
    SimBudget, SimOptions, SimRun, StepSimulator,
};
use predsim_obs::{TraceEvent, TraceSink};

/// A [`FaultPlan`] narrowed to one program step: what the communication
/// algorithms consult for per-message drop decisions.
#[derive(Clone, Copy, Debug)]
pub struct StepFaultView<'a> {
    plan: &'a FaultPlan,
    step: u64,
}

impl<'a> StepFaultView<'a> {
    /// The view of `plan` at program step `step`.
    pub fn new(plan: &'a FaultPlan, step: u64) -> Self {
        StepFaultView { plan, step }
    }
}

impl StepFaults for StepFaultView<'_> {
    fn attempts(&self, msg: &Message) -> u32 {
        self.plan.attempts(self.step, msg.id as u64)
    }

    fn rto(&self, attempt: u32) -> Time {
        self.plan.rto(attempt)
    }
}

/// A [`StepSimulator`] running the direct [`commsim`] algorithms with a
/// [`FaultPlan`] (and optionally a trace sink) attached. With a zero plan
/// it produces exactly [`predsim_core::DirectStepSimulator`]'s results.
pub struct FaultedStepSimulator<'a> {
    plan: &'a FaultPlan,
    sink: Option<&'a dyn TraceSink>,
}

impl<'a> FaultedStepSimulator<'a> {
    /// A backend injecting `plan`, tracing into `sink` when given.
    pub fn new(plan: &'a FaultPlan, sink: Option<&'a dyn TraceSink>) -> Self {
        FaultedStepSimulator { plan, sink }
    }
}

impl StepSimulator for FaultedStepSimulator<'_> {
    fn simulate_comm(
        &mut self,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        self.simulate_comm_step(0, comm, opts, ready)
    }

    fn simulate_comm_step(
        &mut self,
        step_idx: usize,
        comm: &commsim::CommPattern,
        opts: &SimOptions,
        ready: &[Time],
    ) -> SimResult {
        let view = StepFaultView::new(self.plan, step_idx as u64);
        let faults: Option<&dyn StepFaults> = Some(&view);
        let tracer = self.sink.map(|s| StepTracer::new(s, step_idx as u64));
        let params = opts.cfg.params;
        let mut arrival = |m: &Message, start: Time| params.arrival_time(start, m.bytes);
        match opts.algo {
            CommAlgo::Standard => standard::simulate_faulted(
                comm,
                &opts.cfg,
                ready,
                &mut arrival,
                tracer.as_ref(),
                faults,
            ),
            CommAlgo::WorstCase => worstcase::simulate_faulted(
                comm,
                &opts.cfg,
                ready,
                &mut arrival,
                tracer.as_ref(),
                faults,
            ),
        }
    }
}

/// A [`CompShaper`] applying a [`FaultPlan`]'s transient slowdowns and
/// fail-stop outages to the computation charges of the program fold.
pub struct FaultShaper<'a> {
    plan: &'a FaultPlan,
    sink: Option<&'a dyn TraceSink>,
}

impl<'a> FaultShaper<'a> {
    /// A shaper applying `plan`, tracing into `sink` when given.
    pub fn new(plan: &'a FaultPlan, sink: Option<&'a dyn TraceSink>) -> Self {
        FaultShaper { plan, sink }
    }
}

impl CompShaper for FaultShaper<'_> {
    fn comp_charge(&mut self, step_idx: usize, proc: usize, base: Time) -> Time {
        let step = step_idx as u64;
        let mut charge = base;
        if let Some(pct) = self.plan.slow_factor(step, proc) {
            // Integer slowdown: extra = base · (pct − 100) / 100, widened so
            // factor × picoseconds cannot overflow.
            let extra_wide = (u128::from(base.as_ps()) * u128::from(pct - 100)) / 100;
            let extra = Time::from_ps(extra_wide.min(u128::from(u64::MAX)) as u64);
            if extra > Time::ZERO {
                charge = charge.saturating_add(extra);
                if let Some(s) = self.sink {
                    s.emit(&TraceEvent::Slowdown {
                        step,
                        proc,
                        factor_pct: u64::from(pct),
                        base_ps: base.as_ps(),
                        extra_ps: extra.as_ps(),
                    });
                }
            }
        }
        if let Some(outage) = self.plan.outage(step, proc) {
            // The processor is silent for the outage, then rejoins and works
            // through everything it owes — the same schedule as serving its
            // queued receives after a restart.
            charge = charge.saturating_add(outage);
            if let Some(s) = self.sink {
                s.emit(&TraceEvent::Fail {
                    step,
                    proc,
                    outage_ps: outage.as_ps(),
                });
                s.emit(&TraceEvent::Restart { step, proc });
            }
        }
        charge
    }
}

/// [`predsim_core::simulate_program`] under a fault plan; optionally
/// traced. A zero plan reproduces the fault-free prediction exactly.
pub fn simulate_faulted(
    prog: &Program,
    opts: &SimOptions,
    plan: &FaultPlan,
    sink: Option<&dyn TraceSink>,
) -> Prediction {
    simulate_faulted_bounded(prog, opts, plan, sink, SimBudget::unlimited()).prediction
}

/// [`simulate_faulted`] with a per-run [`SimBudget`]; the returned
/// [`SimRun`] records whether the budget cut the run short.
pub fn simulate_faulted_bounded(
    prog: &Program,
    opts: &SimOptions,
    plan: &FaultPlan,
    sink: Option<&dyn TraceSink>,
    budget: SimBudget,
) -> SimRun {
    let mut step_sim = FaultedStepSimulator::new(plan, sink);
    let mut shaper = FaultShaper::new(plan, sink);
    match sink {
        Some(s) => {
            let mut observer = FrontEmitter::new(s);
            simulate_program_driven(
                prog,
                opts,
                &mut step_sim,
                &mut observer,
                &mut shaper,
                budget,
            )
        }
        None => simulate_program_driven(
            prog,
            opts,
            &mut step_sim,
            &mut NullObserver,
            &mut shaper,
            budget,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultSpec;
    use commsim::{CommPattern, SimConfig};
    use loggp::presets;
    use predsim_core::{simulate_program, SimHalt, Step};
    use predsim_obs::MemorySink;

    fn plan(text: &str, seed: u64) -> FaultPlan {
        FaultPlan::new(FaultSpec::parse(text).unwrap(), seed)
    }

    fn ring_program(procs: usize, steps: usize) -> Program {
        let mut prog = Program::new(procs);
        for s in 0..steps {
            let mut c = CommPattern::new(procs);
            for p in 0..procs {
                c.add(p, (p + 1) % procs, 256);
            }
            prog.push(
                Step::new(format!("ring-{s}"))
                    .with_comp(vec![Time::from_us(10.0); procs])
                    .with_comm(c),
            );
        }
        prog
    }

    fn opts(procs: usize, algo: CommAlgo) -> SimOptions {
        let mut o = SimOptions::new(SimConfig::new(presets::meiko_cs2(procs)));
        o.algo = algo;
        o
    }

    #[test]
    fn zero_plan_reproduces_the_faultless_prediction_exactly() {
        let prog = ring_program(4, 3);
        for algo in [CommAlgo::Standard, CommAlgo::WorstCase] {
            let o = opts(4, algo);
            let clean = simulate_program(&prog, &o);
            let faulted = simulate_faulted(&prog, &o, &plan("none", 123), None);
            assert_eq!(faulted, clean);
        }
    }

    #[test]
    fn drops_cost_time_and_are_traced() {
        let prog = ring_program(4, 3);
        let o = opts(4, CommAlgo::Standard);
        let clean = simulate_program(&prog, &o);
        let sink = MemorySink::new();
        let faulted = simulate_faulted(&prog, &o, &plan("drop:0.9:50:6", 3), Some(&sink));
        assert!(faulted.total > clean.total);
        let kinds: Vec<&str> = sink.events().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"drop"), "{kinds:?}");
        assert!(kinds.contains(&"retransmit"), "{kinds:?}");
        assert!(kinds.contains(&"front"), "fronts still emitted: {kinds:?}");
    }

    #[test]
    fn slowdown_multiplies_the_compute_charge() {
        let mut prog = Program::new(2);
        prog.push(Step::new("work").with_comp(vec![Time::from_us(100.0); 2]));
        let o = opts(2, CommAlgo::Standard);
        let sink = MemorySink::new();
        let faulted = simulate_faulted(&prog, &o, &plan("slow:1:2.5", 0), Some(&sink));
        assert_eq!(faulted.total, Time::from_us(250.0));
        assert_eq!(faulted.comp_time, Time::from_us(250.0));
        let slows = sink
            .events()
            .iter()
            .filter(|e| e.kind() == "slowdown")
            .count();
        assert_eq!(slows, 2, "one slowdown event per processor");
    }

    #[test]
    fn fail_stop_charges_the_outage_and_emits_fail_restart() {
        let mut prog = Program::new(2);
        prog.push(Step::new("work").with_comp(vec![Time::from_us(10.0); 2]));
        let o = opts(2, CommAlgo::Standard);
        let sink = MemorySink::new();
        let faulted = simulate_faulted(&prog, &o, &plan("fail:1@0+500", 0), Some(&sink));
        assert_eq!(faulted.total, Time::from_us(510.0));
        let kinds: Vec<&str> = sink.events().iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"fail"), "{kinds:?}");
        assert!(kinds.contains(&"restart"), "{kinds:?}");
    }

    #[test]
    fn worst_case_stays_above_standard_under_faults() {
        let prog = ring_program(4, 4);
        let p = plan("drop:0.5:100:6,slow:0.3:2,fail:2@1+200", 11);
        let std_pred = simulate_faulted(&prog, &opts(4, CommAlgo::Standard), &p, None);
        let wc_pred = simulate_faulted(&prog, &opts(4, CommAlgo::WorstCase), &p, None);
        assert!(
            wc_pred.total >= std_pred.total,
            "wc {} < std {}",
            wc_pred.total,
            std_pred.total
        );
    }

    #[test]
    fn budgets_cut_faulted_runs_short() {
        let prog = ring_program(4, 5);
        let o = opts(4, CommAlgo::Standard);
        let run =
            simulate_faulted_bounded(&prog, &o, &plan("drop:0.5", 1), None, SimBudget::steps(2));
        assert_eq!(run.halt, SimHalt::StepBudget { at_step: 2 });
        assert_eq!(run.prediction.steps.len(), 2);
    }
}
