//! `predsim-faults` — deterministic fault injection for the simulators.
//!
//! The paper's LogGP machine is perfectly reliable; real machines are not.
//! This crate answers "what does this program cost on a *degraded*
//! machine" by layering three fault classes over the unchanged simulation
//! algorithms:
//!
//! * **message drop + retransmission** — each transmission attempt of a
//!   message may be lost; the sender retransmits after a timeout with
//!   exponential backoff, and every attempt is charged in LogGP terms
//!   (`o` of CPU and `g` of port back-pressure per attempt; the delivered
//!   attempt pays the full `o + (k−1)G + L` wire time);
//! * **transient slowdown** — a processor's computation charge in a step
//!   is multiplied by a factor, modelling interference or DVFS throttling;
//! * **fail-stop + restart** — a processor is silent for an outage window
//!   starting at a step; its participation (sends *and* receives) is
//!   pushed out past the restart, so queued receives drain on restart.
//!
//! Every decision is a pure function of a [`FaultPlan`]'s seed and the
//! fault site (step index, message id, processor) via a splitmix64-style
//! hash — **never** of virtual time. Both the standard and the worst-case
//! algorithm therefore see identical fault decisions, which is what keeps
//! the paper's overestimation bound (`worst-case ≥ standard`) intact under
//! fault injection; `tests/props.rs` enforces it by proptest.
//!
//! ```
//! use predsim_faults::{FaultPlan, FaultSpec, simulate_faulted};
//! use predsim_core::{Program, Step, SimOptions};
//! use commsim::{CommPattern, SimConfig};
//! use loggp::{presets, Time};
//!
//! let mut prog = Program::new(2);
//! let mut c = CommPattern::new(2);
//! c.add(0, 1, 1024);
//! prog.push(Step::new("ship").with_comm(c));
//! let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(2)));
//!
//! let clean = predsim_core::simulate_program(&prog, &opts);
//! let spec = FaultSpec::parse("drop:0.5").unwrap();
//! let faulty = simulate_faulted(&prog, &opts, &FaultPlan::new(spec, 7), None);
//! assert!(faulty.total >= clean.total);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod plan;
mod sim;
mod spec;

pub use chaos::{ChaosPlan, ChaosSpec};
pub use plan::FaultPlan;
pub use sim::{
    simulate_faulted, simulate_faulted_bounded, FaultShaper, FaultedStepSimulator, StepFaultView,
};
pub use spec::{FailEvent, FaultSpec};
