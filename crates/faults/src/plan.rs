//! The seeded fault plan: spec + seed → pure fault decisions.

use crate::spec::{FaultSpec, PPM};
use loggp::Time;
use std::fmt::Write as _;

/// Hash domains keep the decision streams of different fault classes
/// statistically independent under one seed.
const DOMAIN_DROP: u64 = 0x44_52_4f_50; // "DROP"
const DOMAIN_SLOW: u64 = 0x53_4c_4f_57; // "SLOW"

/// The splitmix64 finalizer: a tiny, high-quality 64-bit mixer — exactly
/// what a deterministic, dependency-free fault oracle needs.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`FaultSpec`] bound to a seed. Every query is a pure function of
/// `(seed, fault site)` — independent of virtual time and of which
/// algorithm asks — so the standard and worst-case simulators see the same
/// faults, `--jobs N` sees the same faults as `--jobs 1`, and re-running a
/// plan reproduces it bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
}

impl FaultPlan {
    /// Bind `spec` to `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultPlan { spec, seed }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan injects nothing.
    pub fn is_zero(&self) -> bool {
        self.spec.is_zero()
    }

    fn hash(&self, domain: u64, a: u64, b: u64, c: u64) -> u64 {
        let mut h = splitmix64(self.seed ^ domain);
        h = splitmix64(h.wrapping_add(a));
        h = splitmix64(h.wrapping_add(b));
        splitmix64(h.wrapping_add(c))
    }

    fn hit(hash: u64, ppm: u32) -> bool {
        if ppm == 0 {
            false
        } else if ppm >= PPM {
            true
        } else {
            hash < u64::from(ppm).saturating_mul(u64::MAX / u64::from(PPM))
        }
    }

    /// Total transmission attempts for message `msg_id` of step `step`
    /// (≥ 1, ≤ the spec's cap; the final attempt always delivers).
    pub fn attempts(&self, step: u64, msg_id: u64) -> u32 {
        if self.spec.drop_ppm == 0 {
            return 1;
        }
        let max = self.spec.max_attempts.max(1);
        for a in 0..max {
            if a + 1 == max {
                return max;
            }
            let h = self.hash(DOMAIN_DROP, step, msg_id, u64::from(a));
            if !Self::hit(h, self.spec.drop_ppm) {
                return a + 1;
            }
        }
        max
    }

    /// Retransmission timeout after the given (zero-based) dropped
    /// attempt: the base timeout with exponential backoff, saturating.
    pub fn rto(&self, attempt: u32) -> Time {
        self.spec.rto.saturating_mul(1u64 << attempt.min(16))
    }

    /// The slowdown factor (percent, > 100) hitting processor `proc` in
    /// step `step`, if any.
    pub fn slow_factor(&self, step: u64, proc: usize) -> Option<u32> {
        if self.spec.slow_ppm == 0 || self.spec.slow_factor_pct <= 100 {
            return None;
        }
        let h = self.hash(DOMAIN_SLOW, step, proc as u64, 0);
        Self::hit(h, self.spec.slow_ppm).then_some(self.spec.slow_factor_pct)
    }

    /// The total fail-stop outage charged to processor `proc` at the start
    /// of step `step`, if any.
    pub fn outage(&self, step: u64, proc: usize) -> Option<Time> {
        let mut total = Time::ZERO;
        for e in &self.spec.fails {
            if e.proc == proc && e.step as u64 == step {
                total = total.saturating_add(e.outage);
            }
        }
        (total > Time::ZERO).then_some(total)
    }

    /// Pretty-print the plan: the parsed clauses plus a resolved sample of
    /// decisions over a `steps × procs` window (what `predsim faults
    /// explain` shows).
    pub fn explain(&self, steps: usize, procs: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fault plan (seed {}): {}", self.seed, self.spec);
        if self.spec.drop_ppm > 0 {
            let _ = writeln!(
                out,
                "  drop: each attempt lost with p={:.4}; rto {} with exponential backoff, \
                 at most {} attempts (the last always delivers)",
                self.spec.drop_ppm as f64 / f64::from(PPM),
                self.spec.rto,
                self.spec.max_attempts.max(1),
            );
        }
        if self.spec.slow_ppm > 0 {
            let _ = writeln!(
                out,
                "  slow: each (step, proc) slowed with p={:.4}, factor {:.2}x",
                self.spec.slow_ppm as f64 / f64::from(PPM),
                self.spec.slow_factor_pct as f64 / 100.0,
            );
        }
        for e in &self.spec.fails {
            let _ = writeln!(
                out,
                "  fail-stop: P{} at step {} for {}",
                e.proc, e.step, e.outage
            );
        }
        if self.is_zero() {
            let _ = writeln!(out, "  (no faults; predictions equal the fault-free run)");
            return out;
        }
        let _ = writeln!(
            out,
            "resolved sample over {steps} steps x {procs} procs \
             ('.' clean, S slowdown, F fail-stop, B both):"
        );
        for s in 0..steps {
            let mut row = String::new();
            for p in 0..procs {
                let slow = self.slow_factor(s as u64, p).is_some();
                let fail = self.outage(s as u64, p).is_some();
                row.push(match (slow, fail) {
                    (false, false) => '.',
                    (true, false) => 'S',
                    (false, true) => 'F',
                    (true, true) => 'B',
                });
            }
            let _ = writeln!(out, "  step {s:>3}: {row}");
        }
        if self.spec.drop_ppm > 0 {
            let attempts: Vec<String> =
                (0..8u64).map(|m| self.attempts(0, m).to_string()).collect();
            let _ = writeln!(
                out,
                "sample attempts (step 0, msgs 0-7): {}",
                attempts.join(" ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str, seed: u64) -> FaultPlan {
        FaultPlan::new(FaultSpec::parse(text).unwrap(), seed)
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = plan("drop:0.5,slow:0.5:2", 1);
        let b = plan("drop:0.5,slow:0.5:2", 1);
        let c = plan("drop:0.5,slow:0.5:2", 2);
        let mut differs = false;
        for step in 0..16u64 {
            for m in 0..16u64 {
                assert_eq!(a.attempts(step, m), b.attempts(step, m));
                if a.attempts(step, m) != c.attempts(step, m) {
                    differs = true;
                }
            }
        }
        assert!(differs, "two seeds should disagree somewhere");
    }

    #[test]
    fn attempt_counts_respect_the_cap_and_zero_rate() {
        let never = plan("none", 9);
        assert_eq!(never.attempts(0, 0), 1);
        let always = plan("drop:1:200:4", 9);
        for m in 0..32u64 {
            assert_eq!(always.attempts(0, m), 4, "cap must bound attempts");
        }
        let sometimes = plan("drop:0.5", 9);
        let mut seen_retry = false;
        for m in 0..64u64 {
            let a = sometimes.attempts(0, m);
            assert!((1..=8).contains(&a));
            seen_retry |= a > 1;
        }
        assert!(seen_retry, "a 50% drop rate must retry sometimes");
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let p = plan("drop:0.25", 42);
        let drops = (0..4000u64).filter(|&m| p.attempts(0, m) > 1).count();
        // First-attempt drop probability is 0.25; allow a wide band.
        assert!((800..1200).contains(&drops), "drops: {drops}");
    }

    #[test]
    fn rto_backs_off_exponentially_and_saturates() {
        let p = plan("drop:0.5:100:20", 0);
        assert_eq!(p.rto(0), Time::from_us(100.0));
        assert_eq!(p.rto(1), Time::from_us(200.0));
        assert_eq!(p.rto(3), Time::from_us(800.0));
        assert!(p.rto(63) >= p.rto(16), "backoff must saturate, not wrap");
    }

    #[test]
    fn outages_accumulate_per_site() {
        let p = plan("fail:1@2+100,fail:1@2+50,fail:0@0+10", 0);
        assert_eq!(p.outage(2, 1), Some(Time::from_us(150.0)));
        assert_eq!(p.outage(0, 0), Some(Time::from_us(10.0)));
        assert_eq!(p.outage(1, 0), None);
        assert_eq!(p.outage(2, 0), None);
    }

    #[test]
    fn explain_renders_clauses_and_sample() {
        let text = plan("drop:0.3,slow:0.4:2,fail:0@1+100", 7).explain(4, 3);
        assert!(text.contains("seed 7"), "{text}");
        assert!(text.contains("fail-stop: P0 at step 1"), "{text}");
        let row1 = text
            .lines()
            .find(|l| l.trim_start().starts_with("step   1:"))
            .unwrap();
        let mark = row1.chars().nth(row1.find(": ").unwrap() + 2).unwrap();
        assert!(
            mark == 'F' || mark == 'B',
            "P0 at step 1 must show the fail: {row1}"
        );
        assert!(text.contains("sample attempts"), "{text}");
        let none = plan("none", 0).explain(4, 3);
        assert!(none.contains("no faults"), "{none}");
    }
}
