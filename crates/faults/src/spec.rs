//! The fault specification and its textual grammar.

use loggp::Time;
use std::fmt;

/// Rates are stored in fixed-point parts-per-million so the whole fault
/// subsystem stays in integer arithmetic (floats appear only at the parse
/// boundary).
pub(crate) const PPM: u32 = 1_000_000;

/// One scheduled fail-stop event: the processor goes silent at the start
/// of `step` and rejoins `outage` later.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailEvent {
    /// The processor that fails.
    pub proc: usize,
    /// The program step at whose start the outage begins.
    pub step: usize,
    /// Length of the outage in virtual time.
    pub outage: Time,
}

/// A declarative fault model, independent of any seed (pair it with one in
/// a [`crate::FaultPlan`]).
///
/// The textual grammar accepted by [`FaultSpec::parse`] is a
/// comma-separated list of clauses:
///
/// | clause | meaning |
/// |---|---|
/// | `none` | the empty spec (must stand alone) |
/// | `drop:RATE` | each transmission attempt is lost with probability `RATE` (0..=1) |
/// | `drop:RATE:RTO_US` | …with a base retransmission timeout of `RTO_US` µs |
/// | `drop:RATE:RTO_US:MAX` | …and at most `MAX` attempts (the last always delivers) |
/// | `slow:RATE:FACTOR` | each (step, processor) pair is slowed by `FACTOR`× with probability `RATE` |
/// | `fail:P@S+OUT_US` | processor `P` fail-stops at step `S` for `OUT_US` µs |
///
/// Example: `drop:0.1:200:8,slow:0.05:2.5,fail:0@3+500`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probability that one transmission attempt is dropped, in ppm.
    pub drop_ppm: u32,
    /// Base retransmission timeout (doubled per dropped attempt).
    pub rto: Time,
    /// Maximum transmission attempts per message; the final attempt always
    /// gets through, so simulations terminate under any drop rate.
    pub max_attempts: u32,
    /// Probability that a (step, processor) pair is slowed, in ppm.
    pub slow_ppm: u32,
    /// Slowdown factor in percent (250 = 2.5× the base compute charge);
    /// at least 100.
    pub slow_factor_pct: u32,
    /// Scheduled fail-stop events.
    pub fails: Vec<FailEvent>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            drop_ppm: 0,
            rto: Time::from_us(200.0),
            max_attempts: 8,
            slow_ppm: 0,
            slow_factor_pct: 100,
            fails: Vec::new(),
        }
    }
}

pub(crate) fn parse_rate(text: &str, clause: &str) -> Result<u32, String> {
    let rate: f64 = text
        .parse()
        .map_err(|_| format!("bad rate '{text}' in '{clause}'"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate {rate} in '{clause}' must be within 0..=1"));
    }
    Ok((rate * f64::from(PPM)).round() as u32)
}

fn parse_us(text: &str, clause: &str) -> Result<Time, String> {
    let us: f64 = text
        .parse()
        .map_err(|_| format!("bad microseconds '{text}' in '{clause}'"))?;
    if us < 0.0 {
        return Err(format!("negative time in '{clause}'"));
    }
    Ok(Time::from_us(us))
}

impl FaultSpec {
    /// Parse the grammar documented on [`FaultSpec`].
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let text = text.trim();
        if text.is_empty() {
            return Err("empty fault spec (use 'none' for no faults)".into());
        }
        let mut spec = FaultSpec::default();
        if text == "none" {
            return Ok(spec);
        }
        for clause in text.split(',') {
            let clause = clause.trim();
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("bad fault clause '{clause}' (expected kind:args)"))?;
            match kind {
                "drop" => {
                    let parts: Vec<&str> = rest.split(':').collect();
                    if parts.is_empty() || parts.len() > 3 {
                        return Err(format!("bad drop clause '{clause}'"));
                    }
                    spec.drop_ppm = parse_rate(parts[0], clause)?;
                    if let Some(rto) = parts.get(1) {
                        spec.rto = parse_us(rto, clause)?;
                        if spec.rto == Time::ZERO {
                            return Err(format!("zero rto in '{clause}'"));
                        }
                    }
                    if let Some(max) = parts.get(2) {
                        spec.max_attempts = max
                            .parse()
                            .map_err(|_| format!("bad attempt cap '{max}' in '{clause}'"))?;
                        if spec.max_attempts == 0 {
                            return Err(format!("attempt cap in '{clause}' must be >= 1"));
                        }
                    }
                }
                "slow" => {
                    let (rate, factor) = rest.split_once(':').ok_or_else(|| {
                        format!("bad slow clause '{clause}' (want slow:RATE:FACTOR)")
                    })?;
                    spec.slow_ppm = parse_rate(rate, clause)?;
                    let f: f64 = factor
                        .parse()
                        .map_err(|_| format!("bad factor '{factor}' in '{clause}'"))?;
                    if f < 1.0 {
                        return Err(format!("slowdown factor {f} in '{clause}' must be >= 1"));
                    }
                    spec.slow_factor_pct = (f * 100.0).round() as u32;
                }
                "fail" => {
                    let (proc, rest) = rest
                        .split_once('@')
                        .ok_or_else(|| format!("bad fail clause '{clause}' (want fail:P@S+US)"))?;
                    let (step, outage) = rest
                        .split_once('+')
                        .ok_or_else(|| format!("bad fail clause '{clause}' (want fail:P@S+US)"))?;
                    let proc = proc
                        .parse()
                        .map_err(|_| format!("bad processor '{proc}' in '{clause}'"))?;
                    let step = step
                        .parse()
                        .map_err(|_| format!("bad step '{step}' in '{clause}'"))?;
                    let outage = parse_us(outage, clause)?;
                    spec.fails.push(FailEvent { proc, step, outage });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' (expected drop, slow or fail)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// True when the spec injects nothing: simulations under it are
    /// bit-identical to fault-free ones.
    pub fn is_zero(&self) -> bool {
        self.drop_ppm == 0 && self.slow_ppm == 0 && self.fails.is_empty()
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "none");
        }
        let mut sep = "";
        if self.drop_ppm > 0 {
            write!(
                f,
                "drop:{}:{}:{}",
                self.drop_ppm as f64 / f64::from(PPM),
                self.rto.as_ps() as f64 / 1e6,
                self.max_attempts
            )?;
            sep = ",";
        }
        if self.slow_ppm > 0 {
            write!(
                f,
                "{sep}slow:{}:{}",
                self.slow_ppm as f64 / f64::from(PPM),
                self.slow_factor_pct as f64 / 100.0
            )?;
            sep = ",";
        }
        for e in &self.fails {
            write!(
                f,
                "{sep}fail:{}@{}+{}",
                e.proc,
                e.step,
                e.outage.as_ps() as f64 / 1e6
            )?;
            sep = ",";
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let spec = FaultSpec::parse("drop:0.1:300:5,slow:0.05:2.5,fail:0@3+500").unwrap();
        assert_eq!(spec.drop_ppm, 100_000);
        assert_eq!(spec.rto, Time::from_us(300.0));
        assert_eq!(spec.max_attempts, 5);
        assert_eq!(spec.slow_ppm, 50_000);
        assert_eq!(spec.slow_factor_pct, 250);
        assert_eq!(
            spec.fails,
            vec![FailEvent {
                proc: 0,
                step: 3,
                outage: Time::from_us(500.0),
            }]
        );
        assert!(!spec.is_zero());
    }

    #[test]
    fn defaults_and_none() {
        let spec = FaultSpec::parse("none").unwrap();
        assert!(spec.is_zero());
        assert_eq!(spec.rto, Time::from_us(200.0));
        assert_eq!(spec.max_attempts, 8);
        let drop = FaultSpec::parse("drop:1").unwrap();
        assert_eq!(drop.drop_ppm, 1_000_000);
        assert_eq!(drop.max_attempts, 8, "cap defaults even at rate 1");
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "",
            "bogus:1",
            "drop:1.5",
            "drop:-0.1",
            "drop:0.1:0",
            "drop:0.1:200:0",
            "drop:0.1:200:8:9",
            "slow:0.5",
            "slow:0.5:0.5",
            "fail:0@3",
            "fail:a@3+5",
            "drop",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "none",
            "drop:0.1:300:5",
            "slow:0.05:2.5",
            "fail:0@3+500",
            "drop:0.25:200:8,slow:0.5:1.5,fail:1@0+100,fail:2@4+50",
        ] {
            let spec = FaultSpec::parse(text).unwrap();
            let rendered = spec.to_string();
            assert_eq!(
                FaultSpec::parse(&rendered).unwrap(),
                spec,
                "{text} -> {rendered}"
            );
        }
    }
}
