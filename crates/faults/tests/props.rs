//! Property tests for the fault subsystem: same plan, same faults,
//! everywhere — and the worst-case overestimation bound survives them.

use commsim::{CommPattern, SimConfig};
use loggp::{presets, Time};
use predsim_core::{simulate_program, Program, SimOptions, Step};
use predsim_faults::{simulate_faulted, FailEvent, FaultPlan, FaultSpec};
use predsim_obs::MemorySink;
use proptest::prelude::*;

/// A random well-formed program: 2–4 processors, 1–5 steps, each with a
/// uniform computation charge and an acyclic message pattern (all messages
/// go low → high processor), so neither algorithm needs forced sends.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2usize..5,
        prop::collection::vec(
            (
                1u32..200,
                prop::collection::vec((0usize..8, 0usize..8, 0usize..2048), 0..6),
            ),
            1..6,
        ),
    )
        .prop_map(|(procs, steps)| {
            let mut prog = Program::new(procs);
            for (i, (comp_us, msgs)) in steps.into_iter().enumerate() {
                let mut step =
                    Step::new(format!("s{i}"))
                        .with_comp(vec![Time::from_us(f64::from(comp_us)); procs]);
                let mut pat = CommPattern::new(procs);
                let mut any = false;
                for (a, b, bytes) in msgs {
                    let (a, b) = (a % procs, b % procs);
                    let (src, dst) = (a.min(b), a.max(b));
                    if src != dst {
                        pat.add(src, dst, 64 + bytes);
                        any = true;
                    }
                }
                if any {
                    step = step.with_comm(pat);
                }
                prog.push(step);
            }
            prog
        })
}

/// A random fault plan: moderate drop/slow rates, a bounded retry cap, at
/// most one scheduled fail-stop, any seed.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u32..400_000,
        50u32..400,
        2u32..6,
        0u32..300_000,
        150u32..400,
        (any::<bool>(), 0usize..4, 0usize..5, 100u32..2000),
        any::<u64>(),
    )
        .prop_map(
            |(drop_ppm, rto_us, max_attempts, slow_ppm, pct, fail, seed)| {
                let fail = fail.0.then_some((fail.1, fail.2, fail.3));
                let mut spec = FaultSpec {
                    drop_ppm,
                    rto: Time::from_us(f64::from(rto_us)),
                    max_attempts,
                    slow_ppm,
                    slow_factor_pct: pct,
                    ..FaultSpec::default()
                };
                if let Some((proc, step, outage_us)) = fail {
                    spec.fails.push(FailEvent {
                        proc,
                        step,
                        outage: Time::from_us(f64::from(outage_us)),
                    });
                }
                FaultPlan::new(spec, seed)
            },
        )
}

fn meiko_opts(procs: usize) -> SimOptions {
    SimOptions::new(SimConfig::new(presets::meiko_cs2(procs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Re-running a plan reproduces both the prediction and the event
    /// stream bit-identically.
    #[test]
    fn same_plan_same_prediction_and_trace(prog in arb_program(), plan in arb_plan()) {
        let opts = meiko_opts(prog.procs());
        let first_sink = MemorySink::new();
        let second_sink = MemorySink::new();
        let first = simulate_faulted(&prog, &opts, &plan, Some(&first_sink));
        let second = simulate_faulted(&prog, &opts, &plan, Some(&second_sink));
        prop_assert_eq!(first, second);
        prop_assert_eq!(first_sink.to_jsonl(), second_sink.to_jsonl());
    }

    /// A zero-rate plan is an identity under any seed, for both
    /// algorithms: faulted simulation equals the plain one exactly.
    #[test]
    fn zero_rate_plans_are_identities(prog in arb_program(), seed in any::<u64>()) {
        let plan = FaultPlan::new(FaultSpec::default(), seed);
        for worst in [false, true] {
            let mut opts = meiko_opts(prog.procs());
            if worst {
                opts = opts.worst_case();
            }
            prop_assert_eq!(
                simulate_faulted(&prog, &opts, &plan, None),
                simulate_program(&prog, &opts)
            );
        }
    }

    /// The paper's overestimation bound holds under fault injection: the
    /// worst-case algorithm never predicts below the standard one, because
    /// both see the exact same fault decisions.
    #[test]
    fn worst_case_dominates_standard_under_faults(prog in arb_program(), plan in arb_plan()) {
        let std_opts = meiko_opts(prog.procs());
        let wc_opts = meiko_opts(prog.procs()).worst_case();
        let standard = simulate_faulted(&prog, &std_opts, &plan, None);
        let worst = simulate_faulted(&prog, &wc_opts, &plan, None);
        prop_assert!(
            worst.total >= standard.total,
            "worst-case {} < standard {} under {:?}",
            worst.total,
            standard.total,
            plan
        );
    }

    /// Faults only ever add time: a faulted run is never faster than the
    /// fault-free run of the same program.
    #[test]
    fn faults_never_speed_a_program_up(prog in arb_program(), plan in arb_plan()) {
        let opts = meiko_opts(prog.procs());
        let clean = simulate_program(&prog, &opts);
        let faulted = simulate_faulted(&prog, &opts, &plan, None);
        prop_assert!(
            faulted.total >= clean.total,
            "faulted {} < clean {}",
            faulted.total,
            clean.total
        );
    }
}
