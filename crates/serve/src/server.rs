//! The server proper: acceptor, connection handlers, worker pool,
//! supervisor, degradation ladder, drain.
//!
//! Thread layout:
//!
//! ```text
//! acceptor ──spawns──▶ handler (one per connection, keep-alive loop)
//!                         │ parse + lint, then the tier ladder:
//!                         │   full  ──▶ queue.try_push ──▶ 429 when full
//!                         │   replay ─▶ cached recording, no queue
//!                         │   static ─▶ interval only, no simulation
//!                         ▼
//!                     BoundedQueue ◀──pop── worker × N ──▶ Engine::run
//!                         ▲                      │
//!                         │                  supervisor (heartbeats,
//!                         │                  respawn, orphan requeue)
//!                         └── reply slot ◀──────┘
//! ```
//!
//! Every full prediction goes through the one shared [`Engine`], so the
//! memo cache, journal, and metrics registry see the server's whole
//! lifetime.
//!
//! **Overload behaviour** is tiered rather than binary. Above a
//! high-watermark queue depth `/v1/predict` stops queueing and degrades:
//! first to a cached step-recording replay (bit-identical totals, no
//! queue wait), then to the queue-free static `[lo, hi]` estimate. Every
//! response names its `tier`. Requests carrying a `deadline_ms` are
//! admitted only if the calibrated cost model says they can finish in
//! time; provably-late requests shed the newest deadline-less queue
//! entries first (the victims get static-tier answers), then degrade or
//! are refused with a *computed* `Retry-After`.
//!
//! **Worker supervision**: each worker publishes a heartbeat; a
//! supervisor thread respawns panicked workers (re-enqueueing the job
//! they held, once) and backfills stalled ones, so the pool never
//! shrinks permanently. `serve_worker_restarts_total` counts its
//! interventions.
//!
//! **Chaos**: an optional [`predsim_faults::ChaosPlan`] injects worker
//! panics/stalls, accept-loop hiccups and connection drops as pure
//! hashes of (seed, site) — deterministic, like every fault in this
//! workspace.
//!
//! Drain is cooperative and loses nothing that was admitted: the
//! acceptor stops accepting, the read half of every open connection is
//! shut down (a handler blocked in a read sees EOF and exits; a handler
//! waiting for a worker reply still owns a working write half), handlers
//! are joined, then the queue is closed and workers finish whatever was
//! queued before the supervisor stands down.

use crate::admission::CostModel;
use crate::api;
use crate::http::{HttpReader, Request, RequestError, Response};
use crate::queue::{BoundedQueue, PushError};
use predsim_engine::{Engine, EngineConfig, EngineObs, JobOutcome, JobResult, JobSpec, Journal};
use predsim_faults::ChaosPlan;
use predsim_obs::{default_ns_buckets, Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Prediction worker threads.
    pub workers: usize,
    /// Admission-queue capacity; beyond it requests get `429`.
    pub queue_cap: usize,
    /// Socket read/write timeout — bounds both a slow request and an
    /// idle keep-alive connection.
    pub request_timeout: Duration,
    /// Largest request body accepted (bytes); beyond it, `413`.
    pub max_body: usize,
    /// Engine configuration (workers each run jobs inline, so its `jobs`
    /// is forced to 1).
    pub engine: EngineConfig,
    /// Append every finished job to this checkpoint journal.
    pub journal: Option<std::path::PathBuf>,
    /// Queue depth at which `/v1/predict` degrades to recording replay.
    /// `None` derives `max(1, queue_cap / 2)`.
    pub replay_at: Option<usize>,
    /// Queue depth at which `/v1/predict` degrades to the static-bounds
    /// estimate. `None` derives `max(replay_at, 3 * queue_cap / 4)`.
    pub static_at: Option<usize>,
    /// How long a busy worker may go without a heartbeat before the
    /// supervisor backfills it with a fresh thread.
    pub stall_timeout: Duration,
    /// Deterministic infrastructure-fault injection (`--chaos`).
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 32,
            request_timeout: Duration::from_secs(30),
            max_body: 1 << 20,
            engine: EngineConfig::default(),
            journal: None,
            replay_at: None,
            static_at: None,
            stall_timeout: Duration::from_secs(30),
            chaos: None,
        }
    }
}

/// What one admitted queue entry asks a worker to do. `Clone` so the
/// worker can park an orphan copy for the supervisor before running.
#[derive(Clone)]
enum Work {
    /// Run one prediction job through the engine. Boxed so the enum
    /// stays pointer-sized regardless of how `JobSpec` grows.
    Predict(Box<JobSpec>),
    /// Measure a source on the emulator and fit a LogGP preset to it
    /// (`POST /v1/calibrate`). Boxed: a calibration carries its whole
    /// measured configuration and is rare next to predictions.
    Calibrate(Box<api::CalibrateRequest>),
    /// Sweep a task DAG across processor counts (`POST /v1/speedup`).
    /// Boxed for the same reason as calibrations.
    Speedup(Box<api::SpeedupRequest>),
}

/// One admitted unit of work: what to do, the slot its handler is
/// waiting on, and the admission metadata the cost model and the
/// shedding policy act on.
struct Job {
    work: Work,
    reply: Arc<ReplySlot>,
    slot: usize,
    /// Estimated wall cost at admission (subtracted when popped).
    est_ns: u64,
    /// Static ceiling the estimate came from (0 when none).
    hi_ps: u64,
    /// Answer-by instant, for requests that carried `deadline_ms`.
    deadline: Option<Instant>,
    /// May a deadline admission evict this entry? (Single deadline-less
    /// predicts only — batches and calibrations are never shed.)
    sheddable: bool,
    /// Already re-enqueued once by the supervisor; a second worker death
    /// answers `crashed` instead of looping forever.
    requeued: bool,
}

impl Job {
    /// The copy a worker parks for the supervisor before running.
    fn orphan_copy(&self) -> Job {
        Job {
            work: self.work.clone(),
            reply: Arc::clone(&self.reply),
            slot: self.slot,
            est_ns: self.est_ns,
            hi_ps: self.hi_ps,
            deadline: self.deadline,
            sheddable: self.sheddable,
            requeued: self.requeued,
        }
    }
}

/// What one calibration produced: the fit report plus what happened to
/// a requested preset registration (`None` when none was asked for);
/// the outer `Err` is a calibration that failed outright (or panicked —
/// workers catch it).
type CalibrationOutcome =
    Result<(predsim_calib::FitReport, Option<Result<String, String>>), String>;

/// What a worker hands back for one unit of work.
enum Reply {
    /// A finished prediction and how many wall-ns the worker spent on it
    /// (the cost model's calibration sample).
    Predict(JobResult, u64),
    Calibrate(Box<CalibrationOutcome>),
    /// A finished speedup sweep (or why it failed).
    Speedup(Box<Result<predsim_dag::SweepReport, String>>),
    /// The job was shed after admission (deadline eviction, or expired
    /// before a worker reached it); the handler answers at a degraded
    /// tier.
    Shed,
}

/// Where a worker leaves results for the waiting handler. One slot per
/// request: a batch of `n` jobs shares a slot expecting `n` results.
struct ReplySlot {
    results: Mutex<Vec<Option<Reply>>>,
    done: Condvar,
}

impl ReplySlot {
    fn new(n: usize) -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            results: Mutex::new((0..n).map(|_| None).collect()),
            done: Condvar::new(),
        })
    }

    fn fill(&self, slot: usize, result: Reply) {
        let mut results = self.results.lock().expect("reply slot poisoned");
        results[slot] = Some(result);
        drop(results);
        self.done.notify_all();
    }

    /// Wait until every slot is filled. Unbounded: every admitted job is
    /// guaranteed a result (the engine turns panics into `crashed`
    /// outcomes, calibrations run under `catch_unwind`, dead workers'
    /// jobs are re-enqueued or answered by the supervisor, and drain
    /// never abandons the queue).
    fn wait(&self) -> Vec<Reply> {
        let mut results = self.results.lock().expect("reply slot poisoned");
        loop {
            if results.iter().all(Option::is_some) {
                return results.iter_mut().map(|r| r.take().unwrap()).collect();
            }
            results = self.done.wait(results).expect("reply slot poisoned");
        }
    }
}

/// The serve-layer metrics, on the same registry the engine publishes to.
struct ServeMetrics {
    registry: Arc<Registry>,
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    wall: Arc<Histogram>,
    restarts: Arc<Counter>,
}

impl ServeMetrics {
    fn new(registry: Arc<Registry>) -> ServeMetrics {
        let queue_depth = registry.gauge(
            "serve_queue_depth",
            "prediction jobs waiting in the admission queue",
        );
        let in_flight = registry.gauge(
            "serve_jobs_in_flight",
            "prediction jobs currently executing on a worker",
        );
        let wall = registry.histogram(
            "serve_request_wall_ns",
            "wall time from request parsed to response written, ns",
            &default_ns_buckets(),
        );
        let restarts = registry.counter(
            "serve_worker_restarts_total",
            "worker threads respawned or backfilled by the supervisor",
        );
        ServeMetrics {
            registry,
            queue_depth,
            in_flight,
            wall,
            restarts,
        }
    }

    /// Count one finished request, by status code and endpoint.
    fn record(&self, endpoint: &'static str, status: u16, wall: Duration) {
        self.registry
            .counter_with(
                "serve_requests_total",
                &[("code", &status.to_string())],
                "HTTP responses sent, by status code",
            )
            .inc();
        self.registry
            .counter_with(
                "serve_endpoint_requests_total",
                &[("endpoint", endpoint)],
                "HTTP responses sent, by endpoint",
            )
            .inc();
        self.wall
            .observe(wall.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Count one `/v1/predict` answer by serving tier.
    fn tier(&self, tier: api::Tier) {
        self.registry
            .counter_with(
                "serve_tier_total",
                &[("tier", tier.as_str())],
                "predict answers by serving tier",
            )
            .inc();
    }

    /// Count one shed decision, by reason.
    fn shed(&self, reason: &str) {
        self.registry
            .counter_with(
                "serve_sheds_total",
                &[("reason", reason)],
                "requests shed or downgraded by admission control",
            )
            .inc();
    }

    /// Count one injected chaos event, by kind.
    fn chaos(&self, kind: &str) {
        self.registry
            .counter_with(
                "serve_chaos_injections_total",
                &[("kind", kind)],
                "deterministic chaos events injected",
            )
            .inc();
    }
}

/// Per-worker supervision state. The worker beats; the supervisor reads.
struct WorkerState {
    /// Milliseconds since server start at the last heartbeat.
    beat_ms: AtomicU64,
    /// Currently holding a job.
    busy: AtomicBool,
    /// The supervisor backfilled this worker after a stall; it should
    /// exit at the next loop turn instead of popping more work.
    superseded: AtomicBool,
    /// Copy of the job being run, for requeue if this thread dies.
    orphan: Mutex<Option<Job>>,
}

impl WorkerState {
    fn new() -> Arc<WorkerState> {
        Arc::new(WorkerState {
            beat_ms: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            superseded: AtomicBool::new(false),
            orphan: Mutex::new(None),
        })
    }

    fn beat(&self, shared: &Shared) {
        self.beat_ms.store(
            shared.started.elapsed().as_millis() as u64,
            Ordering::SeqCst,
        );
    }
}

/// A cached step recording for the replay tier: the program it was made
/// from plus the recording itself.
type ReplayEntry = (
    Arc<predsim_core::Program>,
    Arc<predsim_core::ProgramRecording>,
);

/// Most recordings the replay tier keeps warm.
const REPLAY_CACHE_CAP: usize = 32;

struct Shared {
    engine: Engine,
    queue: BoundedQueue<Job>,
    metrics: ServeMetrics,
    cost: CostModel,
    journal: Option<Journal>,
    draining: AtomicBool,
    supervisor_stop: AtomicBool,
    executing: AtomicUsize,
    /// Read halves of open connections, for shutdown on drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    workers: usize,
    request_timeout: Duration,
    max_body: usize,
    replay_at: usize,
    static_at: usize,
    stall_timeout: Duration,
    chaos: Option<ChaosPlan>,
    /// Chaos site counters: each decision consumes the next site, so a
    /// run is reproducible from (spec, seed) + request order alone.
    chaos_pop_site: AtomicU64,
    chaos_conn_site: AtomicU64,
    chaos_accept_site: AtomicU64,
    replays: Mutex<HashMap<String, ReplayEntry>>,
    started: Instant,
}

impl Shared {
    fn sync_gauges(&self) {
        self.metrics.queue_depth.set(self.queue.depth() as u64);
        self.metrics
            .in_flight
            .set(self.executing.load(Ordering::SeqCst) as u64);
    }

    /// A ready-to-send 429 with the computed `Retry-After`: the cost
    /// model's estimate of when the backlog in front of the client will
    /// have cleared (whole seconds, floor 1).
    fn too_busy(&self, message: &str) -> Response {
        let retry = self
            .cost
            .retry_after_secs(self.executing.load(Ordering::SeqCst), self.workers);
        Response::json(429, api::error_body(message)).with_header("Retry-After", &retry.to_string())
    }
}

/// Decrement `executing` even if the worker panics on the way out.
struct ExecGuard<'a>(&'a Shared);

impl<'a> ExecGuard<'a> {
    fn new(shared: &'a Shared) -> ExecGuard<'a> {
        shared.executing.fetch_add(1, Ordering::SeqCst);
        shared.sync_gauges();
        ExecGuard(shared)
    }
}

impl Drop for ExecGuard<'_> {
    fn drop(&mut self) {
        self.0.executing.fetch_sub(1, Ordering::SeqCst);
        self.0.sync_gauges();
    }
}

/// What [`ServerHandle::drain`] hands back once everything has stopped.
pub struct DrainReport {
    /// Final metrics snapshot, taken after the last worker exited — the
    /// counters cover every request the server ever answered.
    pub metrics: MetricsSnapshot,
}

/// A running server. Dropping the handle leaks the threads; call
/// [`ServerHandle::drain`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    registry: Arc<Registry>,
    acceptor: std::thread::JoinHandle<()>,
    supervisor: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics registry the server and its engine publish to.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// True once a drain has been requested — by [`ServerHandle::drain`]
    /// or by a client's `POST /admin/drain`.
    pub fn drain_requested(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Block until a drain is requested (the CLI parks here).
    pub fn wait_for_drain_request(&self) {
        while !self.drain_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stop gracefully: refuse new connections, let in-flight requests
    /// (including everything already admitted to the queue) finish, stop
    /// the workers and their supervisor, and return the final metrics.
    pub fn drain(self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake handlers blocked reading an idle keep-alive connection:
        // closing the read half turns their pending read into EOF while
        // leaving the write half alive for in-flight responses.
        for (_, stream) in self.shared.conns.lock().expect("conns poisoned").iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // The acceptor notices the flag, stops accepting, and joins every
        // handler thread (each finishes its current request first).
        self.acceptor.join().expect("acceptor panicked");
        // No handler is left to enqueue; close the queue so workers run
        // whatever was admitted. The supervisor keeps respawning dead
        // workers until the queue is truly drained, then stands down.
        self.shared.queue.close();
        self.shared.supervisor_stop.store(true, Ordering::SeqCst);
        self.supervisor.join().expect("supervisor panicked");
        self.shared.sync_gauges();
        DrainReport {
            // Engine::metrics_snapshot also publishes the final cache
            // gauges and flushes any trace sink.
            metrics: self.shared.engine.metrics_snapshot(),
        }
    }
}

/// The server. Start with [`Server::start`]; interact through the
/// returned [`ServerHandle`].
pub struct Server;

impl Server {
    /// Bind, spawn the worker pool and the acceptor, and return.
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        Server::start_with_registry(config, Arc::new(Registry::new()))
    }

    /// As [`Server::start`], but publishing to a caller-owned registry.
    pub fn start_with_registry(
        config: ServeConfig,
        registry: Arc<Registry>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let journal = match &config.journal {
            Some(path) => Some(Journal::create(path)?),
            None => None,
        };
        let engine = Engine::with_obs(
            config.engine.with_jobs(1),
            EngineObs::with_registry(Arc::clone(&registry)),
        );
        let workers = config.workers.max(1);
        let queue_cap = config.queue_cap.max(1);
        let replay_at = config.replay_at.unwrap_or((queue_cap / 2).max(1));
        let static_at = config
            .static_at
            .unwrap_or(replay_at.max(queue_cap * 3 / 4))
            .max(1);
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(queue_cap),
            metrics: ServeMetrics::new(Arc::clone(&registry)),
            cost: CostModel::new(),
            journal,
            draining: AtomicBool::new(false),
            supervisor_stop: AtomicBool::new(false),
            executing: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            workers,
            request_timeout: config.request_timeout,
            max_body: config.max_body,
            replay_at,
            static_at,
            stall_timeout: config.stall_timeout,
            chaos: config.chaos.filter(|p| !p.spec().is_none()),
            chaos_pop_site: AtomicU64::new(0),
            chaos_conn_site: AtomicU64::new(0),
            chaos_accept_site: AtomicU64::new(0),
            replays: Mutex::new(HashMap::new()),
            started: Instant::now(),
        });

        let pool: Vec<_> = (0..workers).map(|i| spawn_worker(&shared, i)).collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared, pool, workers))
                .expect("spawning supervisor")
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || acceptor_loop(listener, &shared))
                .expect("spawning acceptor")
        };
        Ok(ServerHandle {
            addr,
            shared,
            registry,
            acceptor,
            supervisor,
        })
    }
}

fn spawn_worker(
    shared: &Arc<Shared>,
    id: usize,
) -> (std::thread::JoinHandle<()>, Arc<WorkerState>) {
    let state = WorkerState::new();
    state.beat(shared);
    let handle = {
        let shared = Arc::clone(shared);
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name(format!("serve-worker-{id}"))
            .spawn(move || worker_loop(&shared, &state))
            .expect("spawning worker")
    };
    (handle, state)
}

fn worker_loop(shared: &Shared, state: &WorkerState) {
    loop {
        if state.superseded.load(Ordering::SeqCst) {
            return;
        }
        let Some(job) = shared.queue.pop() else {
            return;
        };
        state.beat(shared);
        state.busy.store(true, Ordering::SeqCst);
        shared.cost.on_leave_queue(job.est_ns);
        let guard = ExecGuard::new(shared);
        // Park an orphan copy first, so a death anywhere past this point
        // leaves the supervisor everything it needs to keep the
        // admitted ⇒ answered invariant.
        *state.orphan.lock().expect("orphan poisoned") = Some(job.orphan_copy());
        if let Some(plan) = &shared.chaos {
            let site = shared.chaos_pop_site.fetch_add(1, Ordering::SeqCst);
            if plan.worker_panic(site) {
                shared.metrics.chaos("panic");
                panic!("chaos: injected worker panic at site {site}");
            }
            if let Some(ms) = plan.worker_stall(site) {
                shared.metrics.chaos("stall");
                // Heartbeat deliberately frozen: this is what the
                // supervisor's stall detector looks for.
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        let reply = match (&job.deadline, &job.work) {
            // The deadline passed while the job sat in the queue: the
            // handler answers at a degraded tier instead of burning a
            // worker on an answer the client already gave up on.
            (Some(dl), Work::Predict(_)) if Instant::now() >= *dl => {
                shared.metrics.shed("expired");
                Reply::Shed
            }
            (_, Work::Predict(_)) => {
                let Work::Predict(spec) = job.work else {
                    unreachable!()
                };
                let exec_started = Instant::now();
                // jobs=1 runs inline on this thread; the engine's per-job
                // catch_unwind turns job panics into `crashed` results,
                // so the reply slot is always filled.
                let mut results = shared.engine.run(std::slice::from_ref(&*spec));
                let result = results.pop().expect("engine returns one result per spec");
                if let Some(journal) = &shared.journal {
                    journal.record(&result);
                }
                let exec_ns = exec_started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                Reply::Predict(result, exec_ns)
            }
            (_, Work::Calibrate(_)) => {
                let Work::Calibrate(request) = job.work else {
                    unreachable!()
                };
                Reply::Calibrate(Box::new(run_calibration(shared, &request)))
            }
            (_, Work::Speedup(_)) => {
                let Work::Speedup(request) = job.work else {
                    unreachable!()
                };
                Reply::Speedup(Box::new(run_speedup(&request)))
            }
        };
        job.reply.fill(job.slot, reply);
        *state.orphan.lock().expect("orphan poisoned") = None;
        drop(guard);
        state.busy.store(false, Ordering::SeqCst);
        state.beat(shared);
    }
}

/// The supervisor: respawn dead workers (re-enqueueing the orphaned job
/// once), backfill stalled ones, and during drain keep the pool alive
/// until the queue is truly empty.
fn supervisor_loop(
    shared: &Arc<Shared>,
    mut pool: Vec<(std::thread::JoinHandle<()>, Arc<WorkerState>)>,
    mut next_id: usize,
) {
    loop {
        let stopping = shared.supervisor_stop.load(Ordering::SeqCst);
        let mut i = 0;
        while i < pool.len() {
            if pool[i].0.is_finished() {
                let (handle, state) = pool.remove(i);
                let panicked = handle.join().is_err();
                if panicked {
                    shared.metrics.restarts.inc();
                    let orphan = state.orphan.lock().expect("orphan poisoned").take();
                    if let Some(mut job) = orphan {
                        if job.requeued {
                            // Second death on the same job: stop retrying
                            // and answer it, so the handler never hangs.
                            fill_crashed(job);
                        } else {
                            job.requeued = true;
                            shared.cost.on_admit(job.est_ns);
                            shared.queue.requeue_front(job);
                            shared.sync_gauges();
                        }
                    }
                    // Respawn at full strength — even during drain the
                    // queue may still hold admitted (or just requeued)
                    // work that must run.
                    if !shared.queue.is_drained() {
                        pool.push(spawn_worker(shared, next_id));
                        next_id += 1;
                    }
                }
                // A clean exit is a drained worker: not respawned.
            } else {
                let state = &pool[i].1;
                if state.busy.load(Ordering::SeqCst) && !state.superseded.load(Ordering::SeqCst) {
                    let beat = state.beat_ms.load(Ordering::SeqCst);
                    let now = shared.started.elapsed().as_millis() as u64;
                    if now.saturating_sub(beat) > shared.stall_timeout.as_millis() as u64 {
                        // Stalled (or just very slow): backfill with a
                        // fresh thread so throughput recovers; the
                        // stalled worker finishes its job (its reply is
                        // still valid) and exits at its next loop turn.
                        state.superseded.store(true, Ordering::SeqCst);
                        shared.metrics.restarts.inc();
                        pool.push(spawn_worker(shared, next_id));
                        next_id += 1;
                    }
                }
                i += 1;
            }
        }
        if stopping && pool.is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Answer a job whose worker died twice: the handler gets the same
/// `crashed` shape an engine-caught panic produces, so admitted work is
/// always answered.
fn fill_crashed(job: Job) {
    let reply = match &job.work {
        Work::Predict(spec) => Reply::Predict(
            JobResult {
                index: 0,
                label: spec.label.clone(),
                outcome: JobOutcome::Crashed {
                    message: "worker thread died while running this job \
                              (re-enqueued once, then died again)"
                        .into(),
                    attempts: 2,
                },
            },
            0,
        ),
        Work::Calibrate(_) => Reply::Calibrate(Box::new(Err(
            "worker thread died twice while calibrating".into(),
        ))),
        Work::Speedup(_) => Reply::Speedup(Box::new(Err(
            "worker thread died twice while sweeping".into(),
        ))),
    };
    job.reply.fill(job.slot, reply);
}

/// Execute one calibration on a worker: emulate the source, fit a
/// preset on the shared engine (reusing its memo cache), publish the
/// `calib_*` metrics, and register the preset when asked to. Panics
/// anywhere inside become an `Err`, not a dead worker.
fn run_calibration(shared: &Shared, request: &api::CalibrateRequest) -> CalibrationOutcome {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let set = predsim_calib::measure(
            &request.program,
            &request.loads,
            &request.source,
            &request.machine,
            &request.measure,
        );
        predsim_calib::calibrate(&request.program, &set, &shared.engine, &request.fit)
    }));
    let report = match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => return Err(e),
        Err(_) => return Err("calibration panicked".into()),
    };
    predsim_calib::export_metrics(&shared.metrics.registry, &report);
    let registered = request.register.as_ref().map(|name| {
        if !report.converged {
            return Err("fit did not converge; preset not registered".to_string());
        }
        loggp::registry::register(name, report.params).map(|()| name.clone())
    });
    Ok((report, registered))
}

/// Execute one speedup sweep on a worker. The sweep simulates the DAG
/// once per requested processor count; panics anywhere inside become an
/// `Err`, not a dead worker.
fn run_speedup(request: &api::SpeedupRequest) -> Result<predsim_dag::SweepReport, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        predsim_dag::sweep(
            &request.dag,
            request.scheduler,
            &request.machine,
            &request.spec,
            &request.procs,
        )
    }))
    .unwrap_or_else(|_| Err("speedup sweep panicked".into()))
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Some(plan) = &shared.chaos {
                    let site = shared.chaos_accept_site.fetch_add(1, Ordering::SeqCst);
                    if let Some(ms) = plan.accept_hiccup(site) {
                        shared.metrics.chaos("hiccup");
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                if stream.set_nonblocking(false).is_err()
                    || stream
                        .set_read_timeout(Some(shared.request_timeout))
                        .is_err()
                    || stream
                        .set_write_timeout(Some(shared.request_timeout))
                        .is_err()
                {
                    continue;
                }
                let shared = Arc::clone(shared);
                handlers.push(
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawning handler"),
                );
                // Reap finished handlers so a long-lived server does not
                // accumulate join handles.
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    drop(listener);
    for handler in handlers {
        handler.join().expect("handler panicked");
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
    if let Ok(clone) = stream.try_clone() {
        shared
            .conns
            .lock()
            .expect("conns poisoned")
            .insert(conn_id, clone);
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = HttpReader::new(stream);
    loop {
        let request = match reader.read_request(shared.max_body) {
            Ok(req) => req,
            Err(RequestError::Closed) | Err(RequestError::Timeout) | Err(RequestError::Io(_)) => {
                break;
            }
            Err(RequestError::TooLarge) => {
                let resp = Response::json(413, api::error_body("request too large"));
                let _ = resp.write_to(&mut writer, false);
                shared.metrics.record("other", 413, Duration::ZERO);
                break;
            }
            Err(RequestError::Malformed(why)) => {
                let resp =
                    Response::json(400, api::error_body(&format!("malformed request: {why}")));
                let _ = resp.write_to(&mut writer, false);
                shared.metrics.record("other", 400, Duration::ZERO);
                break;
            }
        };
        if let Some(plan) = &shared.chaos {
            // Mid-request connection drop: the request was read but is
            // severed before admission, so nothing is ever admitted for
            // it — the client sees a reset and retries.
            let site = shared.chaos_conn_site.fetch_add(1, Ordering::SeqCst);
            if plan.conn_drop(site) {
                shared.metrics.chaos("drop-conn");
                let _ = writer.shutdown(Shutdown::Both);
                break;
            }
        }
        let started = Instant::now();
        let keep_alive = request.wants_keep_alive() && !shared.draining.load(Ordering::SeqCst);
        let (endpoint, response) = route(&request, shared);
        let status = response.status;
        if response.write_to(&mut writer, keep_alive).is_err() {
            shared.metrics.record(endpoint, status, started.elapsed());
            break;
        }
        shared.metrics.record(endpoint, status, started.elapsed());
        if !keep_alive {
            break;
        }
    }
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .remove(&conn_id);
}

/// Dispatch one request. Returns the endpoint label used in metrics and
/// the response to send.
fn route(request: &Request, shared: &Shared) -> (&'static str, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/predict") => ("/v1/predict", predict(request, shared)),
        ("POST", "/v1/estimate") => ("/v1/estimate", estimate(request)),
        ("POST", "/v1/batch") => ("/v1/batch", batch(request, shared)),
        ("POST", "/v1/calibrate") => ("/v1/calibrate", calibrate(request, shared)),
        ("POST", "/v1/speedup") => ("/v1/speedup", speedup(request, shared)),
        ("POST", "/admin/drain") => ("/admin/drain", drain_request(shared)),
        ("GET", "/healthz") => ("/healthz", healthz(shared)),
        ("GET", "/metrics") => (
            "/metrics",
            Response::text(200, snapshot(shared).to_prometheus()),
        ),
        ("GET", "/metrics.json") => (
            "/metrics.json",
            Response::json(200, snapshot(shared).to_json()),
        ),
        (
            _,
            "/v1/predict" | "/v1/estimate" | "/v1/batch" | "/v1/calibrate" | "/v1/speedup"
            | "/admin/drain" | "/healthz" | "/metrics" | "/metrics.json",
        ) => (
            "other",
            Response::json(405, api::error_body("method not allowed")),
        ),
        _ => ("other", Response::json(404, api::error_body("not found"))),
    }
}

/// A metrics snapshot with the serve gauges freshly synced. Goes through
/// [`Engine::metrics_snapshot`] so the engine's cache gauges are fresh
/// too.
fn snapshot(shared: &Shared) -> MetricsSnapshot {
    shared.sync_gauges();
    shared.engine.metrics_snapshot()
}

fn healthz(shared: &Shared) -> Response {
    use predsim_lint::json::Value;
    let draining = shared.draining.load(Ordering::SeqCst);
    let body = Value::Object(vec![
        (
            "status".into(),
            Value::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        (
            "queue_depth".into(),
            Value::Int(shared.queue.depth() as i64),
        ),
        (
            "in_flight".into(),
            Value::Int(shared.executing.load(Ordering::SeqCst) as i64),
        ),
        ("workers".into(), Value::Int(shared.workers as i64)),
        (
            "worker_restarts".into(),
            Value::Int(shared.metrics.restarts.get() as i64),
        ),
    ]);
    Response::json(200, body.to_compact())
}

fn drain_request(shared: &Shared) -> Response {
    shared.draining.store(true, Ordering::SeqCst);
    Response::json(200, "{\"draining\":true}")
}

/// One unit of work plus its admission metadata, ready to enqueue.
struct Admit {
    work: Work,
    est_ns: u64,
    hi_ps: u64,
    deadline: Option<Instant>,
    sheddable: bool,
}

impl Admit {
    fn plain(work: Work, est_ns: u64) -> Admit {
        Admit {
            work,
            est_ns,
            hi_ps: 0,
            deadline: None,
            sheddable: false,
        }
    }
}

/// Admit work (all-or-nothing), wait for the results. `Err` is the
/// ready-to-send backpressure or shutdown response.
fn admit_and_run(shared: &Shared, admits: Vec<Admit>) -> Result<Vec<Reply>, Response> {
    let reply = ReplySlot::new(admits.len());
    let total_est: u64 = admits.iter().map(|a| a.est_ns).sum();
    let batch: Vec<Job> = admits
        .into_iter()
        .enumerate()
        .map(|(slot, a)| Job {
            work: a.work,
            reply: Arc::clone(&reply),
            slot,
            est_ns: a.est_ns,
            hi_ps: a.hi_ps,
            deadline: a.deadline,
            sheddable: a.sheddable,
            requeued: false,
        })
        .collect();
    match shared.queue.try_push_all(batch) {
        Ok(()) => {
            shared.cost.on_admit(total_est);
            shared.sync_gauges();
            Ok(reply.wait())
        }
        Err((_, PushError::Full)) => {
            shared.metrics.shed("queue-full");
            Err(shared.too_busy("admission queue is full; retry later"))
        }
        Err((_, PushError::Closed)) => {
            Err(Response::json(503, api::error_body("server is draining")))
        }
    }
}

/// Serve one predict from the replay tier if possible: a cached step
/// recording (or one recorded right here, once, off the queue) replayed
/// under the request's options. `ProgramRecording::predict` verifies
/// every step and transparently resimulates mismatches, so the totals
/// are bit-identical to a full simulation — only the `tier` field tells
/// the client it skipped the queue.
fn try_replay(shared: &Shared, name: &str, spec: &JobSpec) -> Option<Response> {
    let o = &spec.opts;
    let p = o.cfg.params;
    let key = format!(
        "{name}|{},{},{},{},{}|{:?}|{:?}|{:?}|{:?}|{}",
        p.latency.as_ps(),
        p.overhead.as_ps(),
        p.gap.as_ps(),
        p.gap_per_byte.as_ps(),
        p.procs,
        o.algo,
        o.sync,
        o.overlap,
        o.cfg.gap_rule,
        o.cfg.seed,
    );
    let cached = shared
        .replays
        .lock()
        .expect("replay cache poisoned")
        .get(&key)
        .cloned();
    let (program, recording) = match cached {
        Some(entry) => entry,
        None => {
            // One full simulation on this handler thread, amortized over
            // every later hit. Holds no lock while simulating.
            let (_, recording, program) = predsim_engine::record_job(spec)?;
            let entry = (program, Arc::new(recording));
            let mut cache = shared.replays.lock().expect("replay cache poisoned");
            if cache.len() >= REPLAY_CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, entry.clone());
            entry
        }
    };
    let (prediction, _stats) = recording.predict(&program, o);
    let result = JobResult {
        index: 0,
        label: spec.label.clone(),
        outcome: JobOutcome::Done {
            prediction,
            attempts: 1,
        },
    };
    let bounds = predsim_engine::static_bounds(spec);
    shared.metrics.tier(api::Tier::Replay);
    Some(Response::json(
        200,
        api::render_predict(&result, bounds.as_ref(), api::Tier::Replay),
    ))
}

fn predict(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, api::error_body("server is draining"));
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let req = match api::parse_predict(body) {
        Ok(req) => req,
        Err(e) => return Response::json(e.status, e.body),
    };
    let gate = (req.name.clone(), req.spec.clone());
    if let Err(e) = api::check_jobs(std::slice::from_ref(&gate)) {
        return Response::json(e.status, e.body);
    }
    let spec = req.spec;
    // Jobs the static analyzer can bracket are the ones the degraded
    // tiers can serve; faulted or infeasible jobs only have the full
    // path.
    let degradable = spec.faults.is_none() && spec.source.validate().is_ok();

    // The tier ladder: past the high watermarks, answer without queueing.
    let depth = shared.queue.depth();
    if depth >= shared.static_at {
        if degradable {
            if let Some(b) = predsim_engine::static_bounds(&spec) {
                shared.metrics.tier(api::Tier::Static);
                return Response::json(200, api::render_predict_static(&spec.label, &b));
            }
        }
    } else if depth >= shared.replay_at && degradable && req.name != "trace" {
        if let Some(resp) = try_replay(shared, &req.name, &spec) {
            return resp;
        }
    }

    // Deadline-aware admission for the full tier.
    let mut bounds: Option<predsim_lint::ProgramBounds> = None;
    let mut est_ns = shared.cost.est_job_ns(0);
    let mut hi_ps = 0;
    let mut deadline = None;
    if let Some(ms) = req.deadline_ms {
        if degradable {
            bounds = predsim_engine::static_bounds(&spec);
        }
        hi_ps = bounds.as_ref().map_or(0, |b| b.hi.as_ps());
        est_ns = shared.cost.est_job_ns(hi_ps);
        let budget_ns = ms.saturating_mul(1_000_000);
        let late = || {
            shared
                .cost
                .drain_estimate_ns(shared.executing.load(Ordering::SeqCst), shared.workers)
                .saturating_add(est_ns)
                > budget_ns
        };
        if late() {
            // Shed the newest deadline-less work first: each victim's
            // handler answers at the static tier, freeing queue time for
            // the deadline in front of us.
            while late() {
                match shared.queue.shed_newest_where(|j| j.sheddable) {
                    Some(victim) => {
                        shared.cost.on_leave_queue(victim.est_ns);
                        shared.metrics.shed("deadline-victim");
                        victim.reply.fill(victim.slot, Reply::Shed);
                    }
                    None => break,
                }
            }
            shared.sync_gauges();
        }
        if late() {
            // Provably late even after shedding: degrade now (the static
            // answer is instant) or refuse with the computed horizon.
            if let Some(b) = &bounds {
                shared.metrics.tier(api::Tier::Static);
                return Response::json(200, api::render_predict_static(&spec.label, b));
            }
            shared.metrics.shed("deadline-reject");
            return shared.too_busy("deadline cannot be met; retry later");
        }
        deadline = Some(Instant::now() + Duration::from_millis(ms));
    }

    let for_bounds = spec.clone();
    let admit = Admit {
        work: Work::Predict(Box::new(spec)),
        est_ns,
        hi_ps,
        deadline,
        sheddable: deadline.is_none(),
    };
    match admit_and_run(shared, vec![admit]) {
        Ok(mut replies) => match replies.pop() {
            Some(Reply::Predict(result, exec_ns)) => {
                // The static interval is computed on the request thread
                // after the simulation returns (unless the deadline path
                // already needed it): it never delays the enqueue, and
                // shed requests never pay for it.
                let bounds = bounds.or_else(|| predsim_engine::static_bounds(&for_bounds));
                if exec_ns > 0 {
                    shared
                        .cost
                        .observe(exec_ns, bounds.as_ref().map_or(0, |b| b.hi.as_ps()));
                }
                shared.metrics.tier(api::Tier::Full);
                Response::json(
                    200,
                    api::render_predict(&result, bounds.as_ref(), api::Tier::Full),
                )
            }
            Some(Reply::Shed) => {
                // Admitted, then evicted by a deadline admission or
                // expired in the queue: still answered, at the static
                // tier when the analyzer can bracket the job.
                let bounds = bounds.or_else(|| predsim_engine::static_bounds(&for_bounds));
                match bounds {
                    Some(b) => {
                        shared.metrics.tier(api::Tier::Static);
                        Response::json(200, api::render_predict_static(&for_bounds.label, &b))
                    }
                    None => shared.too_busy("shed under overload; retry later"),
                }
            }
            _ => Response::json(500, api::error_body("worker returned the wrong reply kind")),
        },
        Err(resp) => resp,
    }
}

/// `POST /v1/estimate`: the static cost interval for a job, no
/// simulation and no queueing — the analyzer runs right here on the
/// request thread in time proportional to the program text, so the
/// endpoint answers even while the workers are saturated. The
/// `bounds` object is byte-identical to what `predsim check --bounds
/// --json` emits for the same job, and the unavailability reasons
/// ("infeasible spec", "fault injection voids the static bounds",
/// "program is malformed") match the CLI's too.
fn estimate(request: &Request) -> Response {
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let req = match api::parse_predict(body) {
        Ok(req) => req,
        Err(e) => return Response::json(e.status, e.body),
    };
    let (name, spec) = (req.name, req.spec);
    let rendered = if spec.faults.is_some() {
        api::render_estimate(&name, Err("fault injection voids the static bounds"))
    } else if spec.source.validate().is_err() {
        api::render_estimate(&name, Err("infeasible spec"))
    } else {
        match predsim_engine::static_bounds(&spec) {
            Some(b) => api::render_estimate(&name, Ok(&b)),
            None => api::render_estimate(&name, Err("program is malformed")),
        }
    };
    Response::json(200, rendered)
}

fn calibrate(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, api::error_body("server is draining"));
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let parsed = match api::parse_calibrate(body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::json(e.status, e.body),
    };
    // The same pre-run gate as /v1/predict: a source the engine would
    // refuse to run is refused here, with the same 422 document.
    let gate = JobSpec::new(
        parsed.source.clone(),
        predsim_engine::JobSource::Program(Arc::clone(&parsed.program)),
        predsim_core::SimOptions::new(commsim::SimConfig::new(parsed.fit.initial)),
    );
    if let Err(e) = api::check_jobs(std::slice::from_ref(&(parsed.source.clone(), gate))) {
        return Response::json(e.status, e.body);
    }
    let est = shared.cost.est_job_ns(0);
    match admit_and_run(
        shared,
        vec![Admit::plain(Work::Calibrate(Box::new(parsed)), est)],
    ) {
        Ok(mut replies) => match replies.pop() {
            Some(Reply::Calibrate(outcome)) => match *outcome {
                Ok((report, registered)) => {
                    Response::json(200, api::render_calibrate(&report, registered.as_ref()))
                }
                Err(why) => Response::json(422, api::error_body(&why)),
            },
            _ => Response::json(500, api::error_body("worker returned the wrong reply kind")),
        },
        Err(resp) => resp,
    }
}

fn speedup(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, api::error_body("server is draining"));
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let parsed = match api::parse_speedup(body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::json(e.status, e.body),
    };
    // The same pre-run gate as /v1/predict, applied to the schedule the
    // sweep will simulate at its largest processor count: a lowered
    // program the engine would refuse to run is refused here, with the
    // same 422 document.
    let placement = parsed.scheduler.place(&parsed.dag, &parsed.spec);
    let lowered = predsim_dag::lower(&parsed.dag, &placement, &parsed.spec);
    let label = format!("dag:{}", parsed.dag.name());
    let gate = JobSpec::new(
        label.clone(),
        predsim_engine::JobSource::Program(Arc::new(lowered.program)),
        predsim_core::SimOptions::new(commsim::SimConfig::new(parsed.spec.base)),
    );
    if let Err(e) = api::check_jobs(std::slice::from_ref(&(label, gate))) {
        return Response::json(e.status, e.body);
    }
    let est = shared.cost.est_job_ns(0);
    match admit_and_run(
        shared,
        vec![Admit::plain(Work::Speedup(Box::new(parsed)), est)],
    ) {
        Ok(mut replies) => match replies.pop() {
            Some(Reply::Speedup(outcome)) => match *outcome {
                Ok(report) => Response::json(200, api::render_speedup(&report)),
                Err(why) => Response::json(422, api::error_body(&why)),
            },
            _ => Response::json(500, api::error_body("worker returned the wrong reply kind")),
        },
        Err(resp) => resp,
    }
}

fn batch(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, api::error_body("server is draining"));
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let jobs = match api::parse_batch(body).and_then(|jobs| api::check_jobs(&jobs).map(|()| jobs)) {
        Ok(jobs) => jobs,
        Err(e) => return Response::json(e.status, e.body),
    };
    let est = shared.cost.est_job_ns(0);
    let work = jobs
        .into_iter()
        .map(|(_, spec)| Admit::plain(Work::Predict(Box::new(spec)), est))
        .collect();
    match admit_and_run(shared, work) {
        Ok(replies) => {
            let mut results = Vec::with_capacity(replies.len());
            for reply in replies {
                match reply {
                    Reply::Predict(result, exec_ns) => {
                        if exec_ns > 0 {
                            shared.cost.observe(exec_ns, 0);
                        }
                        results.push(result);
                    }
                    _ => {
                        return Response::json(
                            500,
                            api::error_body("worker returned the wrong reply kind"),
                        )
                    }
                }
            }
            Response::json(200, api::render_batch(&results))
        }
        Err(resp) => resp,
    }
}
