//! The server proper: acceptor, connection handlers, worker pool, drain.
//!
//! Thread layout:
//!
//! ```text
//! acceptor ──spawns──▶ handler (one per connection, keep-alive loop)
//!                         │ parse + lint, then admission:
//!                         │   queue.try_push ──▶ 429 when full
//!                         ▼
//!                     BoundedQueue ◀──pop── worker × N ──▶ Engine::run
//!                         ▲                      │
//!                         └── reply slot ◀──────┘
//! ```
//!
//! Every prediction goes through the one shared [`Engine`], so the memo
//! cache, journal, and metrics registry see the server's whole lifetime.
//! Drain is cooperative and loses nothing that was admitted: the
//! acceptor stops accepting, the read half of every open connection is
//! shut down (a handler blocked in a read sees EOF and exits; a handler
//! waiting for a worker reply still owns a working write half), handlers
//! are joined, then the queue is closed and workers finish whatever was
//! queued before exiting.

use crate::api;
use crate::http::{HttpReader, Request, RequestError, Response};
use crate::queue::{BoundedQueue, PushError};
use predsim_engine::{Engine, EngineConfig, EngineObs, JobResult, JobSpec, Journal};
use predsim_obs::{default_ns_buckets, Gauge, Histogram, MetricsSnapshot, Registry};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Prediction worker threads.
    pub workers: usize,
    /// Admission-queue capacity; beyond it requests get `429`.
    pub queue_cap: usize,
    /// Socket read/write timeout — bounds both a slow request and an
    /// idle keep-alive connection.
    pub request_timeout: Duration,
    /// Largest request body accepted (bytes); beyond it, `413`.
    pub max_body: usize,
    /// Engine configuration (workers each run jobs inline, so its `jobs`
    /// is forced to 1).
    pub engine: EngineConfig,
    /// Append every finished job to this checkpoint journal.
    pub journal: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 32,
            request_timeout: Duration::from_secs(30),
            max_body: 1 << 20,
            engine: EngineConfig::default(),
            journal: None,
        }
    }
}

/// What one admitted queue entry asks a worker to do.
enum Work {
    /// Run one prediction job through the engine.
    Predict(JobSpec),
    /// Measure a source on the emulator and fit a LogGP preset to it
    /// (`POST /v1/calibrate`). Boxed: a calibration carries its whole
    /// measured configuration and is rare next to predictions.
    Calibrate(Box<api::CalibrateRequest>),
}

/// One admitted unit of work: what to do plus the slot its handler is
/// waiting on.
struct Job {
    work: Work,
    reply: Arc<ReplySlot>,
    slot: usize,
}

/// What one calibration produced: the fit report plus what happened to
/// a requested preset registration (`None` when none was asked for);
/// the outer `Err` is a calibration that failed outright (or panicked —
/// workers catch it).
type CalibrationOutcome =
    Result<(predsim_calib::FitReport, Option<Result<String, String>>), String>;

/// What a worker hands back for one unit of work.
enum Reply {
    Predict(JobResult),
    Calibrate(Box<CalibrationOutcome>),
}

/// Where a worker leaves results for the waiting handler. One slot per
/// request: a batch of `n` jobs shares a slot expecting `n` results.
struct ReplySlot {
    results: Mutex<Vec<Option<Reply>>>,
    done: Condvar,
}

impl ReplySlot {
    fn new(n: usize) -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            results: Mutex::new((0..n).map(|_| None).collect()),
            done: Condvar::new(),
        })
    }

    fn fill(&self, slot: usize, result: Reply) {
        let mut results = self.results.lock().expect("reply slot poisoned");
        results[slot] = Some(result);
        drop(results);
        self.done.notify_all();
    }

    /// Wait until every slot is filled. Unbounded: every admitted job is
    /// guaranteed a result (the engine turns panics into `crashed`
    /// outcomes, calibrations are run under `catch_unwind`, and drain
    /// never abandons the queue).
    fn wait(&self) -> Vec<Reply> {
        let mut results = self.results.lock().expect("reply slot poisoned");
        loop {
            if results.iter().all(Option::is_some) {
                return results.iter_mut().map(|r| r.take().unwrap()).collect();
            }
            results = self.done.wait(results).expect("reply slot poisoned");
        }
    }
}

/// The serve-layer metrics, on the same registry the engine publishes to.
struct ServeMetrics {
    registry: Arc<Registry>,
    queue_depth: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    wall: Arc<Histogram>,
}

impl ServeMetrics {
    fn new(registry: Arc<Registry>) -> ServeMetrics {
        let queue_depth = registry.gauge(
            "serve_queue_depth",
            "prediction jobs waiting in the admission queue",
        );
        let in_flight = registry.gauge(
            "serve_jobs_in_flight",
            "prediction jobs currently executing on a worker",
        );
        let wall = registry.histogram(
            "serve_request_wall_ns",
            "wall time from request parsed to response written, ns",
            &default_ns_buckets(),
        );
        ServeMetrics {
            registry,
            queue_depth,
            in_flight,
            wall,
        }
    }

    /// Count one finished request, by status code and endpoint.
    fn record(&self, endpoint: &'static str, status: u16, wall: Duration) {
        self.registry
            .counter_with(
                "serve_requests_total",
                &[("code", &status.to_string())],
                "HTTP responses sent, by status code",
            )
            .inc();
        self.registry
            .counter_with(
                "serve_endpoint_requests_total",
                &[("endpoint", endpoint)],
                "HTTP responses sent, by endpoint",
            )
            .inc();
        self.wall
            .observe(wall.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
}

struct Shared {
    engine: Engine,
    queue: BoundedQueue<Job>,
    metrics: ServeMetrics,
    journal: Option<Journal>,
    draining: AtomicBool,
    executing: AtomicUsize,
    /// Read halves of open connections, for shutdown on drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    workers: usize,
    request_timeout: Duration,
    max_body: usize,
}

impl Shared {
    fn sync_gauges(&self) {
        self.metrics.queue_depth.set(self.queue.depth() as u64);
        self.metrics
            .in_flight
            .set(self.executing.load(Ordering::SeqCst) as u64);
    }
}

/// What [`ServerHandle::drain`] hands back once everything has stopped.
pub struct DrainReport {
    /// Final metrics snapshot, taken after the last worker exited — the
    /// counters cover every request the server ever answered.
    pub metrics: MetricsSnapshot,
}

/// A running server. Dropping the handle leaks the threads; call
/// [`ServerHandle::drain`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    registry: Arc<Registry>,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics registry the server and its engine publish to.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// True once a drain has been requested — by [`ServerHandle::drain`]
    /// or by a client's `POST /admin/drain`.
    pub fn drain_requested(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Block until a drain is requested (the CLI parks here).
    pub fn wait_for_drain_request(&self) {
        while !self.drain_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stop gracefully: refuse new connections, let in-flight requests
    /// (including everything already admitted to the queue) finish, stop
    /// the workers, and return the final metrics.
    pub fn drain(self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake handlers blocked reading an idle keep-alive connection:
        // closing the read half turns their pending read into EOF while
        // leaving the write half alive for in-flight responses.
        for (_, stream) in self.shared.conns.lock().expect("conns poisoned").iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // The acceptor notices the flag, stops accepting, and joins every
        // handler thread (each finishes its current request first).
        self.acceptor.join().expect("acceptor panicked");
        // No handler is left to enqueue; close the queue so workers run
        // whatever was admitted, then exit.
        self.shared.queue.close();
        for worker in self.workers {
            worker.join().expect("worker panicked");
        }
        self.shared.sync_gauges();
        DrainReport {
            // Engine::metrics_snapshot also publishes the final cache
            // gauges and flushes any trace sink.
            metrics: self.shared.engine.metrics_snapshot(),
        }
    }
}

/// The server. Start with [`Server::start`]; interact through the
/// returned [`ServerHandle`].
pub struct Server;

impl Server {
    /// Bind, spawn the worker pool and the acceptor, and return.
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        Server::start_with_registry(config, Arc::new(Registry::new()))
    }

    /// As [`Server::start`], but publishing to a caller-owned registry.
    pub fn start_with_registry(
        config: ServeConfig,
        registry: Arc<Registry>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let journal = match &config.journal {
            Some(path) => Some(Journal::create(path)?),
            None => None,
        };
        let engine = Engine::with_obs(
            config.engine.with_jobs(1),
            EngineObs::with_registry(Arc::clone(&registry)),
        );
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            queue: BoundedQueue::new(config.queue_cap),
            metrics: ServeMetrics::new(Arc::clone(&registry)),
            journal,
            draining: AtomicBool::new(false),
            executing: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            workers,
            request_timeout: config.request_timeout,
            max_body: config.max_body,
        });

        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || acceptor_loop(listener, &shared))
                .expect("spawning acceptor")
        };
        Ok(ServerHandle {
            addr,
            shared,
            registry,
            acceptor,
            workers: worker_handles,
        })
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.executing.fetch_add(1, Ordering::SeqCst);
        shared.sync_gauges();
        let reply = match job.work {
            Work::Predict(spec) => {
                // jobs=1 runs inline on this thread; the engine's per-job
                // catch_unwind turns panics into `crashed` results, so the
                // reply slot is always filled.
                let mut results = shared.engine.run(std::slice::from_ref(&spec));
                let result = results.pop().expect("engine returns one result per spec");
                if let Some(journal) = &shared.journal {
                    journal.record(&result);
                }
                Reply::Predict(result)
            }
            Work::Calibrate(request) => {
                Reply::Calibrate(Box::new(run_calibration(shared, &request)))
            }
        };
        job.reply.fill(job.slot, reply);
        shared.executing.fetch_sub(1, Ordering::SeqCst);
        shared.sync_gauges();
    }
}

/// Execute one calibration on a worker: emulate the source, fit a
/// preset on the shared engine (reusing its memo cache), publish the
/// `calib_*` metrics, and register the preset when asked to. Panics
/// anywhere inside become an `Err`, not a dead worker.
fn run_calibration(shared: &Shared, request: &api::CalibrateRequest) -> CalibrationOutcome {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let set = predsim_calib::measure(
            &request.program,
            &request.loads,
            &request.source,
            &request.machine,
            &request.measure,
        );
        predsim_calib::calibrate(&request.program, &set, &shared.engine, &request.fit)
    }));
    let report = match outcome {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => return Err(e),
        Err(_) => return Err("calibration panicked".into()),
    };
    predsim_calib::export_metrics(&shared.metrics.registry, &report);
    let registered = request.register.as_ref().map(|name| {
        if !report.converged {
            return Err("fit did not converge; preset not registered".to_string());
        }
        loggp::registry::register(name, report.params).map(|()| name.clone())
    });
    Ok((report, registered))
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err()
                    || stream
                        .set_read_timeout(Some(shared.request_timeout))
                        .is_err()
                    || stream
                        .set_write_timeout(Some(shared.request_timeout))
                        .is_err()
                {
                    continue;
                }
                let shared = Arc::clone(shared);
                handlers.push(
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawning handler"),
                );
                // Reap finished handlers so a long-lived server does not
                // accumulate join handles.
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    drop(listener);
    for handler in handlers {
        handler.join().expect("handler panicked");
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
    if let Ok(clone) = stream.try_clone() {
        shared
            .conns
            .lock()
            .expect("conns poisoned")
            .insert(conn_id, clone);
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = HttpReader::new(stream);
    loop {
        let request = match reader.read_request(shared.max_body) {
            Ok(req) => req,
            Err(RequestError::Closed) | Err(RequestError::Timeout) | Err(RequestError::Io(_)) => {
                break;
            }
            Err(RequestError::TooLarge) => {
                let resp = Response::json(413, api::error_body("request too large"));
                let _ = resp.write_to(&mut writer, false);
                shared.metrics.record("other", 413, Duration::ZERO);
                break;
            }
            Err(RequestError::Malformed(why)) => {
                let resp =
                    Response::json(400, api::error_body(&format!("malformed request: {why}")));
                let _ = resp.write_to(&mut writer, false);
                shared.metrics.record("other", 400, Duration::ZERO);
                break;
            }
        };
        let started = Instant::now();
        let keep_alive = request.wants_keep_alive() && !shared.draining.load(Ordering::SeqCst);
        let (endpoint, response) = route(&request, shared);
        let status = response.status;
        if response.write_to(&mut writer, keep_alive).is_err() {
            shared.metrics.record(endpoint, status, started.elapsed());
            break;
        }
        shared.metrics.record(endpoint, status, started.elapsed());
        if !keep_alive {
            break;
        }
    }
    shared
        .conns
        .lock()
        .expect("conns poisoned")
        .remove(&conn_id);
}

/// Dispatch one request. Returns the endpoint label used in metrics and
/// the response to send.
fn route(request: &Request, shared: &Shared) -> (&'static str, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/predict") => ("/v1/predict", predict(request, shared)),
        ("POST", "/v1/estimate") => ("/v1/estimate", estimate(request)),
        ("POST", "/v1/batch") => ("/v1/batch", batch(request, shared)),
        ("POST", "/v1/calibrate") => ("/v1/calibrate", calibrate(request, shared)),
        ("POST", "/admin/drain") => ("/admin/drain", drain_request(shared)),
        ("GET", "/healthz") => ("/healthz", healthz(shared)),
        ("GET", "/metrics") => (
            "/metrics",
            Response::text(200, snapshot(shared).to_prometheus()),
        ),
        ("GET", "/metrics.json") => (
            "/metrics.json",
            Response::json(200, snapshot(shared).to_json()),
        ),
        (
            _,
            "/v1/predict" | "/v1/estimate" | "/v1/batch" | "/v1/calibrate" | "/admin/drain"
            | "/healthz" | "/metrics" | "/metrics.json",
        ) => (
            "other",
            Response::json(405, api::error_body("method not allowed")),
        ),
        _ => ("other", Response::json(404, api::error_body("not found"))),
    }
}

/// A metrics snapshot with the serve gauges freshly synced. Goes through
/// [`Engine::metrics_snapshot`] so the engine's cache gauges are fresh
/// too.
fn snapshot(shared: &Shared) -> MetricsSnapshot {
    shared.sync_gauges();
    shared.engine.metrics_snapshot()
}

fn healthz(shared: &Shared) -> Response {
    use predsim_lint::json::Value;
    let draining = shared.draining.load(Ordering::SeqCst);
    let body = Value::Object(vec![
        (
            "status".into(),
            Value::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        (
            "queue_depth".into(),
            Value::Int(shared.queue.depth() as i64),
        ),
        (
            "in_flight".into(),
            Value::Int(shared.executing.load(Ordering::SeqCst) as i64),
        ),
        ("workers".into(), Value::Int(shared.workers as i64)),
    ]);
    Response::json(200, body.to_compact())
}

fn drain_request(shared: &Shared) -> Response {
    shared.draining.store(true, Ordering::SeqCst);
    Response::json(200, "{\"draining\":true}")
}

/// Admit `work` (all-or-nothing), wait for the results. `Err` is the
/// ready-to-send backpressure or shutdown response.
fn admit_and_run(shared: &Shared, work: Vec<Work>) -> Result<Vec<Reply>, Response> {
    let reply = ReplySlot::new(work.len());
    let batch: Vec<Job> = work
        .into_iter()
        .enumerate()
        .map(|(slot, work)| Job {
            work,
            reply: Arc::clone(&reply),
            slot,
        })
        .collect();
    match shared.queue.try_push_all(batch) {
        Ok(()) => {
            shared.sync_gauges();
            Ok(reply.wait())
        }
        Err((_, PushError::Full)) => Err(Response::json(
            429,
            api::error_body("admission queue is full; retry later"),
        )
        .with_header("Retry-After", "1")),
        Err((_, PushError::Closed)) => {
            Err(Response::json(503, api::error_body("server is draining")))
        }
    }
}

fn predict(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, api::error_body("server is draining"));
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let parsed = api::parse_predict(body)
        .and_then(|job| api::check_jobs(std::slice::from_ref(&job)).map(|()| job));
    let (_, spec) = match parsed {
        Ok(job) => job,
        Err(e) => return Response::json(e.status, e.body),
    };
    // The static interval is computed on the request thread after the
    // simulation returns, not before admission: it never delays the
    // enqueue, and shed requests (429/503) never pay for it.
    let for_bounds = spec.clone();
    match admit_and_run(shared, vec![Work::Predict(spec)]) {
        Ok(mut replies) => match replies.pop() {
            Some(Reply::Predict(result)) => {
                let bounds = predsim_engine::static_bounds(&for_bounds);
                Response::json(200, api::render_predict(&result, bounds.as_ref()))
            }
            _ => Response::json(500, api::error_body("worker returned the wrong reply kind")),
        },
        Err(resp) => resp,
    }
}

/// `POST /v1/estimate`: the static cost interval for a job, no
/// simulation and no queueing — the analyzer runs right here on the
/// request thread in time proportional to the program text, so the
/// endpoint answers even while the workers are saturated. The
/// `bounds` object is byte-identical to what `predsim check --bounds
/// --json` emits for the same job, and the unavailability reasons
/// ("infeasible spec", "fault injection voids the static bounds",
/// "program is malformed") match the CLI's too.
fn estimate(request: &Request) -> Response {
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let (name, spec) = match api::parse_predict(body) {
        Ok(job) => job,
        Err(e) => return Response::json(e.status, e.body),
    };
    let rendered = if spec.faults.is_some() {
        api::render_estimate(&name, Err("fault injection voids the static bounds"))
    } else if spec.source.validate().is_err() {
        api::render_estimate(&name, Err("infeasible spec"))
    } else {
        match predsim_engine::static_bounds(&spec) {
            Some(b) => api::render_estimate(&name, Ok(&b)),
            None => api::render_estimate(&name, Err("program is malformed")),
        }
    };
    Response::json(200, rendered)
}

fn calibrate(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, api::error_body("server is draining"));
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let parsed = match api::parse_calibrate(body) {
        Ok(parsed) => parsed,
        Err(e) => return Response::json(e.status, e.body),
    };
    // The same pre-run gate as /v1/predict: a source the engine would
    // refuse to run is refused here, with the same 422 document.
    let gate = JobSpec::new(
        parsed.source.clone(),
        predsim_engine::JobSource::Program(Arc::clone(&parsed.program)),
        predsim_core::SimOptions::new(commsim::SimConfig::new(parsed.fit.initial)),
    );
    if let Err(e) = api::check_jobs(std::slice::from_ref(&(parsed.source.clone(), gate))) {
        return Response::json(e.status, e.body);
    }
    match admit_and_run(shared, vec![Work::Calibrate(Box::new(parsed))]) {
        Ok(mut replies) => match replies.pop() {
            Some(Reply::Calibrate(outcome)) => match *outcome {
                Ok((report, registered)) => {
                    Response::json(200, api::render_calibrate(&report, registered.as_ref()))
                }
                Err(why) => Response::json(422, api::error_body(&why)),
            },
            _ => Response::json(500, api::error_body("worker returned the wrong reply kind")),
        },
        Err(resp) => resp,
    }
}

fn batch(request: &Request, shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, api::error_body("server is draining"));
    }
    let body = match request.body_str() {
        Ok(b) => b,
        Err(_) => return Response::json(400, api::error_body("body is not valid UTF-8")),
    };
    let jobs = match api::parse_batch(body).and_then(|jobs| api::check_jobs(&jobs).map(|()| jobs)) {
        Ok(jobs) => jobs,
        Err(e) => return Response::json(e.status, e.body),
    };
    let work = jobs
        .into_iter()
        .map(|(_, spec)| Work::Predict(spec))
        .collect();
    match admit_and_run(shared, work) {
        Ok(replies) => {
            let mut results = Vec::with_capacity(replies.len());
            for reply in replies {
                match reply {
                    Reply::Predict(result) => results.push(result),
                    Reply::Calibrate(_) => {
                        return Response::json(
                            500,
                            api::error_body("worker returned the wrong reply kind"),
                        )
                    }
                }
            }
            Response::json(200, api::render_batch(&results))
        }
        Err(resp) => resp,
    }
}
