//! The bounded admission queue.
//!
//! Requests the worker pool cannot absorb immediately wait here, up to a
//! fixed capacity; beyond that the server sheds load with `429` rather
//! than queueing without bound. Hand-rolled on `Mutex` + `Condvar` so the
//! serve crate stays free of channel dependencies.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity: shed the request.
    Full,
    /// The queue has been closed for drain: no new work.
    Closed,
}

/// A fixed-capacity MPMC queue. `try_push` never blocks (admission is a
/// yes/no decision, not a wait); `pop` blocks until an item arrives or the
/// queue is closed and empty.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    takeable: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            takeable: Condvar::new(),
        }
    }

    /// Admit `item` if there is room, handing it back otherwise.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= inner.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.takeable.notify_one();
        Ok(())
    }

    /// Admit a whole batch or none of it: a batch request must never end
    /// up half-queued, half-shed.
    pub fn try_push_all(&self, items: Vec<T>) -> Result<(), (Vec<T>, PushError)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((items, PushError::Closed));
        }
        if inner.items.len() + items.len() > inner.capacity {
            return Err((items, PushError::Full));
        }
        let n = items.len();
        inner.items.extend(items);
        drop(inner);
        for _ in 0..n {
            self.takeable.notify_one();
        }
        Ok(())
    }

    /// Take the oldest item, blocking while the queue is open and empty.
    /// Returns `None` only when the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.takeable.wait(inner).expect("queue poisoned");
        }
    }

    /// Close the queue: future pushes fail, and poppers drain what is
    /// left, then see `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.takeable.notify_all();
    }

    /// Items currently waiting (not counting any being worked on).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is closed *and* empty — drain has finished
    /// handing out work.
    pub fn is_drained(&self) -> bool {
        let inner = self.inner.lock().expect("queue poisoned");
        inner.closed && inner.items.is_empty()
    }

    /// Remove and return the newest item matching `pred` (shed-newest
    /// policy: the most recently admitted victim loses its queue slot so
    /// older work, closer to its deadline, keeps its position).
    pub fn shed_newest_where(&self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        let idx = inner.items.iter().rposition(pred)?;
        inner.items.remove(idx)
    }

    /// Put an already-admitted item back at the *front* of the queue, so
    /// it runs next. Bypasses both capacity and the closed flag: the item
    /// was admitted once and the admitted ⇒ answered invariant says it
    /// must still be handed to a worker (a supervisor re-enqueueing an
    /// orphaned job during drain relies on this).
    pub fn requeue_front(&self, item: T) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.items.push_front(item);
        drop(inner);
        self.takeable.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let q = BoundedQueue::new(3);
        q.try_push(0).unwrap();
        let (back, why) = q.try_push_all(vec![1, 2, 3]).unwrap_err();
        assert_eq!((back, why), (vec![1, 2, 3], PushError::Full));
        assert_eq!(q.depth(), 1, "a shed batch leaves nothing behind");
        q.try_push_all(vec![1, 2]).unwrap();
        assert_eq!(q.depth(), 3);
        q.close();
        assert!(matches!(
            q.try_push_all(vec![9]),
            Err((_, PushError::Closed))
        ));
    }

    #[test]
    fn close_rejects_pushes_and_drains_poppers() {
        let q = BoundedQueue::new(4);
        q.try_push("left over").unwrap();
        q.close();
        assert_eq!(
            q.try_push("late"),
            Err(("late", PushError::Closed)),
            "a closed queue admits nothing"
        );
        assert_eq!(q.pop(), Some("left over"), "closing keeps queued work");
        assert_eq!(q.pop(), None);
        q.close(); // idempotent
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_an_item_or_close_arrives() {
        let q = Arc::new(BoundedQueue::new(1));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || (q.pop(), q.pop()))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), (Some(7), None));
    }

    #[test]
    fn shed_newest_takes_the_most_recent_match_only() {
        let q = BoundedQueue::new(8);
        for v in [10, 21, 30, 41] {
            q.try_push(v).unwrap();
        }
        // Newest odd-decade item is 41; 21 stays put.
        assert_eq!(q.shed_newest_where(|v| v % 10 == 1), Some(41));
        assert_eq!(q.shed_newest_where(|v| *v > 100), None);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop(), Some(10), "shedding preserves FIFO of the rest");
        assert_eq!(q.pop(), Some(21));
        assert_eq!(q.pop(), Some(30));
    }

    #[test]
    fn requeue_front_bypasses_capacity_and_close_and_runs_next() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
        q.requeue_front(0);
        assert_eq!(q.depth(), 2, "requeue ignores capacity");
        q.close();
        q.requeue_front(-1);
        assert_eq!(q.pop(), Some(-1), "requeued work pops first");
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert!(q.is_drained());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn is_drained_requires_closed_and_empty() {
        let q = BoundedQueue::new(2);
        assert!(!q.is_drained(), "open and empty is not drained");
        q.try_push(5).unwrap();
        q.close();
        assert!(!q.is_drained(), "closed but non-empty is not drained");
        assert_eq!(q.pop(), Some(5));
        assert!(q.is_drained());
    }

    #[test]
    fn many_producers_one_consumer_loses_nothing() {
        let q = Arc::new(BoundedQueue::new(64));
        let producers: Vec<_> = (0..8)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        // Spin on Full: this test wants every item through.
                        let mut item = p * 8 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err((back, PushError::Full)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err((_, PushError::Closed)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        q.close();
        let mut seen = Vec::new();
        while let Some(v) = q.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }
}
