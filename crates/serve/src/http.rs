//! A deliberately small HTTP/1.1 reader and writer.
//!
//! The workspace carries no network dependency, so the serve layer reads
//! requests straight off a [`std::io::Read`] and writes responses to a
//! [`std::io::Write`]. Exactly the subset the API needs is supported:
//! request line + headers + `Content-Length` bodies (no chunked encoding,
//! no continuation lines), keep-alive negotiation via the `Connection`
//! header, and fixed-length responses. Head and body sizes are capped so a
//! hostile peer cannot grow memory without bound.
//!
//! [`HttpReader`] buffers across calls, so back-to-back requests on one
//! keep-alive connection (including pipelined bytes that arrive early) are
//! handled correctly.

use std::io::{Read, Write};

/// Cap on the request head (request line + headers), bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/predict` (query strings are not split).
    pub path: String,
    /// True for `HTTP/1.1`, false for `HTTP/1.0`.
    pub http11: bool,
    /// Headers in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close`; HTTP/1.0 must
    /// opt in with `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let conn = self.header("connection").unwrap_or("");
        if self.http11 {
            !conn.eq_ignore_ascii_case("close")
        } else {
            conn.eq_ignore_ascii_case("keep-alive")
        }
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, RequestError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| RequestError::Malformed("body is not valid UTF-8".into()))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly before sending anything.
    Closed,
    /// The socket read timed out (idle keep-alive connection).
    Timeout,
    /// Head or body exceeded its size cap.
    TooLarge,
    /// The bytes were not a parseable HTTP/1.x request.
    Malformed(String),
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::Timeout => write!(f, "read timed out"),
            RequestError::TooLarge => write!(f, "request too large"),
            RequestError::Malformed(why) => write!(f, "malformed request: {why}"),
            RequestError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// A request reader that buffers unconsumed bytes across calls, so one
/// reader serves every request of a keep-alive connection.
pub struct HttpReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> HttpReader<R> {
    /// Wrap a stream.
    pub fn new(inner: R) -> Self {
        HttpReader {
            inner,
            buf: Vec::new(),
        }
    }

    fn fill(&mut self) -> Result<usize, RequestError> {
        let mut chunk = [0u8; 4096];
        match self.inner.read(&mut chunk) {
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(RequestError::Timeout)
            }
            Err(e) => Err(RequestError::Io(e)),
        }
    }

    /// Read one request, waiting for bytes as needed. `max_body` caps the
    /// `Content-Length` the reader is willing to buffer.
    pub fn read_request(&mut self, max_body: usize) -> Result<Request, RequestError> {
        // Accumulate until the blank line that ends the head.
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(RequestError::TooLarge);
            }
            let n = self.fill()?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Err(RequestError::Closed)
                } else {
                    Err(RequestError::Malformed("eof inside request head".into()))
                };
            }
        };
        if head_end > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| RequestError::Malformed("head is not valid UTF-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if !m.is_empty() && !p.is_empty() => {
                (m.to_string(), p.to_string(), v)
            }
            _ => {
                return Err(RequestError::Malformed(format!(
                    "bad request line '{request_line}'"
                )))
            }
        };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            other => {
                return Err(RequestError::Malformed(format!(
                    "unsupported version '{other}'"
                )))
            }
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(RequestError::Malformed(format!("bad header '{line}'")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
            None => 0,
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| RequestError::Malformed(format!("bad content-length '{v}'")))?,
        };
        if content_length > max_body {
            return Err(RequestError::TooLarge);
        }
        let body_start = head_end + 4; // past the \r\n\r\n
        while self.buf.len() < body_start + content_length {
            let n = self.fill()?;
            if n == 0 {
                return Err(RequestError::Malformed("eof inside request body".into()));
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(Request {
            method,
            path,
            http11,
            headers,
            body,
        })
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One HTTP response, written with an explicit `Content-Length`.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Retry-After`, ...).
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// A `text/plain` response (the Prometheus exposition endpoint).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("Content-Type", "text/plain; version=0.0.4")
            .with_body(body.into().into_bytes())
    }

    /// Same response with an extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Same response with the given body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// The standard reason phrase for the status codes the API uses.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize onto `w`: status line, `Content-Length`, `Connection`
    /// (`keep-alive` or `close`), the extra headers, then the body.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_one(bytes: &[u8]) -> Result<Request, RequestError> {
        HttpReader::new(bytes).read_request(1 << 20)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            read_one(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn parses_back_to_back_requests_on_one_reader() {
        let bytes: Vec<u8> =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
                .to_vec();
        let mut reader = HttpReader::new(&bytes[..]);
        let a = reader.read_request(1024).unwrap();
        assert_eq!(a.path, "/healthz");
        assert!(a.body.is_empty());
        let b = reader.read_request(1024).unwrap();
        assert_eq!(b.path, "/metrics");
        assert!(!b.wants_keep_alive());
        assert!(matches!(
            reader.read_request(1024),
            Err(RequestError::Closed)
        ));
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = read_one(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.http11);
        assert!(!req.wants_keep_alive());
        let req = read_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn rejects_malformed_and_oversized_input() {
        assert!(matches!(read_one(b""), Err(RequestError::Closed)));
        assert!(matches!(
            read_one(b"GARBAGE\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            read_one(b"GET / HTTP/2\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            read_one(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            read_one(b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        // Body over the cap is refused before it is buffered.
        let res = HttpReader::new(&b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789"[..])
            .read_request(4);
        assert!(matches!(res, Err(RequestError::TooLarge)));
        // Truncated body.
        assert!(matches!(
            read_one(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        Response::json(429, "{}")
            .with_header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\nConnection: close\r\n\
             Content-Type: application/json\r\nRetry-After: 1\r\n\r\n{}"
        );
        // A response must itself be parseable as far as the head grammar
        // goes (cheap sanity: one blank line, then the body).
        assert_eq!(text.matches("\r\n\r\n").count(), 1);
    }
}
