//! Deadline-aware admission: an online wall-cost model for queued work.
//!
//! The static analyzer gives every clean job a virtual-time ceiling
//! (`ProgramBounds::hi`, in simulated picoseconds). What admission needs
//! is *wall* time: how long will this job hold a worker, and how long
//! until a worker is free? The bridge is a calibrated ratio — host
//! nanoseconds per virtual picosecond — learned online from the same
//! measurement stream that feeds the `serve_request_wall_ns` histogram:
//! every finished predict job reports `(exec_ns, hi_ps)` and the model
//! folds `exec_ns / hi_ps` into an EWMA (alpha 1/8, fixed-point ×10⁶).
//!
//! From that the model answers two questions:
//!
//! * **drain estimate** — how many wall-ns of admitted-but-unfinished
//!   work stand in front of a new arrival (`queued cost / workers`, plus
//!   half a mean job for the in-flight remainder). This is the computed
//!   `Retry-After` on 429 and the queue-wait term of the deadline check.
//! * **job estimate** — `hi_ps × ratio` for the job itself; before any
//!   sample has arrived both estimates are zero and admission is
//!   optimistic (the server has no evidence the job cannot make it).
//!
//! Everything is relaxed atomics: admission must not contend with the
//! workers it is modelling.

use predsim_obs::Ewma;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-point scale for the ns-per-virtual-ps ratio (supports ratios
/// down to 10⁻⁶ ns/ps — far below any real simulation speed).
const RATIO_SCALE: u64 = 1_000_000;

/// EWMA smoothing shift: alpha = 1/8.
const EWMA_SHIFT: u32 = 3;

/// The serve layer's online wall-cost model.
#[derive(Debug, Default)]
pub struct CostModel {
    /// ns per virtual ps, ×[`RATIO_SCALE`].
    ratio_micro: Ewma,
    /// Mean wall-ns of one predict job, for jobs with no static ceiling.
    job_wall_ns: Ewma,
    /// Estimated wall-ns of work sitting in the queue right now.
    queued_ns: AtomicU64,
}

impl CostModel {
    /// A fresh model with no samples.
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Fold in one finished job: its measured execution wall time and the
    /// static ceiling it was admitted under (0 when the job had none).
    pub fn observe(&self, exec_ns: u64, hi_ps: u64) {
        self.job_wall_ns.observe(exec_ns, EWMA_SHIFT);
        if let Some(ratio) = exec_ns.saturating_mul(RATIO_SCALE).checked_div(hi_ps) {
            self.ratio_micro.observe(ratio, EWMA_SHIFT);
        }
    }

    /// Estimated wall-ns to run a job with static ceiling `hi_ps`.
    /// Zero until the model has seen at least one sample: admission stays
    /// optimistic rather than rejecting on no evidence.
    pub fn est_job_ns(&self, hi_ps: u64) -> u64 {
        if hi_ps > 0 {
            if let Some(ratio) = self.ratio_micro.get() {
                return hi_ps.saturating_mul(ratio) / RATIO_SCALE;
            }
        }
        self.job_wall_ns.get().unwrap_or(0)
    }

    /// A job was admitted with estimated cost `est_ns`.
    pub fn on_admit(&self, est_ns: u64) {
        self.queued_ns.fetch_add(est_ns, Ordering::Relaxed);
    }

    /// A job with estimated cost `est_ns` left the queue (a worker picked
    /// it up, or it was shed).
    pub fn on_leave_queue(&self, est_ns: u64) {
        // Saturating subtract via CAS: concurrent admits make a plain
        // fetch_sub able to underflow transiently.
        let mut cur = self.queued_ns.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(est_ns);
            match self.queued_ns.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Estimated wall-ns until a worker could start a newly admitted job:
    /// queued work divided across the pool, plus half a mean job for the
    /// ones already executing.
    pub fn drain_estimate_ns(&self, executing: usize, workers: usize) -> u64 {
        let workers = workers.max(1) as u64;
        let queued = self.queued_ns.load(Ordering::Relaxed);
        let in_flight = (executing as u64).saturating_mul(self.job_wall_ns.get().unwrap_or(0)) / 2;
        queued.saturating_add(in_flight) / workers
    }

    /// The computed `Retry-After` (whole seconds, floor 1) for a 429:
    /// when the backlog in front of the client should have cleared.
    pub fn retry_after_secs(&self, executing: usize, workers: usize) -> u64 {
        let ns = self.drain_estimate_ns(executing, workers);
        ns.div_ceil(1_000_000_000).max(1)
    }

    /// Current calibrated ratio (ns per virtual ps, ×10⁶), for metrics.
    pub fn ratio_micro(&self) -> u64 {
        self.ratio_micro.get().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseeded_model_is_optimistic_and_retry_after_floors_at_one() {
        let m = CostModel::new();
        assert_eq!(m.est_job_ns(1_000_000), 0);
        assert_eq!(m.drain_estimate_ns(4, 2), 0);
        assert_eq!(m.retry_after_secs(0, 2), 1);
    }

    #[test]
    fn ratio_learns_ns_per_virtual_ps() {
        let m = CostModel::new();
        // 2 ms wall for a 1 ms-virtual job: ratio 2 ns per 1000 ps.
        for _ in 0..50 {
            m.observe(2_000_000, 1_000_000_000);
        }
        let est = m.est_job_ns(2_000_000_000);
        assert!(
            (3_900_000..=4_100_000).contains(&est),
            "double the virtual ceiling should cost about double the wall: {est}"
        );
    }

    #[test]
    fn jobs_without_a_ceiling_fall_back_to_the_mean_job_cost() {
        let m = CostModel::new();
        m.observe(5_000_000, 0);
        assert_eq!(m.est_job_ns(0), 5_000_000);
    }

    #[test]
    fn queue_accounting_drives_the_drain_estimate_and_retry_after() {
        let m = CostModel::new();
        for _ in 0..10 {
            m.observe(1_000_000_000, 1_000_000_000); // 1s wall per job
        }
        m.on_admit(3_000_000_000);
        m.on_admit(3_000_000_000);
        let est = m.drain_estimate_ns(0, 2);
        assert_eq!(est, 3_000_000_000, "6s of queue across 2 workers");
        assert_eq!(m.retry_after_secs(0, 2), 3);
        m.on_leave_queue(3_000_000_000);
        m.on_leave_queue(3_000_000_000);
        m.on_leave_queue(3_000_000_000); // over-subtraction saturates
        assert_eq!(m.drain_estimate_ns(0, 2), 0);
    }

    #[test]
    fn executing_jobs_add_half_a_mean_job_each() {
        let m = CostModel::new();
        for _ in 0..10 {
            m.observe(2_000_000_000, 0);
        }
        assert_eq!(m.drain_estimate_ns(2, 1), 2_000_000_000);
    }
}
